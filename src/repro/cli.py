"""Command-line interface: ``dcatch``.

Subcommands::

    dcatch list                     # the benchmark inventory (Table 3)
    dcatch run MR-3274              # full pipeline on one benchmark
    dcatch run MR-3274 --no-trigger # detection + pruning only
    dcatch run minimr 3274          # same, system + workload spelling
    dcatch table table4             # regenerate one evaluation table
    dcatch table all                # regenerate everything
    dcatch trace ZK-1144 --out DIR  # save the monitored run's trace files
    dcatch trace ZK-1144 --stats    # per-category trace statistics
    dcatch trace --load DIR --stats # statistics of a saved trace
    dcatch run MR-3274 --trace-dir ./wal  # durable write-ahead tracing
    dcatch salvage ./wal/MR-3274/seed-0   # recover a trace from a WAL
    dcatch run MR-3274 --checkpoint-dir ./ckpt   # checkpoint each stage
    dcatch run MR-3274 --checkpoint-dir ./ckpt --resume  # skip done stages
    dcatch profile minimr 3274      # per-stage span table + exports
    dcatch metrics ZK-1144          # metrics registry after one run
    dcatch generate minimr --preset xl --out ./gen  # million-record WAL
    dcatch stream ./gen/wal --ground-truth ./gen/ground_truth.json
    dcatch run MR-3274 --detect-mode streaming  # bounded-memory detection
    dcatch run ZK-1144 --detect-mode sync-preserving  # sound SP tier

Unknown benchmark/system/workload names — and malformed/corrupt trace
files — exit with status 2 and a one-line error on stderr instead of a
traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import (
    CheckpointError,
    PipelineInterrupted,
    ServiceError,
    TraceFormatError,
    UnknownBenchmarkError,
)


def _parse_workers(raw: str) -> "object":
    """--workers N | 0 | auto (auto sizes from the trace)."""
    if raw == "auto":
        return raw
    try:
        return int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {raw!r}"
        ) from None


def _resolve(args: argparse.Namespace):
    """Resolve ``<bug-id>`` or ``<system> <workload>`` to a workload."""
    from repro.systems import resolve_workload

    return resolve_workload(args.target, getattr(args, "workload", None))


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.systems import all_workloads, extra_workloads

    header = f"{'BugID':11s} {'System':17s} {'Workload':44s} {'Symptom':20s} Err Root"
    print(header)
    for workload in all_workloads():
        info = workload.info
        print(
            f"{info.bug_id:11s} {info.system:17s} {info.workload:44s} "
            f"{info.symptom:20s} {info.error_pattern:3s} {info.root_cause}"
        )
    print("-- beyond the paper's benchmarks --")
    for workload in extra_workloads():
        info = workload.info
        print(
            f"{info.bug_id:11s} {info.system:17s} {info.workload:44s} "
            f"{info.symptom:20s} {info.error_pattern:3s} {info.root_cause}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.pipeline import DCatch, PipelineConfig

    workload = _resolve(args)
    config = PipelineConfig(
        scope="full" if args.full_scope else "selective",
        trigger=not args.no_trigger,
        monitored_seed=args.seed,
        detect_workers=args.workers,
        reach_backend=args.reach_backend,
        trace_dir=args.trace_dir,
        trigger_max_wait=args.trigger_max_wait,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        max_stage_seconds=args.max_stage_seconds,
        memory_budget_mb=args.memory_budget_mb,
        detect_mode=args.detect_mode,
        stream_window=args.stream_window,
        sampling=args.sampling,
        sampling_seed=args.sampling_seed,
    )
    result = DCatch(workload, config).run()
    print(result.summary())
    if result.reports is not None:
        print()
        for report in result.reports:
            print(report.describe())
            print()
    for outcome in result.outcomes:
        print(outcome.describe())
        print()
    if args.save_reports and result.reports is not None:
        from repro.detect import save_reports

        save_reports(result.reports, args.save_reports)
        print(f"reports saved to {args.save_reports}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.bench import ALL_TABLES

    names = list(ALL_TABLES) if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in ALL_TABLES]
    if unknown:
        print(f"unknown table(s): {unknown}; known: {sorted(ALL_TABLES)}")
        return 2
    for name in names:
        print(ALL_TABLES[name]().render())
        print()
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.bench.reproduce import reproduce_all

    report, _tables = reproduce_all(args.only or None)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Explain the happens-before relation between a variable's accesses."""
    from repro.detect import detect_races
    from repro.hb import ChainExplainer
    from repro.systems import workload_by_id
    from repro.trace import Tracer, selective_scope_for

    workload = workload_by_id(args.bug_id)
    cluster = workload.cluster(args.seed, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules()))
    tracer.bind(cluster)
    cluster.run()
    detection = detect_races(tracer.trace)
    explainer = ChainExplainer(detection.graph)

    accesses = [
        r
        for r in tracer.trace.mem_accesses()
        if args.variable in str(r.obj_id)
    ]
    if not accesses:
        print(f"no accesses match variable substring {args.variable!r}")
        return 1
    shown = 0
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.segment == b.segment:
                continue
            print(explainer.render(a, b))
            print()
            shown += 1
            if shown >= args.limit:
                return 0
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import Trace, Tracer, compute_stats, selective_scope_for

    if args.load:
        # Operate on saved trace files instead of running a benchmark.
        # Malformed/corrupt JSON exits 2 via the TraceFormatError catch
        # in main() — not an uncaught traceback.
        trace = Trace.load(args.load)
        print(f"loaded {len(trace)} records from {args.load}")
        if args.stats:
            print()
            print(compute_stats(trace).render())
        return 0
    if not args.bug_id:
        print("error: a benchmark id (or --load DIR) is required", file=sys.stderr)
        return 2
    from repro.systems import workload_by_id

    workload = workload_by_id(args.bug_id)
    cluster = workload.cluster(args.seed)
    from repro.trace import build_sampler

    tracer = Tracer(
        scope=selective_scope_for(workload.modules()),
        sampler=build_sampler(args.sampling, args.sampling_seed),
    )
    tracer.bind(cluster)
    result = cluster.run()
    print(result.summary())
    if args.stats:
        print()
        print(compute_stats(tracer.trace).render())
    if args.out:
        tracer.trace.save(args.out)
        print(
            f"saved {len(tracer.trace)} records "
            f"({len(tracer.trace.per_thread)} thread files) to {args.out}"
        )
    return 0


def _cmd_salvage(args: argparse.Namespace) -> int:
    """Recover a trace from a WAL directory; never dies on damage."""
    import json

    from repro.trace import compute_stats, salvage_trace

    trace, report = salvage_trace(args.wal_dir, live=args.live)
    print(report.render())
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"salvage report written to {args.report}")
    if args.out:
        trace.save(args.out)
        print(
            f"salvaged trace saved to {args.out} "
            f"({len(trace)} records, {len(trace.per_thread)} thread files)"
        )
    if args.stats and len(trace):
        print()
        print(compute_stats(trace).render())
    if args.analyze:
        from repro.detect import detect_races

        detection = detect_races(trace)
        print()
        print(
            f"trace analysis: {len(detection.candidates)} dynamic pairs, "
            f"{detection.static_count()} static, "
            f"{detection.callstack_count()} callstack "
            f"(confidence: {detection.confidence})"
        )
    return 0 if len(trace) else 1


def _run_profiled(args: argparse.Namespace):
    """Run the pipeline with fresh observability objects installed."""
    from repro import obs
    from repro.pipeline import DCatch, PipelineConfig

    workload = _resolve(args)
    registry = obs.MetricsRegistry(name=workload.info.bug_id)
    tracer = obs.SpanTracer(name=workload.info.bug_id)
    config = PipelineConfig(
        trigger=not args.no_trigger,
        monitored_seed=args.seed,
        detect_workers=getattr(args, "workers", 1),
        reach_backend=getattr(args, "reach_backend", "bitset"),
    )
    with obs.use_registry(registry), obs.use_tracer(tracer):
        result = DCatch(workload, config).run()
    return result, registry, tracer


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        profile_to_json,
        render_span_table,
        write_chrome_trace,
        write_json,
    )

    result, registry, tracer = _run_profiled(args)
    print(result.summary())
    print()
    print(render_span_table(tracer))
    if args.out:
        write_json(args.out, profile_to_json(tracer, registry))
        print(f"profile written to {args.out}")
    if args.chrome:
        write_chrome_trace(args.chrome, tracer)
        print(f"chrome trace written to {args.chrome} (load in chrome://tracing)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import registry_to_json, render_prometheus

    _result, registry, _tracer = _run_profiled(args)
    if args.format == "json":
        import json

        print(json.dumps(registry_to_json(registry), indent=2, sort_keys=True))
    else:
        print(render_prometheus(registry), end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workload import generate_workload

    generated = generate_workload(
        args.system,
        args.preset,
        args.seed,
        args.out,
        segment_records=args.segment_records,
    )
    spec = generated.spec
    print(
        f"generated {generated.system} preset={generated.preset} "
        f"seed={generated.seed}"
    )
    print(
        f"  scenario: {spec.workers} workers x {spec.phases} phases "
        f"(chain={spec.chain_len}, racers={spec.racers})"
    )
    print(
        f"  records:  {generated.records} "
        f"({generated.hb_records} HB, {generated.mem_records} memory) "
        f"across {generated.streams} streams"
    )
    print(f"  planted:  {len(generated.planted_races)} races")
    print(f"  wal:      {generated.wal_dir}")
    print(f"  truth:    {generated.ground_truth_path}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import signal

    from repro.detect.streaming import detect_races_streaming
    from repro.trace import build_sampler

    # SIGTERM/SIGINT stop the pass at the next window boundary; the
    # checkpoint (when configured) is sealed before we exit 130, so
    # --resume picks up without reprocessing retired windows.
    caught = {"signum": None}

    def _interrupt(signum: int, frame: object) -> None:
        caught["signum"] = signum

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _interrupt)

    result = detect_races_streaming(
        wal_dir=args.wal_dir,
        window=args.window,
        max_seconds=args.max_stage_seconds,
        memory_budget_mb=args.memory_budget_mb,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        sampler=build_sampler(args.sampling, args.sampling_seed),
        should_stop=lambda: caught["signum"] is not None,
    )
    if result.resumed_at:
        print(
            f"resumed from checkpoint at {result.resumed_at} records "
            "(retired windows not reprocessed)"
        )
    print(
        f"streamed {result.records_consumed} records in "
        f"{result.analysis_seconds:.2f}s "
        f"({result.records_per_second:,.0f} records/s)"
    )
    print(
        f"  candidates: {len(result.candidates)} "
        f"(pairs examined: {result.pairs_examined})"
    )
    print(
        f"  memory:     {result.evictions} evictions, "
        f"{result.compactions} compactions, "
        f"active high-water {result.active_high_water}, "
        f"RSS high-water {result.rss_high_water_mb:.0f} MB"
    )
    print(f"  confidence: {result.confidence}")
    if result.stopped_early:
        print("  stopped early (budget); candidate list is a prefix")
    if result.damage:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(result.damage.items()))
        print(f"  damage:     {parts}")
    if result.sampled_dropped:
        parts = ", ".join(
            f"{k}={v}" for k, v in sorted(result.sampled_dropped.items())
        )
        print(f"  sampled out: {parts}")
    if args.report_out:
        from repro.service.report import (
            render_report,
            report_from_stream_result,
        )

        doc = report_from_stream_result(args.report_tenant, result)
        with open(args.report_out, "wb") as fh:
            fh.write(render_report(doc))
        print(f"  canonical report written to {args.report_out}")

    if caught["signum"] is not None and result.stopped_early:
        hint = (
            f" (resume with --checkpoint {args.checkpoint} --resume)"
            if args.checkpoint
            else ""
        )
        print(
            f"interrupted at {result.records_consumed} records; "
            f"checkpoint sealed{hint}",
            file=sys.stderr,
        )
        return 130

    if args.ground_truth is None:
        return 0

    from repro.workload import load_ground_truth

    truth = load_ground_truth(args.ground_truth)
    planted = {
        frozenset((race["first_seq"], race["second_seq"]))
        for race in truth["planted_races"]
    }
    found = {frozenset(pair) for pair in result.candidate_seq_pairs()}
    missed = planted - found
    extra = found - planted
    recall = 100.0 if not planted else 100.0 * (1 - len(missed) / len(planted))
    print(
        f"  ground truth: {len(planted) - len(missed)}/{len(planted)} "
        f"planted races found ({recall:.1f}% recall), "
        f"{len(extra)} unplanted candidates"
    )
    if missed:
        sample = sorted(tuple(sorted(pair)) for pair in missed)[:5]
        print(f"  missed: {sample}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.analysis.governor import FleetBudget
    from repro.service.server import DetectionServer

    limits = FleetBudget(
        max_tenants=args.max_tenants,
        memory_budget_mb=args.memory_budget_mb,
        queue_segments=args.queue_segments,
    )
    server = DetectionServer(
        args.data_dir,
        host=args.host,
        port=args.port,
        limits=limits,
        window=args.window,
        max_bad_segments=args.max_bad_segments,
        checkpoint_every=args.checkpoint_every,
        pump_delay_s=args.pump_delay_s,
        overload_poll_s=args.overload_poll_s,
        http_port=None if args.no_http else args.http_port,
    ).start()
    print(
        f"detection service on {server.host}:{server.port} "
        f"(data: {server.data_dir})",
        flush=True,
    )
    if server.http is not None:
        print(
            f"probes on http://{server.host}:{server.http.port}"
            "/healthz /readyz /metrics",
            flush=True,
        )

    stop = threading.Event()

    def _graceful(signum: int, frame: object) -> None:
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _graceful)
    while not stop.is_set() and not server.stopping:
        stop.wait(0.2)
    print("shutting down: sealing tenant checkpoints", flush=True)
    server.stop()
    return 0


def _cmd_ship(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.service.report import render_report
    from repro.service.server import load_service_file

    host, port = args.host, args.port
    if args.data_dir is not None:
        doc = load_service_file(args.data_dir)
        host, port = str(doc["host"]), int(doc["port"])
    if port is None:
        print("error: need --port or --data-dir", file=sys.stderr)
        return 2
    with ServiceClient(
        host,
        port,
        args.tenant,
        retry_deadline_s=args.retry_deadline,
    ) as client:
        result = client.ship_wal_dir(args.wal_dir)
        print(
            f"shipped {result.segments_shipped} segments "
            f"({result.records_shipped} records, "
            f"{result.bytes_shipped} bytes) in {result.elapsed_s:.2f}s"
        )
        print(
            f"  ingest latency: p50 {result.latency_quantile(0.5) * 1000:.1f}ms "
            f"p99 {result.latency_quantile(0.99) * 1000:.1f}ms"
        )
        if result.backpressure_waits or result.paused_waits:
            print(
                f"  held back: {result.backpressure_waits} queue-credit "
                f"waits, {result.paused_waits} overload pauses"
            )
        if result.reconnects:
            print(f"  reconnects: {result.reconnects}")
        if args.no_wait:
            return 0
        report = client.wait_report(args.report_timeout)
        print(
            f"  report: {report['candidate_count']} candidates over "
            f"{report['records']} records, confidence {report['confidence']}"
        )
        if args.report_out:
            with open(args.report_out, "wb") as fh:
                fh.write(render_report(report))
            print(f"  canonical report written to {args.report_out}")
    return 0


def _add_sampling_flags(parser: argparse.ArgumentParser) -> None:
    """Memory-access sampling knobs shared by ``run``/``trace``/``stream``."""
    parser.add_argument(
        "--sampling",
        metavar="RATE|POLICY",
        default=None,
        help="sample the memory-access stream: a rate (0.1 = per-location "
        "budget of 8 plus 10%% hash-rate keep) or a policy spec "
        "(rate:R, budget:N, epoch:N:M, reservoir:K, composable with +). "
        "HB/lock records are always kept; results carry "
        "confidence=sampled",
    )
    parser.add_argument(
        "--sampling-seed",
        type=int,
        default=0,
        metavar="N",
        dest="sampling_seed",
        help="seed for the sampling policy's deterministic hashing "
        "(same policy+seed = same kept records)",
    )


def _add_analysis_flags(parser: argparse.ArgumentParser) -> None:
    """Trace-analysis knobs shared by ``run``/``profile``/``metrics``."""
    parser.add_argument(
        "--workers",
        type=_parse_workers,
        default=1,
        metavar="N",
        help="worker processes for candidate enumeration "
        "(1 = serial, 0 = one per CPU, auto = serial on small traces; "
        "same candidates either way)",
    )
    parser.add_argument(
        "--reach-backend",
        choices=("bitset", "chain"),
        default="bitset",
        dest="reach_backend",
        help="reachability engine: bit matrix (default) or "
        "segment-chain compression (lower memory)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcatch",
        description="DCatch reproduction: distributed concurrency bug "
        "detection on simulated cloud systems (ASPLOS'17)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark workloads").set_defaults(
        fn=_cmd_list
    )

    run = sub.add_parser("run", help="run the DCatch pipeline on a benchmark")
    run.add_argument(
        "target", help="benchmark id (MR-3274) or system alias (minimr)"
    )
    run.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload within the system, e.g. 3274 (with a system alias)",
    )
    run.add_argument("--seed", type=int, default=None, help="monitored-run seed")
    run.add_argument(
        "--no-trigger", action="store_true", help="skip the triggering stage"
    )
    run.add_argument(
        "--full-scope",
        action="store_true",
        help="unselective memory tracing (the Table 8 alternative)",
    )
    run.add_argument(
        "--save-reports",
        metavar="PATH",
        default=None,
        help="write the final bug reports as JSON",
    )
    run.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        dest="trace_dir",
        help="also write the monitored run's trace to a crash-tolerant "
        "write-ahead log under DIR (salvage it with 'salvage')",
    )
    run.add_argument(
        "--trigger-max-wait",
        type=int,
        default=None,
        metavar="TICKS",
        dest="trigger_max_wait",
        help="watchdog: release a gated trigger party held longer than "
        "TICKS logical clock ticks (run counts as not enforced)",
    )
    run.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        dest="checkpoint_dir",
        help="checkpoint each completed stage under DIR; a killed run "
        "restarts from the last sealed stage with --resume",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint-dir: skip completed stages, "
        "continue from the first incomplete shard",
    )
    run.add_argument(
        "--max-stage-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="max_stage_seconds",
        help="wall-clock deadline per stage; an overrunning stage stops "
        "early and is marked degraded instead of wedging",
    )
    run.add_argument(
        "--memory-budget-mb",
        type=int,
        default=None,
        metavar="MB",
        dest="memory_budget_mb",
        help="overall memory budget; under pressure the pipeline sheds "
        "work along the degradation ladder instead of dying",
    )
    run.add_argument(
        "--detect-mode",
        choices=("batch", "streaming", "sync-preserving"),
        default="batch",
        dest="detect_mode",
        help="batch = whole-trace HB graph + closure (the paper); "
        "streaming = single-pass bounded-memory detection; "
        "sync-preserving = batch plus the sound SP tier (candidates "
        "with a sync-preserving witness are marked sp-sound and "
        "triggered first)",
    )
    run.add_argument(
        "--stream-window",
        type=int,
        default=8192,
        metavar="RECORDS",
        dest="stream_window",
        help="streaming mode: records between HB-frontier compaction "
        "passes (memory knob; candidates are window-independent)",
    )
    _add_sampling_flags(run)
    _add_analysis_flags(run)
    run.set_defaults(fn=_cmd_run)

    table = sub.add_parser("table", help="regenerate an evaluation table")
    table.add_argument("name", help="table1|table3|...|figure1|...|all")
    table.set_defaults(fn=_cmd_table)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every evaluation table and figure"
    )
    reproduce.add_argument("--out", default=None, help="write to a file")
    reproduce.add_argument(
        "--only", nargs="*", default=None, help="subset, e.g. table4 figure3"
    )
    reproduce.set_defaults(fn=_cmd_reproduce)

    explain = sub.add_parser(
        "explain",
        help="show happens-before chains between a variable's accesses",
    )
    explain.add_argument("bug_id")
    explain.add_argument("--variable", required=True, help="substring match")
    explain.add_argument("--seed", type=int, default=None)
    explain.add_argument("--limit", type=int, default=6)
    explain.set_defaults(fn=_cmd_explain)

    trace = sub.add_parser("trace", help="save a monitored run's trace")
    trace.add_argument("bug_id", nargs="?", default=None)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("--out", default="./dcatch-trace")
    trace.add_argument(
        "--stats",
        action="store_true",
        help="print per-category record counts and byte sizes",
    )
    trace.add_argument(
        "--load",
        metavar="DIR",
        default=None,
        help="load a saved trace directory instead of running a benchmark",
    )
    _add_sampling_flags(trace)
    trace.set_defaults(fn=_cmd_trace)

    salvage = sub.add_parser(
        "salvage",
        help="recover a trace from a (possibly damaged) write-ahead log",
    )
    salvage.add_argument("wal_dir", help="WAL directory (run --trace-dir output)")
    salvage.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="write the structured SalvageReport as JSON",
    )
    salvage.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="save the recovered trace as per-thread JSONL files",
    )
    salvage.add_argument(
        "--stats",
        action="store_true",
        help="print per-category statistics of the recovered trace",
    )
    salvage.add_argument(
        "--analyze",
        action="store_true",
        help="run HB analysis on the recovered trace (reports confidence)",
    )
    salvage.add_argument(
        "--live",
        action="store_true",
        help="the WAL is still being written: a growing unsealed tail "
        "segment (and a half-flushed tail record) is reported as "
        "in-progress, not damage",
    )
    salvage.set_defaults(fn=_cmd_salvage)

    profile = sub.add_parser(
        "profile",
        help="run the pipeline with spans enabled and print the stage table",
    )
    profile.add_argument(
        "target", help="benchmark id (MR-3274) or system alias (minimr)"
    )
    profile.add_argument(
        "workload",
        nargs="?",
        default=None,
        help="workload within the system, e.g. 3274 (with a system alias)",
    )
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument(
        "--no-trigger", action="store_true", help="skip the triggering stage"
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH", help="write the profile as JSON"
    )
    profile.add_argument(
        "--chrome",
        default=None,
        metavar="PATH",
        help="write a chrome://tracing trace-event file",
    )
    _add_analysis_flags(profile)
    profile.set_defaults(fn=_cmd_profile)

    metrics = sub.add_parser(
        "metrics", help="run the pipeline and dump the metrics registry"
    )
    metrics.add_argument(
        "target", help="benchmark id (MR-3274) or system alias (minimr)"
    )
    metrics.add_argument("workload", nargs="?", default=None)
    metrics.add_argument("--seed", type=int, default=None)
    metrics.add_argument(
        "--no-trigger", action="store_true", help="skip the triggering stage"
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="Prometheus text exposition (default) or JSON",
    )
    _add_analysis_flags(metrics)
    metrics.set_defaults(fn=_cmd_metrics)

    generate = sub.add_parser(
        "generate",
        help="synthesize a large deterministic workload trace (WAL form)",
    )
    generate.add_argument(
        "system",
        choices=("minizk", "minica", "minimr", "minihb"),
        help="which mini system's vocabulary to generate with",
    )
    generate.add_argument(
        "--preset",
        choices=("small", "medium", "xl"),
        default="small",
        help="scenario size (small ~500 records, medium ~200k, xl >1M)",
    )
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="output directory (WAL segments under DIR/wal, "
        "ground truth at DIR/ground_truth.json)",
    )
    generate.add_argument(
        "--segment-records",
        type=int,
        default=None,
        metavar="N",
        dest="segment_records",
        help="records per WAL segment (default: preset's)",
    )
    generate.set_defaults(fn=_cmd_generate)

    stream = sub.add_parser(
        "stream",
        help="single-pass streaming detection over a WAL directory",
    )
    stream.add_argument(
        "wal_dir", help="WAL trace directory (e.g. from 'generate')"
    )
    stream.add_argument(
        "--ground-truth",
        default=None,
        metavar="PATH",
        dest="ground_truth",
        help="generator manifest to score against; exit 1 if any "
        "planted race is missed",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=8192,
        metavar="RECORDS",
        help="records between HB-frontier compaction passes",
    )
    stream.add_argument(
        "--memory-budget-mb",
        type=int,
        default=None,
        metavar="MB",
        dest="memory_budget_mb",
        help="force extra compactions when RSS nears this budget",
    )
    stream.add_argument(
        "--max-stage-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="max_stage_seconds",
        help="stop the pass early after this much wall-clock time",
    )
    stream.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="save resumable stream offsets to this file",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="resume from --checkpoint instead of starting over",
    )
    stream.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        dest="report_out",
        help="write the canonical (byte-stable) detection report here — "
        "comparable byte-for-byte against the detection service's "
        "per-tenant report",
    )
    stream.add_argument(
        "--report-tenant",
        default="offline",
        metavar="NAME",
        dest="report_tenant",
        help="tenant name stamped into --report-out (match the service "
        "tenant to diff reports)",
    )
    _add_sampling_flags(stream)
    stream.set_defaults(fn=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="run the always-on multi-tenant detection service",
    )
    serve.add_argument(
        "data_dir",
        help="service data directory (spools, checkpoints, reports; "
        "recovered on restart)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 = ephemeral; see <data_dir>/service.json)",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="RECORDS",
        help="per-tenant streaming-detector compaction window",
    )
    serve.add_argument(
        "--max-tenants",
        type=int,
        default=16,
        dest="max_tenants",
        metavar="N",
        help="admission control: refuse new tenants beyond this count",
    )
    serve.add_argument(
        "--memory-budget-mb",
        type=int,
        default=None,
        dest="memory_budget_mb",
        metavar="MB",
        help="fleet RSS budget; overload ladder engages at 75%% "
        "(sampled) and 92%% (paused)",
    )
    serve.add_argument(
        "--queue-segments",
        type=int,
        default=64,
        dest="queue_segments",
        metavar="N",
        help="per-tenant ingest queue depth (credit-based backpressure)",
    )
    serve.add_argument(
        "--max-bad-segments",
        type=int,
        default=3,
        dest="max_bad_segments",
        metavar="N",
        help="circuit breaker: quarantine a tenant after this streak "
        "of torn/CRC-bad segments",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=20_000,
        dest="checkpoint_every",
        metavar="RECORDS",
        help="records between per-tenant detector checkpoints",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=0,
        dest="http_port",
        metavar="PORT",
        help="probe/metrics HTTP port (0 = ephemeral)",
    )
    serve.add_argument(
        "--no-http",
        action="store_true",
        dest="no_http",
        help="disable the /healthz /readyz /metrics endpoint",
    )
    serve.add_argument(
        "--pump-delay-s",
        type=float,
        default=0.0,
        dest="pump_delay_s",
        metavar="SECONDS",
        help="inject a per-batch detection delay (overload demos: makes "
        "ingest outrun detection so the ladder engages)",
    )
    serve.add_argument(
        "--overload-poll-s",
        type=float,
        default=0.1,
        dest="overload_poll_s",
        metavar="SECONDS",
        help="overload-ladder poll interval (a large value effectively "
        "disables degradation, leaving only queue backpressure)",
    )
    serve.set_defaults(fn=_cmd_serve)

    ship = sub.add_parser(
        "ship",
        help="ship a WAL directory to the detection service as one tenant",
    )
    ship.add_argument("wal_dir", help="WAL trace directory to ship")
    ship.add_argument(
        "--tenant", required=True, help="tenant id for this stream"
    )
    ship.add_argument(
        "--data-dir",
        default=None,
        dest="data_dir",
        metavar="DIR",
        help="service data directory (reads service.json for host/port)",
    )
    ship.add_argument("--host", default="127.0.0.1")
    ship.add_argument("--port", type=int, default=None)
    ship.add_argument(
        "--no-wait",
        action="store_true",
        dest="no_wait",
        help="return after finalize instead of waiting for the report",
    )
    ship.add_argument(
        "--report-out",
        default=None,
        dest="report_out",
        metavar="PATH",
        help="write the tenant's canonical report bytes here",
    )
    ship.add_argument(
        "--report-timeout",
        type=float,
        default=300.0,
        dest="report_timeout",
        metavar="SECONDS",
        help="how long to wait for detection to finish",
    )
    ship.add_argument(
        "--retry-deadline",
        type=float,
        default=120.0,
        dest="retry_deadline",
        metavar="SECONDS",
        help="give up on transient refusals/reconnects after this long",
    )
    ship.set_defaults(fn=_cmd_ship)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (UnknownBenchmarkError, TraceFormatError, CheckpointError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 2
    except ConnectionError as exc:
        print(f"error: service unreachable: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except PipelineInterrupted as exc:
        hint = (
            f" (resume with --checkpoint-dir {exc.checkpoint_dir} --resume)"
            if exc.checkpoint_dir
            else ""
        )
        print(
            f"interrupted: {exc}; checkpoint sealed{hint}", file=sys.stderr
        )
        return 130


if __name__ == "__main__":
    sys.exit(main())
