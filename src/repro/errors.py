"""Exception hierarchy for the DCatch reproduction.

Three families live here:

* ``ReproError`` — programming/usage errors in this library itself.
* ``SimFailure`` — failures *inside* a simulated distributed system
  (aborts, fatal conditions).  These are part of the modeled behaviour:
  the runtime catches them and turns them into failure events.
* ``ThreadKilled`` — internal control-flow signal used to tear down
  simulated threads at the end of a run.  It derives from
  ``BaseException`` so workload code that catches ``Exception`` cannot
  swallow it.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for errors raised by the library itself."""


class UnknownBenchmarkError(ReproError, KeyError):
    """A benchmark/system/workload name did not resolve.

    Derives from ``KeyError`` for backwards compatibility with callers
    that caught the registry's original exception; the CLI catches it to
    exit with a one-line error instead of a traceback.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class SchedulerError(ReproError):
    """The cooperative scheduler reached an inconsistent internal state."""


class DeadlockError(ReproError):
    """Every non-daemon simulated thread is blocked and cannot make progress."""

    def __init__(self, message: str, blocked: list):
        super().__init__(message)
        self.blocked = blocked


class HangError(ReproError):
    """The simulation exceeded its step budget (livelock / infinite loop)."""

    def __init__(self, message: str, steps: int):
        super().__init__(message)
        self.steps = steps


class TraceFormatError(ReproError):
    """A serialized trace (JSON lines or WAL) could not be decoded.

    Raised for malformed JSON, records with missing fields, and unknown
    schema versions.  The CLI catches it and exits with a one-line error
    (status 2), matching the ``UnknownBenchmarkError`` convention.  The
    WAL *salvage* path never raises it — damaged records are quarantined
    into the ``SalvageReport`` instead.
    """


class CheckpointError(ReproError):
    """A checkpoint directory could not be used for resume.

    Raised for a missing/unreadable manifest, a stale checkpoint schema
    version, a config- or trace-fingerprint mismatch, and payload CRC
    damage.  The CLI catches it and exits with a one-line error
    (status 2), matching the ``TraceFormatError`` convention.
    """


class PipelineInterrupted(ReproError):
    """The pipeline was stopped by SIGINT/SIGTERM mid-run.

    The checkpoint (when one is configured) has been sealed before this
    is raised; ``checkpoint_dir`` carries where, so the CLI can print a
    one-line "resume with --resume" hint and exit 130.
    """

    def __init__(self, message: str, checkpoint_dir: "str | None" = None):
        super().__init__(message)
        self.checkpoint_dir = checkpoint_dir


class ServiceError(ReproError):
    """The detection service (or its client) hit a protocol-level error.

    Carries the structured error ``code`` from the wire (``over_capacity``,
    ``quarantined``, ``bad_segment``, ...) plus an optional server-suggested
    ``retry_after_s``.  Transient codes are retried by the client's backoff
    loop; terminal codes (quarantined, protocol violations) propagate."""

    def __init__(
        self,
        message: str,
        code: str = "error",
        retry_after_s: "float | None" = None,
    ):
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


class TraceAnalysisOOM(ReproError):
    """Trace analysis would exceed the configured memory budget.

    This reproduces the paper's Table 8 observation that unselective
    memory tracing makes the HB analysis run out of memory.
    """

    def __init__(self, message: str, required_bytes: int, budget_bytes: int):
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args
        # (just the message) and would drop the byte counts — this
        # exception crosses process boundaries when a parallel chunk
        # worker overruns its memory budget.
        return (
            type(self),
            (self.args[0], self.required_bytes, self.budget_bytes),
        )


class SimFailure(Exception):
    """Base class for failures raised by simulated system code."""


class SimAbort(SimFailure):
    """A node called ``abort()`` (the analogue of ``System.exit``)."""


class RpcError(SimFailure):
    """An RPC call failed (remote handler raised, or target unreachable)."""


class RpcTimeout(RpcError):
    """An RPC call exceeded its per-call timeout (in scheduler steps).

    The caller gave up on the reply; the remote handler may still run to
    completion.  No ``RPC_JOIN`` record is emitted for the timed-out
    attempt, so the abandoned call contributes no Rule-Mrpc edge (the
    server's ``End`` could otherwise be ordered *after* the caller's
    ``Join`` — a backward edge)."""


class NoNodeError(SimFailure):
    """Coordination-service operation on a znode that does not exist."""


class NodeExistsError(SimFailure):
    """Coordination-service create of a znode that already exists."""


class ThreadKilled(BaseException):
    """Internal: a simulated thread is being torn down at end of run."""
