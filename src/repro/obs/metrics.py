"""Metrics: counters, gauges, and histograms with labeled children.

The registry is the pipeline's cost-accounting substrate (the numbers
behind Tables 6/7 and every future perf PR).  Design points:

* **Thread-safe.**  Simulated threads are real OS threads; every value
  update takes the metric's lock, every get-or-create takes the
  registry's lock.  A concurrent ``inc`` never loses an update.
* **Zero-cost when disabled.**  The module-level active registry starts
  as ``NULL_REGISTRY``, whose ``counter``/``gauge``/``histogram`` return
  one shared no-op metric: instrumented call sites pay one attribute
  call and nothing else, and no state accumulates.
* **Labels.**  ``registry.counter("rpc_calls_total").labels(method="get")``
  returns a child counter; the parent renders each labeled series
  separately (Prometheus-style) and also aggregates them.

Use ``use_registry(MetricsRegistry())`` (or the pipeline's ``observe``
config, which does it for you) to turn collection on for a region.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Label key-value pairs, sorted — the identity of one child series.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-flavoured, but any
#: unit works; the +Inf bucket is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: one named series plus optional labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, "Metric"] = {}

    # -- labels ------------------------------------------------------------

    def labels(self, **labels: str) -> "Metric":
        """The child series for these label values (created on demand)."""
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "Metric":
        return type(self)(self.name, self.help)

    def children(self) -> Dict[LabelKey, "Metric"]:
        with self._lock:
            return dict(self._children)

    # -- snapshot ----------------------------------------------------------

    def value_dict(self) -> Dict[str, object]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        data = dict(self.value_dict())
        series = {}
        for key, child in self.children().items():
            label = ",".join(f"{k}={v}" for k, v in key)
            series[label] = child.value_dict()
        if series:
            data["series"] = series
        return data


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """This series' own count plus all labeled children."""
        with self._lock:
            total = self._value
            kids = list(self._children.values())
        return total + sum(k.value for k in kids)

    def value_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge(Metric):
    """A value that can go up and down (sizes, last-seen quantities)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def value_dict(self) -> Dict[str, object]:
        return {"value": self.value}


class Histogram(Metric):
    """Bucketed distribution with count and sum."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.buckets)

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    return
            self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            own = self._count
            kids = list(self._children.values())
        return own + sum(k.count for k in kids)

    @property
    def sum(self) -> float:
        with self._lock:
            own = self._sum
            kids = list(self._children.values())
        return own + sum(k.sum for k in kids)

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last, children included."""
        with self._lock:
            totals = list(self._bucket_counts)
            kids = list(self._children.values())
        for kid in kids:
            for i, c in enumerate(kid.bucket_counts()):
                totals[i] += c
        return totals

    def value_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.bucket_counts())},
                "+Inf": self.bucket_counts()[-1],
            },
        }


class MetricsRegistry:
    """Named metrics, get-or-create, snapshot-able."""

    enabled = True

    def __init__(self, name: str = "repro") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def metrics(self) -> List[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe view of everything: {name: {kind, value(s), series}}."""
        out: Dict[str, Dict[str, object]] = {}
        for metric in self.metrics():
            data = {"kind": metric.kind}
            data.update(metric.snapshot())
            out[metric.name] = data
        return out


class _NullMetric(Metric):
    """One shared metric that records nothing; every mutator is a no-op."""

    kind = "null"

    def __init__(self) -> None:  # no locks, no children
        self.name = "<null>"
        self.help = ""

    def labels(self, **labels: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    def value_dict(self) -> Dict[str, object]:
        return {"value": 0.0}

    def snapshot(self) -> Dict[str, object]:
        return {"value": 0.0}


NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out ``NULL_METRIC``, snapshots empty."""

    enabled = False

    def __init__(self) -> None:
        self.name = "<null>"

    def counter(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):  # type: ignore[override]
        return NULL_METRIC

    def metrics(self) -> List[Metric]:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The active registry (``NULL_REGISTRY`` when observability is off)."""
    return _active


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the active one; ``None`` disables."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


def metrics_enabled() -> bool:
    return _active.enabled


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scoped activation: restore the previous registry on exit."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
