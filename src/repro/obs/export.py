"""Exporters: Prometheus text exposition, JSON, Chrome trace events.

Three consumers, three formats:

* ``render_prometheus(registry)`` — the text exposition format, for
  scraping or eyeballing (``repro metrics``);
* ``registry_to_json`` / ``profile_to_json`` — machine-readable
  snapshots for regression checks (``BENCH_pipeline.json``,
  ``profile.json``);
* ``spans_to_chrome(tracer)`` — Chrome trace-event format (JSON object
  with a ``traceEvents`` array of complete ``"ph": "X"`` events); load
  the file in ``chrome://tracing`` or https://ui.perfetto.dev to see the
  pipeline as a flamegraph.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer


# -- Prometheus text exposition ------------------------------------------------


def _prom_labels(label_key) -> str:
    if not label_key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return "{" + inner + "}"


def _prom_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in sorted(registry.metrics(), key=lambda m: m.name):
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        children = metric.children()
        if isinstance(metric, Histogram):
            cumulative = 0
            counts = metric.bucket_counts()
            for bound, count in zip(metric.buckets, counts):
                cumulative += count
                lines.append(
                    f'{metric.name}_bucket{{le="{_prom_number(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{metric.name}_bucket{{le="+Inf"}} {metric.count}'
            )
            lines.append(f"{metric.name}_sum {_prom_number(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
        elif children:
            for key, child in sorted(children.items()):
                lines.append(
                    f"{metric.name}{_prom_labels(key)} "
                    f"{_prom_number(child.value)}"
                )
        else:
            lines.append(f"{metric.name} {_prom_number(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSON ---------------------------------------------------------------------


def registry_to_json(registry: MetricsRegistry) -> Dict[str, object]:
    return registry.snapshot()


def profile_to_json(
    tracer: SpanTracer,
    registry: Optional[MetricsRegistry] = None,
    **extra: object,
) -> Dict[str, object]:
    """One self-describing profile document: spans + metrics + context."""
    doc: Dict[str, object] = {
        "format": "repro-profile",
        "version": 1,
        "profile": tracer.to_dict(),
    }
    if registry is not None:
        doc["metrics"] = registry.snapshot()
    doc.update(extra)
    return doc


def write_json(path: str, document: Dict[str, object]) -> None:
    with open(path, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True, default=str)
        fh.write("\n")


# -- Chrome trace-event format -------------------------------------------------


def spans_to_chrome(tracer: SpanTracer, pid: int = 1) -> Dict[str, object]:
    """Complete ('ph': 'X') trace events, one per closed span.

    Timestamps and durations are microseconds relative to the tracer's
    epoch, as the trace-event spec requires.  Thread-name metadata
    events label each simulated/OS thread lane.
    """
    events: List[Dict[str, object]] = []
    thread_ids: Dict[str, int] = {}
    for span in sorted(tracer.closed(), key=lambda s: s.start_wall):
        tid = thread_ids.setdefault(span.thread, len(thread_ids) + 1)
        args: Dict[str, object] = {
            "cpu_ms": round(span.cpu_seconds * 1e3, 3),
            "status": span.status,
        }
        if span.error:
            args["error"] = span.error
        args.update({k: str(v) for k, v in span.attrs.items()})
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(span.start_wall * 1e6, 1),
                "dur": round(span.wall_seconds * 1e6, 1),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    for thread, tid in thread_ids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tracer": tracer.name},
    }


def write_chrome_trace(path: str, tracer: SpanTracer, pid: int = 1) -> None:
    write_json(path, spans_to_chrome(tracer, pid=pid))


# -- human-readable span table -------------------------------------------------


def render_span_table(tracer: SpanTracer, indent: str = "  ") -> str:
    """Per-span table, tree-indented, with wall/CPU time and share.

    Shares are of the total root wall time, so sibling stages sum to
    roughly 100% and nested spans show where a stage's time went.
    """
    closed = tracer.closed()
    if not closed:
        return "(no spans recorded)"
    total = tracer.total_wall() or 1e-12
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in sorted(closed, key=lambda s: s.start_wall):
        by_parent.setdefault(span.parent_id, []).append(span)

    rows: List[tuple] = []

    def walk(parent_id: Optional[int], depth: int) -> None:
        for span in by_parent.get(parent_id, []):
            marker = " [error]" if span.status != "ok" else ""
            rows.append(
                (
                    indent * depth + span.name + marker,
                    f"{span.wall_seconds:.3f}",
                    f"{span.cpu_seconds:.3f}",
                    f"{100.0 * span.wall_seconds / total:5.1f}%",
                )
            )
            walk(span.span_id, depth + 1)

    walk(None, 0)
    headers = ("span", "wall s", "cpu s", "share")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
