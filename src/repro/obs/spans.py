"""Spans: nested wall/CPU timing of pipeline regions.

``with span("hb.build"):`` times a region against the *active* tracer.
Spans nest per OS thread (a thread-local stack tracks the current
parent), record wall time (``perf_counter``) and process CPU time
(``process_time``), and survive exceptions — a span that unwinds with an
error is closed with ``status="error"`` and the exception propagates.

Exports (see ``repro.obs.export``):

* plain JSON — the span tree with timings, for diffing across commits;
* Chrome trace-event format — load the file in ``chrome://tracing`` (or
  https://ui.perfetto.dev) for a flamegraph of where pipeline time goes.

Like the metrics registry, the active tracer defaults to a no-op
(``NULL_TRACER``): instrumented code pays one method call and an empty
context manager when profiling is off.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from contextlib import contextmanager


@dataclass
class Span:
    """One timed region (closed spans only ever appear in exports)."""

    span_id: int
    name: str
    parent_id: Optional[int]
    thread: str
    start_wall: float  # seconds since the tracer's epoch
    start_cpu: float
    end_wall: Optional[float] = None
    end_cpu: Optional[float] = None
    status: str = "ok"
    error: Optional[str] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def cpu_seconds(self) -> float:
        if self.end_cpu is None:
            return 0.0
        return self.end_cpu - self.start_cpu

    @property
    def depth_root(self) -> bool:
        return self.parent_id is None

    def set(self, **attrs: object) -> "Span":
        """Attach attributes to the span (shown in both exports)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start": self.start_wall,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class SpanTracer:
    """Collects spans; one instance per profiled pipeline run."""

    enabled = True

    def __init__(self, name: str = "profile") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._epoch_wall = time.perf_counter()
        self._epoch_cpu = time.process_time()
        self.spans: List[Span] = []  # closed spans, in close order

    # -- internals ---------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        record = Span(
            span_id=self._allocate_id(),
            name=name,
            parent_id=parent.span_id if parent is not None else None,
            thread=threading.current_thread().name,
            start_wall=time.perf_counter() - self._epoch_wall,
            start_cpu=time.process_time() - self._epoch_cpu,
            attrs=dict(attrs),
        )
        stack.append(record)
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            record.end_wall = time.perf_counter() - self._epoch_wall
            record.end_cpu = time.process_time() - self._epoch_cpu
            stack.pop()
            with self._lock:
                self.spans.append(record)

    # -- views -------------------------------------------------------------

    def closed(self) -> List[Span]:
        with self._lock:
            return list(self.spans)

    def roots(self) -> List[Span]:
        return [s for s in self.closed() if s.parent_id is None]

    def by_name(self, name: str) -> List[Span]:
        return [s for s in self.closed() if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.closed() if s.parent_id == span.span_id]

    def total_wall(self) -> float:
        return sum(s.wall_seconds for s in self.roots())

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "spans": [s.to_dict() for s in sorted(self.closed(),
                                                  key=lambda s: s.start_wall)],
        }


class _NullSpan:
    """Reusable no-op context manager; also a do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer(SpanTracer):
    """The disabled tracer: ``span`` is a shared empty context manager."""

    enabled = False

    def __init__(self) -> None:
        self.name = "<null>"
        self.spans = []

    def span(self, name: str, **attrs: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def closed(self) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "spans": []}


NULL_TRACER = NullTracer()

_active: SpanTracer = NULL_TRACER


def get_tracer() -> SpanTracer:
    return _active


def set_tracer(tracer: Optional[SpanTracer]) -> SpanTracer:
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


def tracing_enabled() -> bool:
    return _active.enabled


@contextmanager
def use_tracer(tracer: Optional[SpanTracer]) -> Iterator[SpanTracer]:
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)


def span(name: str, **attrs: object):
    """Time a region against the active tracer (no-op when disabled)."""
    return _active.span(name, **attrs)
