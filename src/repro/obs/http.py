"""Liveness/readiness probes and a ``/metrics`` scrape endpoint.

A production detection service needs three answers a load balancer (or a
human with ``curl``) can get without attaching a debugger:

* ``/healthz`` — liveness: the process is up and serving requests
  (200 always, by construction of answering at all);
* ``/readyz``  — readiness: the service is willing to take *new* work
  (200 when the readiness callback says yes, 503 with the refusal
  reason when it says no — e.g. tenant budget exhausted, overload
  ladder on the ``paused`` rung);
* ``/metrics`` — the active :class:`repro.obs.MetricsRegistry` in
  Prometheus text exposition format.

Stdlib-only (``http.server`` on a daemon thread); a missing registry
serves an empty exposition rather than failing the scrape.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["ObsHttpServer"]

#: Returns ``(ready, reason)``; the reason is served in the 503 body.
ReadinessProbe = Callable[[], Tuple[bool, str]]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        owner: "ObsHttpServer" = self.server.owner  # type: ignore[attr-defined]
        if self.path == "/healthz":
            self._respond(200, b"ok\n")
        elif self.path == "/readyz":
            ready, reason = owner.readiness()
            if ready:
                self._respond(200, b"ready\n")
            else:
                self._respond(503, f"not ready: {reason}\n".encode())
        elif self.path == "/metrics":
            registry = owner.registry or get_registry()
            body = b""
            if isinstance(registry, MetricsRegistry):
                body = render_prometheus(registry).encode()
            self._respond(200, body, content_type="text/plain; version=0.0.4")
        else:
            self._respond(404, b"not found\n")

    def log_message(self, format: str, *args: object) -> None:
        pass  # probes are high-frequency; stay silent

    def _respond(
        self, status: int, body: bytes, content_type: str = "text/plain"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ObsHttpServer:
    """Serve probes + metrics on a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after ``start()``).  ``readiness`` defaults to always-ready; the
    detection service installs its admission-based probe."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        readiness: Optional[ReadinessProbe] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.registry = registry
        self._readiness = readiness
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def readiness(self) -> Tuple[bool, str]:
        if self._readiness is None:
            return True, ""
        return self._readiness()

    def start(self) -> "ObsHttpServer":
        self._httpd = ThreadingHTTPServer((self.host, self.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.owner = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="obs-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
