"""Observability: metrics, spans, and profile exports.

The cost-accounting layer under the whole DCatch pipeline.  Three parts:

* ``MetricsRegistry`` — thread-safe counters / gauges / histograms with
  labeled children; a module-level *active* registry that defaults to a
  zero-cost no-op (``NULL_REGISTRY``);
* ``SpanTracer`` / ``span`` — nested wall+CPU timing of pipeline
  regions, exportable as JSON and Chrome trace-event files;
* exporters — Prometheus text exposition, JSON snapshots, Chrome
  ``chrome://tracing`` traces, and a human-readable span table.

Instrumented code does::

    from repro import obs

    obs.counter("rpc_calls_total").labels(method=name).inc()
    with obs.span("hb.build"):
        ...

and pays nothing unless a registry/tracer is active.  The pipeline
activates both for the duration of one run when
``PipelineConfig.observe`` is true (the default) and snapshots them onto
``PipelineResult.metrics`` / ``PipelineResult.profile``.

See ``docs/observability.md`` for the full API and export formats.
"""

from __future__ import annotations

from repro.obs.export import (
    profile_to_json,
    registry_to_json,
    render_prometheus,
    render_span_table,
    spans_to_chrome,
    write_chrome_trace,
    write_json,
)
from repro.obs.http import ObsHttpServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NullTracer",
    "NULL_TRACER",
    "ObsHttpServer",
    "Span",
    "SpanTracer",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_registry",
    "use_registry",
    "metrics_enabled",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "tracing_enabled",
    "span",
    "enabled",
    "render_prometheus",
    "render_span_table",
    "registry_to_json",
    "profile_to_json",
    "spans_to_chrome",
    "write_chrome_trace",
    "write_json",
]


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter on the *active* registry."""
    return get_registry().counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return get_registry().gauge(name, help)


def histogram(name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
    return get_registry().histogram(name, help, buckets=buckets)


def enabled() -> bool:
    """True when a real (non-null) registry is active."""
    return metrics_enabled()
