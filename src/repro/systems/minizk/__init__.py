"""mini-ZooKeeper: the coordination service *as a system under test*.

Unlike ``repro.runtime.zookeeper`` (the substrate other systems use),
this package implements ZooKeeper's own startup protocols — the epoch
handshake between leader and follower, and leader election — over raw
socket messages and event queues, matching Table 1 of the paper
(ZooKeeper: asynchronous sockets + events, no RPC).

Seeded bugs (Table 3):

* **ZK-1144** — the follower's disk-restored ``accepted_epoch`` write
  races with the NEWEPOCH handler's write; if the restore lands second it
  clobbers the new epoch and the follower waits forever (service
  unavailable, local hang, order violation).
* **ZK-1270** — a peer's vote notification races with the election
  round bump that clears the vote table; a vote arriving before the
  clear is lost and never re-sent, so the election never converges
  (service unavailable, local hang, order violation).
"""

from repro.systems.minizk.election import ElectionNode, VoterNode
from repro.systems.minizk.quorum import FollowerNode, LeaderNode
from repro.systems.minizk.workloads import ZK1144Workload, ZK1270Workload

__all__ = [
    "LeaderNode",
    "FollowerNode",
    "ElectionNode",
    "VoterNode",
    "ZK1144Workload",
    "ZK1270Workload",
]
