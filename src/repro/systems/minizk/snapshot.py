"""Transaction log and snapshotting (ZooKeeper's persistence layer).

Every applied transaction lands in the in-memory txn log; a snapshot
thread periodically compacts the log into a snapshot under the
snapshot lock.  ``recover`` rebuilds the state machine from snapshot +
log suffix — the path a restarting follower takes before the epoch
handshake.  No seeded bug: used by scale tests and the recovery test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class TxnStore:
    """In-memory txn log + snapshot for one server."""

    def __init__(self, node: "object", snapshot_every: int = 5) -> None:
        self.node = node
        self.snapshot_every = snapshot_every
        self.txn_log = node.shared_list("txn_log")
        self.snapshot = node.shared_var("snapshot", {})
        self.snapshot_zxid = node.shared_var("snapshot_zxid", 0)
        self.last_zxid = node.shared_counter("last_zxid", 0)
        self._lock = node.lock("snapshot-lock")

    # -- write path ---------------------------------------------------------

    def apply(self, key: str, value: Any) -> int:
        """Append one transaction; returns its zxid."""
        zxid = self.last_zxid.increment()
        self.txn_log.append((zxid, key, value))
        return zxid

    # -- snapshotting ---------------------------------------------------------

    def take_snapshot(self) -> int:
        """Compact the full log into the snapshot (under the lock)."""
        with self._lock:
            state = dict(self.snapshot.get())
            zxid = self.snapshot_zxid.get()
            for txn_zxid, key, value in self.txn_log.snapshot():
                if txn_zxid > zxid:
                    state[key] = value
                    zxid = txn_zxid
            self.snapshot.set(state)
            self.snapshot_zxid.set(zxid)
            # Truncate the compacted prefix.
            while True:
                head = self.txn_log.snapshot()
                if not head or head[0][0] > zxid:
                    break
                self.txn_log.pop_first()
        return zxid

    def start_snapshot_thread(self, rounds: int = 6, interval: int = 8) -> None:
        def snapshotter() -> None:
            for _ in range(rounds):
                sleep(interval)
                self.take_snapshot()

        self.node.spawn(snapshotter, name=f"{self.node.name}.snapshotter")

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Rebuild the state machine: snapshot + log suffix replay."""
        with self._lock:
            state = dict(self.snapshot.get())
            zxid = self.snapshot_zxid.get()
            for txn_zxid, key, value in self.txn_log.snapshot():
                if txn_zxid > zxid:
                    state[key] = value
        return state
