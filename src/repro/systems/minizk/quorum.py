"""Leader/follower epoch handshake (ZK-1144).

Startup: the follower registers with the leader over a socket; the
leader replies with a NEWEPOCH proposal.  The follower processes the
proposal on its sync event queue and acks; the leader completes startup
once a quorum acked.

The seeded ZK-1144 race: the follower's main thread restores
``accepted_epoch`` from disk *after* registering.  If the NEWEPOCH
handler's write lands first, the restore clobbers it, the follower's
wait loop never sees the new epoch, and startup hangs.
"""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.cluster import Cluster

NEW_EPOCH = 2
DISK_EPOCH = 1


class LeaderNode:
    """The quorum leader."""

    def __init__(self, cluster: Cluster, name: str = "zk1", quorum: int = 1):
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.quorum = quorum
        self.acks = self.node.shared_counter("epoch_acks")
        self.node.on_message("register", self.on_register)
        self.node.on_message("ack_epoch", self.on_ack_epoch)
        self.node.spawn(self.run_startup, name="leader-main")

    def on_register(self, payload, src: str) -> None:
        """A follower joined: propose the new epoch."""
        self.log.info(f"follower {src} registered; proposing epoch {NEW_EPOCH}")
        self.node.send(src, "new_epoch", {"epoch": NEW_EPOCH})

    def on_ack_epoch(self, payload, src: str) -> None:
        self.acks.increment()

    def run_startup(self) -> None:
        while self.acks.get() < self.quorum:
            sleep(4)
        self.log.info("quorum acked the new epoch; leader active")


class FollowerNode:
    """A quorum follower."""

    def __init__(self, cluster: Cluster, name: str = "zk2", leader: str = "zk1"):
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.leader = leader
        self.accepted_epoch = self.node.shared_var("accepted_epoch", 0)
        self.current_epoch_file = self.node.shared_var("current_epoch_file", 0)
        self.sync_queue = self.node.event_queue("sync", consumers=1)
        self.sync_queue.register("new_epoch", self.on_new_epoch_event)
        self.node.on_message("new_epoch", self.on_new_epoch_message)
        self.node.spawn(self.run_startup, name="follower-main")

    def on_new_epoch_message(self, payload, src: str) -> None:
        """Socket handler: hand the proposal to the sync stage."""
        self.sync_queue.post("new_epoch", payload)

    def on_new_epoch_event(self, event) -> None:
        """Sync-stage handler: adopt the leader's epoch and ack."""
        self.accepted_epoch.set(event.payload["epoch"])
        with self.node.lock("epoch-file"):
            self.current_epoch_file.set(event.payload["epoch"])
        self.node.send(self.leader, "ack_epoch", {"epoch": event.payload["epoch"]})

    def run_startup(self) -> None:
        self.node.send(self.leader, "register", {"me": self.node.name})
        # ZK-1144: restoring the on-disk epoch *after* registering races
        # with the NEWEPOCH handler's write.  If this lands second, the
        # new epoch is clobbered and the wait below never finishes.
        self.accepted_epoch.set(DISK_EPOCH)
        while self.accepted_epoch.get() < NEW_EPOCH:
            sleep(3)
        self.log.info(f"follower synced at epoch {NEW_EPOCH}")
