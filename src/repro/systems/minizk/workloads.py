"""mini-ZooKeeper benchmark workloads (Table 3: ZK-1144, ZK-1270)."""

from __future__ import annotations

from repro.runtime.cluster import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minizk.election import ElectionNode, VoterNode
from repro.systems.minizk.quorum import FollowerNode, LeaderNode


class ZK1144Workload(Workload):
    """startup: leader/follower epoch handshake (LH / OV)."""

    info = BenchmarkInfo(
        bug_id="ZK-1144",
        system="ZooKeeper",
        workload="startup",
        symptom="Service unavailable",
        error_pattern="LH",
        root_cause="OV",
    )
    default_seed = 0
    max_steps = 30_000
    churn_profile = (("zk2", 20, 10),)

    def build(self, cluster: Cluster) -> None:
        LeaderNode(cluster, "zk1", quorum=1)
        FollowerNode(cluster, "zk2", leader="zk1")


class ZK1270Workload(Workload):
    """startup: leader election round-bump race (LH / OV)."""

    info = BenchmarkInfo(
        bug_id="ZK-1270",
        system="ZooKeeper",
        workload="startup",
        symptom="Service unavailable",
        error_pattern="LH",
        root_cause="OV",
    )
    default_seed = 0
    max_steps = 30_000
    churn_profile = (("zk1", 30, 30),)

    def build(self, cluster: Cluster) -> None:
        ElectionNode(cluster, "zk1", peers=("zk2",), quorum=2, round_timeout=3)
        VoterNode(cluster, "zk2", think_ticks=10)
