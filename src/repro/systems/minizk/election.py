"""Fast-leader-election (ZK-1270).

A stripped-down FastLeaderElection: the electing node votes for itself,
asks its peer for a vote, and — after a round timeout — bumps its logical
clock, *clearing the vote table*, before waiting for a quorum of votes.
Peers answer a vote request once (they re-notify only on state change,
like real ZooKeeper).

The seeded ZK-1270 race: the peer's vote notification can arrive before
the round bump; the clear then erases it, the peer never re-sends, and
the election never reaches quorum — the service stays unavailable.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime import sleep
from repro.runtime.cluster import Cluster
from repro.runtime.node import NodeBehavior


class ElectionNode(NodeBehavior):
    """The node running the election logic."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "zk1",
        peers=("zk2",),
        quorum: int = 2,
        round_timeout: int = 3,
        give_up_after: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.peers = list(peers)
        self.quorum = quorum
        self.round_timeout = round_timeout
        #: Opt-in robustness: give up (and log) after this many quorum
        #: polls instead of waiting forever.  ``None`` keeps the faithful
        #: ZK-1270 behavior — the election hang IS the seeded bug, so the
        #: bounded wait must never be the default.
        self.give_up_after = give_up_after
        self.votes = self.node.shared_dict("votes")
        self.logical_clock = self.node.shared_counter("logical_clock")
        self.leader = self.node.shared_var("leader", None)
        self.node.on_message("vote", self.on_vote)
        self.node.attach(self)
        self.node.spawn(self.run_election, name="election-main")

    def on_vote(self, payload, src: str) -> None:
        """Vote notification handler (the WorkerReceiver of real ZK)."""
        self.votes.put(src, payload["vote"])

    def on_restart(self, node) -> None:
        """Crash recovery: a restarted elector starts a fresh round — it
        re-votes for itself and re-asks every peer (real ZK re-sends its
        notification on server restart)."""
        round_number = self.logical_clock.get() + 1

        def re_election() -> None:
            self.votes.put(self.node.name, self.node.name)
            for peer in self.peers:
                self.node.send(peer, "ask_vote", {"round": round_number})

        node.spawn(re_election, name="re-election")

    def run_election(self) -> None:
        self.votes.put(self.node.name, self.node.name)
        for peer in self.peers:
            self.node.send(peer, "ask_vote", {"round": 1})
        sleep(self.round_timeout)
        # Round timeout: bump the logical clock and restart the round.
        # ZK-1270: clearing the table races with incoming notifications;
        # a vote that arrived early is erased and never re-sent.
        self.logical_clock.increment()
        self.votes.clear()
        self.votes.put(self.node.name, self.node.name)
        polls = 0
        while self.votes.size() < self.quorum:
            polls += 1
            if self.give_up_after is not None and polls > self.give_up_after:
                self.log.warn(
                    f"election gave up after {self.give_up_after} polls "
                    f"({self.votes.size()}/{self.quorum} votes)"
                )
                return
            sleep(3)
        self.leader.set(self.node.name)
        self.log.info(f"leader elected: {self.node.name}")


class VoterNode(NodeBehavior):
    """A peer that answers a vote request exactly once."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "zk2",
        think_ticks: int = 10,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.think_ticks = think_ticks
        self.answered = self.node.shared_var("answered", False)
        self.node.on_message("ask_vote", self.on_ask_vote)
        self.node.attach(self)

    def on_restart(self, node) -> None:
        """Crash recovery: a restarted voter forgot it ever answered, so
        the next ``ask_vote`` gets a fresh notification."""
        self.answered.set(False)

    def on_ask_vote(self, payload, src: str) -> None:
        with self.node.lock("vote-state"):
            if self.answered.get():
                return  # peers only notify on state change
            self.answered.set(True)
        sleep(self.think_ticks)  # evaluate the proposal
        self.node.send(src, "vote", {"vote": src})
