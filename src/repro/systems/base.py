"""Workload abstraction: one benchmark of the paper's Table 3.

A ``Workload`` knows how to wire a fresh cluster with one of the four
mini systems running one failure-prone scenario.  The DCatch pipeline
builds clusters through workloads:

* the *monitored* run (correct execution) produces the trace;
* the trigger module re-builds fresh clusters per ordering experiment.
"""

from __future__ import annotations

import inspect
import os
from dataclasses import dataclass, field
from types import ModuleType
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.cluster import Cluster


@dataclass(frozen=True)
class BenchmarkInfo:
    """Table 3 metadata for one benchmark bug."""

    bug_id: str  # e.g. "MR-3274"
    system: str  # e.g. "Hadoop MapReduce"
    workload: str  # e.g. "startup + wordcount"
    symptom: str  # e.g. "Hang"
    error_pattern: str  # LE / LH / DE / DH
    root_cause: str  # OV / AV


class Workload:
    """Base class: subclasses wire one scenario onto a cluster."""

    #: Table 3 metadata; subclasses must set this.
    info: BenchmarkInfo

    #: Scheduler seed whose run is known-correct (the monitored run).
    default_seed: int = 0

    #: Step budget for monitored runs (churn included).
    max_steps: int = 60_000

    #: Step budget for trigger re-runs (no churn; hangs surface fast).
    trigger_max_steps: int = 5_000

    #: Background housekeeping load: (node name, entries, rounds) per
    #: churn thread.  This is the local memory traffic that selective
    #: tracing skips and full tracing records (Table 8).
    churn_profile: tuple = ()

    #: Override when the workload's system code lives outside the
    #: workload class's own package (e.g. the beyond-benchmark workloads
    #: reuse mini-system packages).  Names of importable packages.
    source_packages: tuple = ()

    def build(self, cluster: Cluster) -> None:
        raise NotImplementedError

    # -- cluster construction ------------------------------------------------

    def cluster(self, seed: Optional[int] = None, churn: bool = True) -> Cluster:
        cluster = Cluster(
            name=self.info.bug_id,
            seed=self.default_seed if seed is None else seed,
            max_steps=self.max_steps if churn else self.trigger_max_steps,
        )
        self.build(cluster)
        if churn:
            self._start_churn(cluster)
        return cluster

    def _start_churn(self, cluster: Cluster) -> None:
        from repro.systems.background import start_churn

        for node_name, entries, rounds in self.churn_profile:
            start_churn(cluster.node(node_name), entries=entries, rounds=rounds)

    def factory(self) -> Callable[[int], Cluster]:
        """Cluster factory for trigger re-runs (housekeeping churn off —
        it shares no state with any candidate and only adds steps)."""

        def make(seed: int) -> Cluster:
            return self.cluster(seed, churn=False)

        return make

    # -- sources for static analysis -------------------------------------------

    def modules(self) -> List[ModuleType]:
        """Modules containing this workload's system code (for the
        static pruner's SourceIndex and the tracer's comm-function scan)."""
        import importlib

        if self.source_packages:
            package_names = list(self.source_packages)
        else:
            module = inspect.getmodule(type(self))
            package_names = [module.__name__.rsplit(".", 1)[0]]
        result = []
        for package_name in package_names:
            package = importlib.import_module(package_name)
            package_dir = os.path.dirname(package.__file__)
            for entry in sorted(os.listdir(package_dir)):
                if entry.endswith(".py") and not entry.startswith("_"):
                    result.append(
                        importlib.import_module(f"{package_name}.{entry[:-3]}")
                    )
        return result

    def lines_of_code(self) -> int:
        """Real LoC of the mini system (Table 3's LoC column analogue)."""
        total = 0
        for module in self.modules():
            try:
                source = inspect.getsource(module)
            except (OSError, TypeError):
                continue
            total += sum(
                1 for line in source.splitlines() if line.strip() and not
                line.strip().startswith("#")
            )
        return total

    def __repr__(self) -> str:
        return f"<Workload {self.info.bug_id}>"
