"""The bootstrapping node: announce via gossip, pull-wait for the ack."""

from __future__ import annotations

from typing import Optional

from repro.runtime import sleep
from repro.runtime.cluster import Cluster
from repro.runtime.node import NodeBehavior


class BootstrapNode(NodeBehavior):
    """A node joining the ring."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "ca2",
        seed: str = "ca1",
        token: int = 42,
        reannounce_every: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.seed = seed
        self.token = token
        #: Opt-in robustness: re-send the gossip announce every N ack
        #: polls (the announce or its ack may have been lost to a crash
        #: or partition).  ``None`` keeps the single-shot announce.
        self.reannounce_every = reannounce_every
        self.acked = self.node.shared_var("acked", False)
        self.store = self.node.shared_dict("store")
        self.node.on_message("gossip-ack", self.on_gossip_ack)
        self.node.on_message("replicate", self.on_replicate)
        self.node.on_message("read-repair", self.on_read_repair)
        self.node.attach(self)
        self.node.spawn(self.run_bootstrap, name="bootstrap-main")

    def on_restart(self, node) -> None:
        """Crash recovery: an interrupted bootstrap starts over — reset
        the handshake flag and announce ourselves to the seed again."""
        self.acked.set(False)
        node.spawn(self.run_bootstrap, name="bootstrap-restart")

    def on_gossip_ack(self, payload, src: str) -> None:
        self.acked.set(True)

    def on_replicate(self, payload, src: str) -> None:
        self.store.put(payload["key"], payload["value"])

    def on_read_repair(self, payload, src: str) -> None:
        current = self.store.get(payload["key"])
        if current != payload["value"] and payload["value"] is not None:
            self.store.put(payload["key"], payload["value"])

    def run_bootstrap(self) -> None:
        self.node.send(self.seed, "gossip", {"token": self.token})
        # Custom pull-based synchronization: poll until the seed has
        # acked our digest (Rule-Mpull material).
        polls = 0
        while not self.acked.get():
            polls += 1
            if (
                self.reannounce_every is not None
                and polls % self.reannounce_every == 0
            ):
                # The announce (or its ack) may be lost; re-send it.
                self.node.send(self.seed, "gossip", {"token": self.token})
            sleep(3)
        self.log.info("bootstrap complete; serving as backup replica")
