"""The bootstrapping node: announce via gossip, pull-wait for the ack."""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class BootstrapNode:
    """A node joining the ring."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "ca2",
        seed: str = "ca1",
        token: int = 42,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.seed = seed
        self.token = token
        self.acked = self.node.shared_var("acked", False)
        self.store = self.node.shared_dict("store")
        self.node.on_message("gossip-ack", self.on_gossip_ack)
        self.node.on_message("replicate", self.on_replicate)
        self.node.on_message("read-repair", self.on_read_repair)
        self.node.spawn(self.run_bootstrap, name="bootstrap-main")

    def on_gossip_ack(self, payload, src: str) -> None:
        self.acked.set(True)

    def on_replicate(self, payload, src: str) -> None:
        self.store.put(payload["key"], payload["value"])

    def on_read_repair(self, payload, src: str) -> None:
        current = self.store.get(payload["key"])
        if current != payload["value"] and payload["value"] is not None:
            self.store.put(payload["key"], payload["value"])

    def run_bootstrap(self) -> None:
        self.node.send(self.seed, "gossip", {"token": self.token})
        # Custom pull-based synchronization: poll until the seed has
        # acked our digest (Rule-Mpull material).
        while not self.acked.get():
            sleep(3)
        self.log.info("bootstrap complete; serving as backup replica")
