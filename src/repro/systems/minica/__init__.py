"""mini-Cassandra: gossip-based ring membership with staged handlers.

Communication is socket-only (Table 1: Cassandra uses asynchronous
sockets, custom protocols and events, no RPC).  Gossip digests land on a
single-consumer "gossip stage" event queue (Cassandra's SEDA design);
bootstrap uses a custom pull loop (the booting node polls its own acked
flag, set by the ack digest handler).

Seeded bug (Table 3):

* **CA-1011** — startup: a write request computes its replica targets
  from the token map concurrently with the gossip-stage handler
  registering the bootstrapping node's token.  If the read wins, the
  write is not replicated to the bootstrap backup (data backup failure,
  distributed explicit error, atomicity violation).
"""

from repro.systems.minica.bootstrap import BootstrapNode
from repro.systems.minica.gossip import SeedNode
from repro.systems.minica.workloads import CA1011Workload

__all__ = ["SeedNode", "BootstrapNode", "CA1011Workload"]
