"""The seed node: gossip stage, token map, write path (CA-1011)."""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.cluster import Cluster
from repro.runtime.node import NodeBehavior


class SeedNode(NodeBehavior):
    """An established ring member that accepts writes."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "ca1",
        replication: int = 2,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.replication = replication
        self.tokens = self.node.shared_dict("tokens")
        self.store = self.node.shared_dict("store")
        self.digests_seen = self.node.shared_counter("digests_seen")
        self.gossip_stage = self.node.event_queue("gossip-stage", consumers=1)
        self.gossip_stage.register("digest", self.on_gossip_digest)
        self.node.on_message("gossip", self.on_gossip_message)
        self.node.on_message("replicate", self.on_replicate)
        self.node.on_message("read-repair", self.on_read_repair)

        def register_self() -> None:
            self.tokens.put(self.node.name, 0)

        self._register_self = register_self
        self.node.attach(self)
        self.node.spawn(register_self, name="register-self")

    def on_restart(self, node) -> None:
        """Crash recovery: re-assert our own token in the ring map (the
        gossip state other nodes sent us survives in ``tokens`` — real
        Cassandra recovers it from the system table)."""
        node.spawn(self._register_self, name="register-self-restart")

    # -- gossip ----------------------------------------------------------

    def on_gossip_message(self, payload, src: str) -> None:
        """Socket handler: queue the digest for the gossip stage."""
        self.gossip_stage.post("digest", {"src": src, **payload})

    def on_gossip_digest(self, event) -> None:
        """Gossip-stage handler: learn the sender's token, ack it."""
        src = event.payload["src"]
        self.tokens.put(src, event.payload["token"])
        with self.node.lock("gossip-state"):
            self.digests_seen.increment()
        self.node.send(src, "gossip-ack", {"seen": src})

    # -- write path (races with gossip on the token map) --------------------

    def client_write(self, key: str, value: str) -> None:
        """One write request: store locally, replicate to backups.

        CA-1011: the replica targets are computed from the token map; if
        the bootstrapping node's gossip has not been applied yet, the
        backup copy silently goes missing.
        """
        self.store.put(key, value)
        targets = self.tokens.keys()
        if len(targets) < self.replication:
            # Silent data loss is the worst failure a store can have;
            # log it at fatal so the run counts as harmful.
            self.log.fatal(
                f"write {key}: only {len(targets)} replica target(s), "
                f"need {self.replication} — backup copy lost"
            )
            return
        for target in targets:
            if target != self.node.name:
                self.node.send(target, "replicate", {"key": key, "value": value})

    def start_writer(self, key: str, value: str, delay: int) -> None:
        def writer() -> None:
            sleep(delay)
            self.client_write(key, value)

        self.node.spawn(writer, name="writer")

    def on_replicate(self, payload, src: str) -> None:
        self.store.put(payload["key"], payload["value"])

    # -- read path with read repair ---------------------------------------

    def client_read(self, key: str) -> str:
        """Read with digest comparison against the backup replicas.

        If a replica's copy is stale, send it a repair (Cassandra's read
        repair).  This path has *no* seeded bug: its races with the write
        path are tolerated by design — a regression check that DCatch
        classifies them correctly.
        """
        value = self.store.get(key)
        for target in self.tokens.keys():
            if target != self.node.name:
                self.node.send(
                    target, "read-repair", {"key": key, "value": value}
                )
        return value

    def on_read_repair(self, payload, src: str) -> None:
        current = self.store.get(payload["key"])
        if current != payload["value"] and payload["value"] is not None:
            self.store.put(payload["key"], payload["value"])
