"""mini-Cassandra benchmark workload (Table 3: CA-1011)."""

from __future__ import annotations

from repro.runtime.cluster import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minica.bootstrap import BootstrapNode
from repro.systems.minica.gossip import SeedNode


class CA1011Workload(Workload):
    """startup: bootstrap gossip vs write-path replica selection (DE/AV)."""

    info = BenchmarkInfo(
        bug_id="CA-1011",
        system="Cassandra",
        workload="startup",
        symptom="Data backup failure",
        error_pattern="DE",
        root_cause="AV",
    )
    default_seed = 0
    max_steps = 30_000
    churn_profile = (("ca1", 40, 40), ("ca2", 40, 40))

    def build(self, cluster: Cluster) -> None:
        seed = SeedNode(cluster, "ca1", replication=2)
        BootstrapNode(cluster, "ca2", seed="ca1", token=42)
        # In correct runs the bootstrap gossip is applied long before the
        # first client write arrives.
        seed.start_writer("k1", "v1", delay=80)
