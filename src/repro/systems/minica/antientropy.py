"""Anti-entropy repair: converge diverged replicas.

Cassandra's nodetool-repair, miniaturized: the initiating node sends a
digest of its store to a peer; the peer replies with the keys it is
missing or holds stale, and both sides stream each other the missing
entries.  Values carry logical timestamps — last-writer-wins, the same
conflict rule Cassandra uses.  No seeded bug: a healthy convergence
protocol used by tests.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.runtime import sleep
from repro.runtime.cluster import Cluster

#: A stored value: (payload, logical timestamp).
Versioned = Tuple[Any, int]


class AntiEntropy:
    """Repair sessions between this node's store and a peer's."""

    def __init__(self, host: "object") -> None:
        self.node = host.node
        self.store = host.store  # SharedDict of key -> (value, ts)
        self.repairs_done = self.node.shared_counter("repairs_done")
        self.node.on_message("repair-digest", self.on_repair_digest)
        self.node.on_message("repair-entries", self.on_repair_entries)

    # -- initiating side -------------------------------------------------------

    def repair_with(self, peer: str) -> None:
        """Kick off one repair round with ``peer`` (asynchronous)."""
        digest = {
            key: ts for key, (_value, ts) in self.store.items()
        }
        self.node.send(peer, "repair-digest", {"digest": digest})

    # -- responding side ----------------------------------------------------------

    def on_repair_digest(self, payload, src: str) -> None:
        """Compare the peer's digest against our store; stream diffs."""
        remote = payload["digest"]
        to_send: Dict[str, Versioned] = {}
        for key, (value, ts) in self.store.items():
            if remote.get(key, -1) < ts:
                to_send[key] = (value, ts)
        if to_send:
            self.node.send(src, "repair-entries", {"entries": to_send})
        # Also reply with our digest so the peer streams what we miss.
        digest = {key: ts for key, (_value, ts) in self.store.items()}
        missing_here = {
            key: remote_ts
            for key, remote_ts in remote.items()
            if digest.get(key, -1) < remote_ts
        }
        if missing_here:
            self.node.send(src, "repair-digest", {"digest": digest})

    def on_repair_entries(self, payload, src: str) -> None:
        """Apply streamed entries, last-writer-wins."""
        for key, (value, ts) in payload["entries"].items():
            current = self.store.get(key)
            if current is None or current[1] < ts:
                self.store.put(key, (value, ts))
        self.repairs_done.increment()


def put_versioned(store, key: str, value: Any, ts: int) -> None:
    """Write helper honouring last-writer-wins."""
    current = store.get(key)
    if current is None or current[1] < ts:
        store.put(key, (value, ts))
