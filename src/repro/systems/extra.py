"""Beyond-benchmark workloads.

The paper (Section 7.2) reports that DCatch found harmful DCbugs *beyond*
the seven TaxDC benchmarks — "8 in static count ... we were unaware of
these bugs".  This module carries our equivalents: harmful races that
are not the seeded Table 3 bugs but fall out of realistic configuration
changes, exactly like the paper's extra findings.

* **MR-4637-MT** — the MapReduce job with a *multi-threaded* AM RPC
  server.  The per-task ``report_done`` counter increment is a read-
  modify-write; with two handler threads the increments can interleave,
  an update is lost, and the completion monitor polls forever.  (With a
  single handler thread — the Table 3 configuration — the same pair is
  benign: the paper's point that the fault-tolerance context decides
  harmfulness.)
"""

from __future__ import annotations

from repro.runtime.cluster import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minimr.app_master import AppMaster
from repro.systems.minimr.job_client import JobClient
from repro.systems.minimr.node_manager import NodeManager
from repro.systems.minimr.resource_manager import ResourceManager


class MR4637MTWorkload(Workload):
    """MR-4637 with two AM RPC handler threads: lost done-count update."""

    info = BenchmarkInfo(
        bug_id="MR-4637-MT",
        system="Hadoop MapReduce",
        workload="startup + wordcount (2 RPC handler threads)",
        symptom="Job completion hang",
        error_pattern="LH",
        root_cause="AV",
    )
    default_seed = 0
    max_steps = 40_000
    trigger_max_steps = 5_000
    source_packages = ("repro.systems.minimr",)

    def build(self, cluster: Cluster) -> None:
        am = AppMaster(cluster, rpc_threads=2)
        ResourceManager(cluster)
        # Different work durations so the two completions rarely overlap
        # naturally — the monitored run stays correct.
        NodeManager(cluster, "nm1", work_ticks=4)
        NodeManager(cluster, "nm2", work_ticks=40)
        client = JobClient(cluster)
        client.run_job("job-3", task_ids=["t1", "t2"], nm_names=["nm1", "nm2"])
        am.start_completion_monitor("job-3", expected=2)


class MRSpecWorkload(Workload):
    """Speculative execution: completion discards attempt bookkeeping
    concurrently with the speculator's scan (AV, job master crash)."""

    info = BenchmarkInfo(
        bug_id="MR-SPEC",
        system="Hadoop MapReduce",
        workload="wordcount with speculative execution",
        symptom="Job Master Crash",
        error_pattern="LE",
        root_cause="AV",
    )
    default_seed = 0
    max_steps = 40_000
    trigger_max_steps = 5_000
    source_packages = ("repro.systems.minimr",)

    def build(self, cluster: Cluster) -> None:
        from repro.systems.minimr.speculator import Speculator

        am = AppMaster(cluster)
        ResourceManager(cluster)
        NodeManager(cluster, "nm1", work_ticks=30, notify_speculator=True)
        NodeManager(cluster, "nm2", work_ticks=4, notify_speculator=True)
        speculator = Speculator(am, scan_interval=8, straggler_after=2)
        client = JobClient(cluster)
        client.run_job("job-4", task_ids=["t1"], nm_names=["nm1"])
        speculator.watch("t1", backup_nm="nm2")


EXTRA_WORKLOAD_CLASSES = [MR4637MTWorkload, MRSpecWorkload]


def extra_workloads():
    return [cls() for cls in EXTRA_WORKLOAD_CLASSES]
