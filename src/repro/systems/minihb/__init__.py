"""mini-HBase: a region-serving key-value store coordinated via ZooKeeper.

The region-open path is the paper's Figure 3, end to end: the HMaster
records a region in transition and forks a thread that RPCs ``OpenRegion``
on an HRegionServer; the server's single-consumer open-queue handler
opens the region and updates the region's znode; ZooKeeper pushes the
state change back to the master, whose watcher handler finishes the
bookkeeping.  Every hop of the W ⇒ R chain (thread fork, RPC, event
queue, coordination-service push) is real, so the HB model must combine
all four rule families to see the ordering.

Seeded bugs (Table 3):

* **HB-4539** — split table & alter table: the alter path force-removes
  the region's in-transition record concurrently with the watcher
  handler's read; if the remove wins, the master aborts on an unexpected
  region state (system master crash, order violation).
* **HB-4729** — enable table & expire server: the server-expiry handler
  deletes the region's unassigned znode concurrently with the enable
  path's check-then-delete; losing the race makes the enable path's
  znode delete throw and crash the master (system master crash,
  atomicity violation).
"""

from repro.systems.minihb.master import HMaster
from repro.systems.minihb.regionserver import HRegionServer
from repro.systems.minihb.workloads import HB4539Workload, HB4729Workload

__all__ = ["HMaster", "HRegionServer", "HB4539Workload", "HB4729Workload"]
