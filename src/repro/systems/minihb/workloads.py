"""mini-HBase benchmark workloads (Table 3: HB-4539, HB-4729)."""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.cluster import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minihb.master import HMaster
from repro.systems.minihb.regionserver import HRegionServer


class HB4539Workload(Workload):
    """split table & alter table (DE / OV, system master crash).

    The client splits a table (opening a region through the full
    Figure 3 chain) and then alters it; the alter path's force-removal of
    the in-transition record races with the ZooKeeper watcher handler's
    read.  If the removal wins, the master aborts.
    """

    info = BenchmarkInfo(
        bug_id="HB-4539",
        system="HBase",
        workload="split table & alter table",
        symptom="System Master Crash",
        error_pattern="DE",
        root_cause="OV",
    )
    default_seed = 0
    max_steps = 40_000
    churn_profile = (("master", 20, 10),)

    def build(self, cluster: Cluster) -> None:
        cluster.zookeeper()
        master = HMaster(cluster)
        HRegionServer(cluster, "hrs1", open_ticks=4)
        client = cluster.add_node("client")

        def client_main() -> None:
            client.rpc("master").split_table("region-1", "hrs1")
            sleep(120)  # in correct runs the open completes well before
            client.rpc("master").alter_table("region-1")

        client.spawn(client_main, name="client-main")


class HB4729Workload(Workload):
    """enable table & expire server (DE / AV, system master crash).

    The enable path checks the unassigned mirror, then deletes the
    region's znode; the server-expiry handler deletes the same znode
    concurrently.  Losing the check-then-act race makes the enable
    thread's delete throw, killing the master.
    """

    info = BenchmarkInfo(
        bug_id="HB-4729",
        system="HBase",
        workload="enable table & expire server",
        symptom="System Master Crash",
        error_pattern="DE",
        root_cause="AV",
    )
    default_seed = 0
    max_steps = 40_000
    churn_profile = (("master", 40, 40), ("hrs1", 40, 40))

    def build(self, cluster: Cluster) -> None:
        cluster.zookeeper()
        master = HMaster(cluster)
        HRegionServer(cluster, "hrs1", register_ephemeral=True)
        master.setup_unassigned(["region-7"], "hrs1")
        client = cluster.add_node("client")

        def client_main() -> None:
            zk = client.zk()
            while not zk.exists("/setup-done"):
                sleep(3)
            client.rpc("master").enable_table("region-7", "hrs1")
            sleep(150)  # in correct runs the enable finishes first
            zk.expire_session("hrs1")

        client.spawn(client_main, name="client-main")
