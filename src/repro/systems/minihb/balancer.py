"""The region balancer: keep region counts even across servers.

The master periodically polls each region server's load over RPC and
moves one region per round from the most- to the least-loaded server
(close on the source, open on the target — through the same open-region
queue as the Figure 3 path).  No seeded bug: balancing is a healthy
control loop used by scale tests and the multi-region workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RpcError
from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class Balancer:
    """A load balancer thread on the HMaster."""

    def __init__(
        self,
        master: "object",
        servers: List[str],
        interval: int = 10,
        max_rounds: int = 12,
    ) -> None:
        self.master = master
        self.node = master.node
        self.log = self.node.log
        self.servers = list(servers)
        self.interval = interval
        self.max_rounds = max_rounds
        self.moves = self.node.shared_list("balancer_moves")

    def start(self) -> None:
        self.node.spawn(self._balance_loop, name="balancer")

    def _balance_loop(self) -> None:
        for _round in range(self.max_rounds):
            try:
                # One retransmission per poll: a server mid-restart looks
                # like a blip, not a dead cluster.
                loads = {
                    server: self.node.rpc(server, retries=1).region_count()
                    for server in self.servers
                }
            except RpcError as exc:
                # A server is down: skip this round rather than crash the
                # master's balancer — regions stay put until it returns.
                self.log.warn(f"balance round skipped: {exc}")
                sleep(self.interval)
                continue
            source = max(self.servers, key=lambda s: loads[s])
            target = min(self.servers, key=lambda s: loads[s])
            if loads[source] - loads[target] <= 1:
                self.log.info(f"balanced: {loads}")
                return
            try:
                region = self.node.rpc(source).pick_region()
                if region is None:
                    return
                self.node.rpc(source).close_region(region)
                # Register the transition before reopening, like the split
                # path: the region-state watcher treats an OPENED report
                # without a pending transition as an inconsistency.
                self.master.regions_in_transition.put(region, "PENDING_OPEN")
                self.node.rpc(target).open_region(region)
            except RpcError as exc:
                self.log.warn(f"balance move abandoned: {exc}")
                sleep(self.interval)
                continue
            self.moves.append((region, source, target))
            self.log.info(f"moved {region}: {source} -> {target}")
            sleep(self.interval)
