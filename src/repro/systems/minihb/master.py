"""The HMaster: region assignment bookkeeping coordinated through ZooKeeper.

The master keeps two pieces of shared state that the seeded bugs race on:

* ``regions_in_transition`` — the Figure 3 list: written by the split
  path, read/cleared by the ZooKeeper watcher handler and by the alter
  path (HB-4539);
* ``unassigned_cache`` — the in-memory mirror of ``/unassigned/...``
  znodes: checked-then-acted-on by the enable path, force-cleaned by the
  server-expiry handler (HB-4729).
"""

from __future__ import annotations

from repro.errors import NoNodeError
from repro.runtime import sleep
from repro.runtime.cluster import Cluster
from repro.runtime.zookeeper import NODE_DELETED

from repro.systems.minihb.regionserver import REGION_OPENED


class HMaster:
    """The cluster master."""

    def __init__(self, cluster: Cluster, name: str = "master") -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.zk = self.node.zk()
        self.regions_in_transition = self.node.shared_dict("regions_in_transition")
        self.online_regions = self.node.shared_set("online_regions")
        self.unassigned_cache = self.node.shared_dict("unassigned_cache")
        self.regions_by_server = {}  # static topology, not racy state
        self.node.rpc_server.register("split_table", self.split_table)
        self.node.rpc_server.register("alter_table", self.alter_table)
        self.node.rpc_server.register("enable_table", self.enable_table)

    # -- region opening: the Figure 3 chain (split path) ----------------------

    def split_table(self, region: str, server: str) -> bool:
        """RPC from the client: open ``region`` on ``server``.

        Step 1 of Figure 3: record the region in transition (the W),
        then fork the open thread (step 2).
        """
        self.regions_in_transition.put(region, "PENDING_OPEN")
        self.zk.create(f"/region/{region}", data="PENDING")
        self.zk.watch(f"/region/{region}", self.on_region_state_change)

        def open_thread() -> None:
            self.node.rpc(server).open_region(region)  # step 3

        self.node.spawn(open_thread, name=f"open-{region}")
        return True

    def on_region_state_change(self, event) -> None:
        """Figure 3 step 8: the watcher handler reads the transition state.

        HB-4539: if the alter path force-removed the record first, the
        master sees an impossible state transition and aborts.
        """
        if event.data != REGION_OPENED:
            return
        region = event.path.rsplit("/", 1)[1]
        state = self.regions_in_transition.get(region)
        if state is None:
            self.node.abort(
                f"region {region} reported {event.data} but is not in transition"
            )
        self.regions_in_transition.remove(region)
        self.online_regions.add(region)
        self.log.info(f"region {region} online")

    # -- alter table (HB-4539's second half) -----------------------------------

    def alter_table(self, region: str, delay: int = 4) -> bool:
        """RPC from the client: schema change forces a region reassign.

        Runs on the master's RPC handler thread (like real HBase's
        handler pool); the force-removal below races with the watcher
        handler's read on the zkwatch thread (HB-4539).
        """
        sleep(delay)  # metadata work before touching assignment
        # Force any pending transition aside so the region can be
        # reopened with the new schema (blind cleanup, like the real
        # alter path's bulk reassign).
        self.regions_in_transition.remove(region)
        self.log.info(f"alter: cleared pending transition of {region}")
        return True

    # -- enable table / server expiry (HB-4729) ----------------------------------

    def setup_unassigned(self, regions, server: str) -> None:
        """Wire the disabled table's regions: znodes + in-memory mirror."""
        self.regions_by_server[server] = list(regions)

        def setup() -> None:
            for region in regions:
                self.zk.create(f"/unassigned/{region}", data="OFFLINE")
                self.unassigned_cache.put(region, server)
            self.zk.watch(f"/rs/{server}", self.on_server_znode_change)
            self.zk.create("/setup-done")

        self.node.spawn(setup, name="setup-unassigned")

    def enable_table(self, region: str, server: str, scan_ticks: int = 6) -> bool:
        """RPC from the client: bring a disabled region online."""

        def enable_thread() -> None:
            if self.unassigned_cache.contains(region):
                sleep(scan_ticks)  # read .META., plan the assignment
                # HB-4729: the expiry handler may have deleted the znode
                # inside our check-then-act window; this delete then
                # throws and kills the master.
                self.zk.delete(f"/unassigned/{region}")
                self.unassigned_cache.remove(region)
                self.node.rpc(server).open_region(region)
                self.log.info(f"enable: assigned {region} to {server}")

        self.node.spawn(enable_thread, name=f"enable-{region}")
        return True

    def on_server_znode_change(self, event) -> None:
        """Watcher handler: a region server's ephemeral znode changed."""
        if event.etype != NODE_DELETED:
            return
        server = event.path.rsplit("/", 1)[1]
        self.log.warn(f"server {server} expired; cleaning its regions")
        for region in self.regions_by_server.get(server, []):
            try:
                self.zk.delete(f"/unassigned/{region}")
            except NoNodeError:
                pass  # already claimed by an assignment in flight
            self.unassigned_cache.remove(region)
