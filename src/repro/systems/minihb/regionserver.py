"""The HRegionServer (HRS): opens regions via a single-consumer queue.

``open_region`` is an RPC from the master; the implementation enqueues a
region-open event (steps 3-4 of the paper's Figure 3).  The handler does
the open work and publishes ``RS_ZK_REGION_OPENED`` to the region's
znode (steps 5-6), which ZooKeeper pushes to the master (step 7).
"""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.cluster import Cluster

REGION_OPENED = "RS_ZK_REGION_OPENED"


class HRegionServer:
    """One region server."""

    def __init__(
        self,
        cluster: Cluster,
        name: str = "hrs1",
        open_ticks: int = 4,
        register_ephemeral: bool = False,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.log = self.node.log
        self.online_regions = self.node.shared_set("online_regions")
        self.open_queue = self.node.event_queue("open-region", consumers=1)
        self.open_queue.register("open", self.on_open_region)
        self.open_ticks = open_ticks
        self.node.rpc_server.register("open_region", self.open_region)
        self.node.rpc_server.register("close_region", self.close_region)
        self.node.rpc_server.register("region_count", self.region_count)
        self.node.rpc_server.register("pick_region", self.pick_region)
        if register_ephemeral:
            self._register_in_zk()

    def _register_in_zk(self) -> None:
        def register() -> None:
            zk = self.node.zk()
            zk.create(f"/rs/{self.node.name}", data="alive", ephemeral=True)

        self.node.spawn(register, name="zk-register")

    # -- RPC functions ------------------------------------------------------

    def open_region(self, region: str) -> bool:
        """RPC from the master (Figure 3 step 3-4): queue the open."""
        self.open_queue.post("open", {"region": region})
        return True

    def close_region(self, region: str) -> bool:
        """RPC from the master (balancer moves, alters)."""
        with self.node.lock("online-regions"):
            removed = self.online_regions.discard(region)
        if removed:
            self.log.info(f"region {region} closed")
        return removed

    def region_count(self) -> int:
        """RPC from the balancer: current load."""
        return self.online_regions.size()

    def pick_region(self) -> str:
        """RPC from the balancer: a region this server could give up."""
        regions = self.online_regions.snapshot()
        return regions[0] if regions else None

    # -- event handlers -------------------------------------------------------

    def on_open_region(self, event) -> None:
        """Figure 3 step 5-6: open, then publish the state change."""
        region = event.payload["region"]
        sleep(self.open_ticks)  # load store files, replay WAL, ...
        with self.node.lock("online-regions"):
            self.online_regions.add(region)
        zk = self.node.zk()
        path = f"/region/{region}"
        if zk.exists(path):
            zk.set_data(path, REGION_OPENED)
        else:
            zk.create(path, data=REGION_OPENED)
        self.log.info(f"region {region} opened")
