"""The four mini cloud systems and seven benchmark workloads (Table 3)."""

from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.extra import EXTRA_WORKLOAD_CLASSES, extra_workloads
from repro.systems.registry import (
    SYSTEM_ALIASES,
    WORKLOAD_CLASSES,
    all_workloads,
    canonical_system,
    resolve_workload,
    systems,
    workload_by_id,
    workloads_of_system,
)

__all__ = [
    "Workload",
    "BenchmarkInfo",
    "SYSTEM_ALIASES",
    "WORKLOAD_CLASSES",
    "all_workloads",
    "canonical_system",
    "resolve_workload",
    "workload_by_id",
    "workloads_of_system",
    "systems",
    "extra_workloads",
    "EXTRA_WORKLOAD_CLASSES",
]
