"""The four mini cloud systems and seven benchmark workloads (Table 3)."""

from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.extra import EXTRA_WORKLOAD_CLASSES, extra_workloads
from repro.systems.registry import (
    WORKLOAD_CLASSES,
    all_workloads,
    systems,
    workload_by_id,
)

__all__ = [
    "Workload",
    "BenchmarkInfo",
    "WORKLOAD_CLASSES",
    "all_workloads",
    "workload_by_id",
    "systems",
    "extra_workloads",
    "EXTRA_WORKLOAD_CLASSES",
]
