"""The benchmark registry: the paper's Table 3 as executable objects."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.systems.base import Workload
from repro.systems.minica.workloads import CA1011Workload
from repro.systems.minihb.workloads import HB4539Workload, HB4729Workload
from repro.systems.minimr.workloads import MR3274Workload, MR4637Workload
from repro.systems.minizk.workloads import ZK1144Workload, ZK1270Workload

#: Table 3 order.
WORKLOAD_CLASSES: List[Type[Workload]] = [
    CA1011Workload,
    HB4539Workload,
    HB4729Workload,
    MR3274Workload,
    MR4637Workload,
    ZK1144Workload,
    ZK1270Workload,
]


def all_workloads() -> List[Workload]:
    return [cls() for cls in WORKLOAD_CLASSES]


def workload_by_id(bug_id: str) -> Workload:
    from repro.systems.extra import EXTRA_WORKLOAD_CLASSES

    for cls in WORKLOAD_CLASSES + EXTRA_WORKLOAD_CLASSES:
        if cls.info.bug_id.lower() == bug_id.lower():
            return cls()
    known = ", ".join(
        cls.info.bug_id for cls in WORKLOAD_CLASSES + EXTRA_WORKLOAD_CLASSES
    )
    raise KeyError(f"unknown benchmark {bug_id}; known: {known}")


def systems() -> List[str]:
    seen: Dict[str, None] = {}
    for cls in WORKLOAD_CLASSES:
        seen.setdefault(cls.info.system, None)
    return list(seen)
