"""The benchmark registry: the paper's Table 3 as executable objects."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import UnknownBenchmarkError
from repro.systems.base import Workload
from repro.systems.minica.workloads import CA1011Workload
from repro.systems.minihb.workloads import HB4539Workload, HB4729Workload
from repro.systems.minimr.workloads import MR3274Workload, MR4637Workload
from repro.systems.minizk.workloads import ZK1144Workload, ZK1270Workload

#: Table 3 order.
WORKLOAD_CLASSES: List[Type[Workload]] = [
    CA1011Workload,
    HB4539Workload,
    HB4729Workload,
    MR3274Workload,
    MR4637Workload,
    ZK1144Workload,
    ZK1270Workload,
]

#: Mini-system aliases accepted by ``resolve_workload`` (and the CLI's
#: ``repro profile <system> <workload>``), mapped to Table 3 system names.
SYSTEM_ALIASES: Dict[str, str] = {
    "minica": "Cassandra",
    "ca": "Cassandra",
    "cassandra": "Cassandra",
    "minihb": "HBase",
    "hb": "HBase",
    "hbase": "HBase",
    "minimr": "Hadoop MapReduce",
    "mr": "Hadoop MapReduce",
    "mapreduce": "Hadoop MapReduce",
    "hadoop": "Hadoop MapReduce",
    "minizk": "ZooKeeper",
    "zk": "ZooKeeper",
    "zookeeper": "ZooKeeper",
}


def _all_classes() -> List[Type[Workload]]:
    from repro.systems.extra import EXTRA_WORKLOAD_CLASSES

    return WORKLOAD_CLASSES + EXTRA_WORKLOAD_CLASSES


def all_workloads() -> List[Workload]:
    return [cls() for cls in WORKLOAD_CLASSES]


def workload_by_id(bug_id: str) -> Workload:
    for cls in _all_classes():
        if cls.info.bug_id.lower() == bug_id.lower():
            return cls()
    known = ", ".join(cls.info.bug_id for cls in _all_classes())
    raise UnknownBenchmarkError(f"unknown benchmark {bug_id}; known: {known}")


def canonical_system(name: str) -> str:
    """Resolve a system alias ('minimr', 'zk', ...) to its Table 3 name."""
    canonical = SYSTEM_ALIASES.get(name.lower())
    if canonical is None:
        known = ", ".join(sorted(SYSTEM_ALIASES))
        raise UnknownBenchmarkError(f"unknown system {name}; known: {known}")
    return canonical


def workloads_of_system(system: str) -> List[Workload]:
    """All workloads (paper + beyond) of one mini system, Table 3 order."""
    canonical = canonical_system(system)
    return [cls() for cls in _all_classes() if cls.info.system == canonical]


def resolve_workload(system_or_bug: str, workload: Optional[str] = None) -> Workload:
    """Resolve CLI-style names to one workload.

    One argument: a bug id (``MR-3274``).  Two arguments: a system alias
    plus a workload token — a full bug id, the suffix after the dash
    (``3274``), or ``default`` for the system's first Table 3 entry.
    Raises ``UnknownBenchmarkError`` with the known names on any miss.
    """
    if workload is None:
        return workload_by_id(system_or_bug)
    candidates = workloads_of_system(system_or_bug)
    token = workload.lower()
    if token in ("default", "first"):
        return candidates[0]
    for candidate in candidates:
        bug_id = candidate.info.bug_id.lower()
        if token == bug_id or token == bug_id.split("-", 1)[-1]:
            return candidate
    known = ", ".join(c.info.bug_id for c in candidates)
    raise UnknownBenchmarkError(
        f"unknown workload {workload} for system {system_or_bug}; "
        f"known: {known}"
    )


def systems() -> List[str]:
    seen: Dict[str, None] = {}
    for cls in WORKLOAD_CLASSES:
        seen.setdefault(cls.info.system, None)
    return list(seen)
