"""The ResourceManager (RM): client entry point, launches jobs on AMs."""

from __future__ import annotations

from typing import List

from repro.runtime.cluster import Cluster


class ResourceManager:
    """Accepts job submissions and routes them to the application master."""

    def __init__(self, cluster: Cluster, name: str = "rm", am_name: str = "am"):
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.am_name = am_name
        self.node.rpc_server.register("submit_job", self.submit_job)
        self.node.rpc_server.register("kill_job", self.kill_job)
        self.node.rpc_server.register("job_finished", self.job_finished)

    def submit_job(
        self, job_id: str, task_ids: List[str], nm_names: List[str]
    ) -> bool:
        """RPC from the client: hand the job to the AM."""
        self.node.log.info(f"submitting {job_id} to {self.am_name}")
        return self.node.rpc(self.am_name).launch_job(job_id, task_ids, nm_names)

    def kill_job(self, job_id: str) -> bool:
        """RPC from the client: forward the kill to the AM."""
        return self.node.rpc(self.am_name).kill_job(job_id)

    def job_finished(self, job_id: str) -> bool:
        """RPC from the AM's completion monitor."""
        self.node.log.info(f"job {job_id} finished")
        return True
