"""The ApplicationMaster (AM).

Holds the job and task registries.  Task registration and job-kill
processing go through a single-consumer event dispatcher (the
``AsyncDispatcher`` of real MapReduce); task retrieval and status updates
are RPC functions called by NodeManager containers.

The ``tasks`` map is the ``jMap`` of the paper's Figure 2: ``put`` happens
in the Register handler, ``remove`` in the Unregister (kill) handler, and
``get`` inside the ``get_task`` RPC — the MR-3274 race.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class AppMaster:
    """The job master node."""

    def __init__(
        self, cluster: Cluster, name: str = "am", rpc_threads: int = 1
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name, rpc_threads=rpc_threads)
        self.log = self.node.log
        self.tasks = self.node.shared_dict("tasks")  # the jMap of Figure 2
        self.jobs = self.node.shared_dict("jobs")
        self.done_count = self.node.shared_counter("done_count")
        self.registered_count = self.node.shared_counter("registered_count")
        # Job-lifecycle audit trail, bumped under ``job-lock`` from both
        # the dispatcher (Register) and the RPC path (report_done).  The
        # lock makes the cross-thread writes atomic, but mutual exclusion
        # is not ordering: DCatch's HB model (correctly) still reports
        # the pair, while a sync-preserving analysis orders it.
        self.job_events = self.node.shared_counter("job_events")
        self.dispatcher = self.node.event_queue("dispatcher", consumers=1)
        self.dispatcher.register("register_task", self.on_register_task)
        self.dispatcher.register("kill_job", self.on_kill_job)
        self.node.rpc_server.register("launch_job", self.launch_job)
        self.node.rpc_server.register("get_task", self.get_task)
        self.node.rpc_server.register("report_done", self.report_done)
        self.node.rpc_server.register("heartbeat", self.heartbeat)
        self.node.rpc_server.register("kill_job", self.kill_job)
        self.node.rpc_server.register("publish_result", self.publish_result)
        self.results = self.node.shared_dict("job_results")

    # -- RPC functions ------------------------------------------------------

    def launch_job(self, job_id: str, task_ids: List[str], nm_names: List[str]):
        """RPC from the RM: register the job, dispatch its tasks."""
        self.jobs.put(job_id, {"tasks": list(task_ids)})
        for task_id, nm_name in zip(task_ids, nm_names):
            self.dispatcher.post(
                "register_task",
                {"job_id": job_id, "task_id": task_id, "payload": f"split:{task_id}"},
            )
            self.node.rpc(nm_name).assign_task(job_id, task_id)
        self.log.info(f"job {job_id} launched with {len(task_ids)} tasks")
        return True

    def get_task(self, job_id: str, task_id: str):
        """RPC from an NM container; None if not (or no longer) registered."""
        return self.tasks.get(task_id)

    def report_done(self, job_id: str, task_id: str) -> int:
        with self.node.lock("job-lock"):
            self.job_events.increment()
        return self.done_count.increment()

    def heartbeat(self, job_id: str, task_id: str) -> bool:
        """Task progress update.  MR-4637: the job may already be gone."""
        job = self.jobs.get(job_id)
        if job is None:
            raise RuntimeError(
                f"status update for unregistered job {job_id} (task {task_id})"
            )
        return True

    def kill_job(self, job_id: str) -> bool:
        """RPC from the RM on the client's behalf."""
        self.dispatcher.post("kill_job", {"job_id": job_id})
        return True

    def publish_result(self, job_id: str, result) -> bool:
        """RPC from a reducer: the job's final output."""
        self.results.put(job_id, result)
        self.log.info(f"job {job_id} result published ({len(result)} keys)")
        return True

    # -- event handlers (single-consumer dispatcher) ---------------------------

    def on_register_task(self, event) -> None:
        data = event.payload
        self.tasks.put(data["task_id"], data["payload"])
        # Job-level bookkeeping under the job lock (register events are
        # serialized by the single-consumer dispatcher anyway; the lock
        # guards against future multi-queue configurations).
        with self.node.lock("job-lock"):
            self.registered_count.increment()
            self.job_events.increment()

    def on_kill_job(self, event) -> None:
        """The Unregister handler of Figure 2: drop the job's tasks."""
        job_id = event.payload["job_id"]
        job = self.jobs.get(job_id)
        if job is None:
            self.log.warn(f"kill for unknown job {job_id}")
            return
        for task_id in job["tasks"]:
            self.tasks.remove(task_id)
        self.log.info(f"job {job_id} killed")

    # -- job lifecycle -------------------------------------------------------------

    def start_completion_monitor(self, job_id: str, expected: int) -> None:
        """Remove the job record once all tasks have reported (MR-4637)."""

        def monitor() -> None:
            while self.done_count.get() < expected:
                sleep(4)
            sleep(40)  # commit/cleanup window before unregistering
            self.jobs.remove(job_id)
            self.node.rpc("rm").job_finished(job_id)
            self.log.info(f"job {job_id} complete, unregistered")

        self.node.spawn(monitor, name="completion-monitor")
