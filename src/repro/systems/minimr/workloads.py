"""mini-MapReduce benchmark workloads (Table 3: MR-3274, MR-4637)."""

from __future__ import annotations

from repro.runtime.cluster import Cluster
from repro.systems.base import BenchmarkInfo, Workload
from repro.systems.minimr.app_master import AppMaster
from repro.systems.minimr.job_client import JobClient
from repro.systems.minimr.node_manager import NodeManager
from repro.systems.minimr.resource_manager import ResourceManager


class MR3274Workload(Workload):
    """startup + wordcount, client kills the job mid-flight.

    The paper's Figure 1/2 bug: the kill's Unregister handler removes the
    task entry concurrently with NM containers' ``get_task`` polling
    loops.  If the remove wins, a container hangs forever (DH / OV).
    """

    info = BenchmarkInfo(
        bug_id="MR-3274",
        system="Hadoop MapReduce",
        workload="startup + wordcount",
        symptom="Hang",
        error_pattern="DH",
        root_cause="OV",
    )
    default_seed = 0
    max_steps = 40_000
    churn_profile = (("nm1", 40, 40), ("nm2", 40, 40))

    def build(self, cluster: Cluster) -> None:
        am = AppMaster(cluster)
        ResourceManager(cluster)
        NodeManager(cluster, "nm1", poll_interval=3, work_ticks=6)
        NodeManager(cluster, "nm2", poll_interval=3, work_ticks=6)
        client = JobClient(cluster)
        client.run_job(
            "job-1",
            task_ids=["t1", "t2"],
            nm_names=["nm1", "nm2"],
            kill_after=600,
        )


class MR4637Workload(Workload):
    """startup + wordcount with trailing heartbeats.

    A container's post-completion progress update reaches the AM after
    the completion monitor unregistered the job; the status-update RPC
    handler throws and crashes the job master (LE / OV).
    """

    info = BenchmarkInfo(
        bug_id="MR-4637",
        system="Hadoop MapReduce",
        workload="startup + wordcount",
        symptom="Job Master Crash",
        error_pattern="LE",
        root_cause="OV",
    )
    default_seed = 0
    max_steps = 40_000
    churn_profile = (("nm1", 40, 40), ("nm2", 40, 40))

    def build(self, cluster: Cluster) -> None:
        am = AppMaster(cluster)
        ResourceManager(cluster)
        NodeManager(cluster, "nm1", heartbeats=2, final_heartbeat=True)
        NodeManager(cluster, "nm2", heartbeats=2, final_heartbeat=True)
        client = JobClient(cluster)
        client.run_job("job-2", task_ids=["t1", "t2"], nm_names=["nm1", "nm2"])
        am.start_completion_monitor("job-2", expected=2)
