"""The shuffle phase: map-output storage and reduce-side fetching.

Completes the MapReduce data path: map containers produce partial word
counts into their NodeManager's map-output store; a reduce container
fetches every map's output over RPC (the shuffle), merges, and publishes
the final result to the AM.  No seeded bug — this is the part of the
system that is *supposed* to work, used by the full-pipeline example and
by tests that check DCatch stays quiet on healthy code paths.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class MapOutputStore:
    """Per-NodeManager storage of completed map outputs."""

    def __init__(self, nm: "object") -> None:
        self.node = nm.node
        self.outputs = self.node.shared_dict("map_outputs")
        self.node.rpc_server.register("put_output", self.put_output)
        self.node.rpc_server.register("fetch_output", self.fetch_output)

    def put_output(self, map_task: str, counts: Dict[str, int]) -> bool:
        """Called by the map container when its partition is complete."""
        self.outputs.put(map_task, dict(counts))
        return True

    def fetch_output(self, map_task: str) -> Optional[Dict[str, int]]:
        """The shuffle fetch: None while the map is still running."""
        return self.outputs.get(map_task)


def run_map_task(store: MapOutputStore, map_task: str, text: str) -> None:
    """Word-count one input split and store the partial result."""
    counts = Counter(text.split())
    sleep(2)  # the map computation
    store.put_output(map_task, dict(counts))


class Reducer:
    """The reduce container: shuffle + merge + publish."""

    def __init__(
        self,
        cluster: Cluster,
        name: str,
        map_locations: Dict[str, str],  # map task -> NM node name
        am_name: str = "am",
        poll_interval: int = 4,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.map_locations = dict(map_locations)
        self.am_name = am_name
        self.poll_interval = poll_interval
        self.result = self.node.shared_dict("reduce_result")

    def start(self, job_id: str) -> None:
        def reduce_main() -> None:
            merged: Counter = Counter()
            for map_task, nm_name in sorted(self.map_locations.items()):
                # Shuffle fetch: poll until the map output exists
                # (pull-based synchronization, visible to Rule-Mpull).
                while True:
                    output = self.node.rpc(nm_name).fetch_output(map_task)
                    if output is not None:
                        break
                    sleep(self.poll_interval)
                merged.update(output)
            for word, count in sorted(merged.items()):
                self.result.put(word, count)
            self.node.rpc(self.am_name).publish_result(job_id, dict(merged))

        self.node.spawn(reduce_main, name="reduce-main")
