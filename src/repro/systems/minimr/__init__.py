"""mini-MapReduce: a YARN-style computing framework.

Structure mirrors Figure 4 of the paper: a ResourceManager (RM), an
ApplicationMaster (AM) with a single-consumer event dispatcher whose
handlers register/unregister tasks, NodeManagers (NM) whose containers
poll the AM for task payloads over RPC, and a job client.

Seeded bugs (Table 3):

* **MR-3274** — the paper's Figure 1/2 bug: a client-initiated kill can
  unregister a task concurrently with an NM container's ``get_task`` RPC
  polling loop; if the unregister wins, the container hangs forever
  (distributed hang, order violation).
* **MR-4637** — a late task heartbeat can reach the AM after job
  completion removed the job record; the status-update handler throws and
  crashes the job master (local explicit error, order violation).
"""

from repro.systems.minimr.app_master import AppMaster
from repro.systems.minimr.job_client import JobClient
from repro.systems.minimr.node_manager import NodeManager
from repro.systems.minimr.resource_manager import ResourceManager
from repro.systems.minimr.workloads import MR3274Workload, MR4637Workload

__all__ = [
    "AppMaster",
    "NodeManager",
    "ResourceManager",
    "JobClient",
    "MR3274Workload",
    "MR4637Workload",
]
