"""The NodeManager (NM) and its task containers.

``assign_task`` is an RPC from the AM; it forks a container thread.  The
container retrieves the task payload with the ``while (!getTask(jID))``
RPC polling loop of the paper's Figure 2, executes, optionally sends
progress heartbeats, and reports completion.
"""

from __future__ import annotations

from repro.errors import RpcError
from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class NodeManager:
    """One worker node hosting task containers."""

    def __init__(
        self,
        cluster: Cluster,
        name: str,
        am_name: str = "am",
        heartbeats: int = 0,
        final_heartbeat: bool = False,
        poll_interval: int = 3,
        work_ticks: int = 6,
        notify_speculator: bool = False,
        rpc_attempts: int = 2,
    ) -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.am_name = am_name
        self.heartbeats = heartbeats
        self.final_heartbeat = final_heartbeat
        self.poll_interval = poll_interval
        self.work_ticks = work_ticks
        self.notify_speculator = notify_speculator
        self.rpc_attempts = max(1, rpc_attempts)
        self.node.rpc_server.register("assign_task", self.assign_task)

    # -- RPC functions -------------------------------------------------------

    def assign_task(self, job_id: str, task_id: str) -> bool:
        """RPC from the AM: start a container for the task."""

        def container() -> None:
            self._run_container(job_id, task_id)

        self.node.spawn(container, name=f"container-{task_id}")
        return True

    # -- container logic --------------------------------------------------------

    def _am(self):
        """AM proxy with bounded retransmissions: a crashed-and-restarting
        AM looks like a transient transport failure, not a task failure.
        Note the retries never change a fault-free run: the first attempt
        is the plain call, and backoff sleeps only follow an ``RpcError``."""
        return self.node.rpc(self.am_name, retries=self.rpc_attempts - 1)

    def _run_container(self, job_id: str, task_id: str) -> None:
        try:
            # The Figure 2 polling loop: wait until the AM can hand us the
            # task payload.  If the task is unregistered first (MR-3274),
            # this loop never exits — the distributed hang.  (A ``None``
            # reply is a *successful* RPC, so the retry wrapper does not
            # mask the seeded bug.)
            while self._am().get_task(job_id, task_id) is None:
                sleep(self.poll_interval)
            sleep(self.work_ticks)  # execute the task
            for _ in range(self.heartbeats):
                self._am().heartbeat(job_id, task_id)
                sleep(2)
            self._am().report_done(job_id, task_id)
            if self.notify_speculator:
                self._am().attempt_done(task_id)
            if self.final_heartbeat:
                # A trailing progress update after completion: races with
                # the AM's job unregistration (MR-4637).
                self._am().heartbeat(job_id, task_id)
        except RpcError as exc:
            # Retries exhausted: the AM is gone for good.  Abandon the
            # attempt instead of crashing the NM — the AM re-schedules
            # lost attempts when (if) it comes back.
            self.node.log.warn(
                f"container {task_id}: AM unreachable ({exc}); abandoning attempt"
            )
