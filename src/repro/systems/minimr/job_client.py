"""The job client: submits a wordcount-style job, optionally kills it."""

from __future__ import annotations

from typing import List, Optional

from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class JobClient:
    """Drives one job from a client node."""

    def __init__(self, cluster: Cluster, name: str = "client", rm_name: str = "rm"):
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.rm_name = rm_name

    def run_job(
        self,
        job_id: str,
        task_ids: List[str],
        nm_names: List[str],
        kill_after: Optional[int] = None,
    ) -> None:
        """Spawn the client thread: submit, then optionally kill later."""

        def client_main() -> None:
            self.node.rpc(self.rm_name).submit_job(job_id, task_ids, nm_names)
            if kill_after is not None:
                sleep(kill_after)
                self.node.rpc(self.rm_name).kill_job(job_id)

        self.node.spawn(client_main, name="client-main")
