"""Speculative execution (the DefaultSpeculator of real MapReduce).

The speculator watches task progress and launches a *backup attempt* for
a straggler; whichever attempt reports first wins and the other is
discarded.  Attempt bookkeeping lives in a shared map touched by three
parties — the speculator thread, the attempt-completion RPC handler, and
the kill path — which is exactly the kind of state real MapReduce
releases have raced on repeatedly.

The seeded bug (used by the MR-SPEC beyond-benchmark workload): when the
primary attempt completes, the completion handler discards the backup's
bookkeeping; the speculator's progress scan concurrently reads it.  If
the discard wins, the scan sees a vanished attempt and throws, crashing
the job master.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RpcError
from repro.runtime import sleep
from repro.runtime.cluster import Cluster


class Speculator:
    """Straggler detection + backup-attempt bookkeeping on the AM."""

    def __init__(
        self,
        app_master: "object",
        scan_interval: int = 8,
        straggler_after: int = 2,
    ) -> None:
        self.am = app_master
        self.node = app_master.node
        self.log = self.node.log
        self.scan_interval = scan_interval
        self.straggler_after = straggler_after
        #: task id -> {"attempts": n, "progress": ticks-without-report}
        self.attempts = self.node.shared_dict("speculation_attempts")
        self.node.rpc_server.register("attempt_done", self.attempt_done)

    def watch(self, task_id: str, backup_nm: str) -> None:
        """Track a task; spawn the scanner that may launch a backup."""
        self.attempts.put(task_id, 1)

        def scanner() -> None:
            scans = 0
            while self.attempts.contains(task_id):
                scans += 1
                if scans == self.straggler_after:
                    # Straggler: launch the backup attempt.
                    sleep(2)  # fetch attempt statistics before deciding
                    count = self.attempts.get(task_id)
                    if count is None:
                        raise RuntimeError(
                            f"speculation bookkeeping for {task_id} vanished"
                        )
                    self.attempts.put(task_id, count + 1)
                    try:
                        self.node.rpc(backup_nm).assign_task("spec", task_id)
                        self.log.info(f"speculative attempt for {task_id}")
                    except RpcError as exc:
                        # The backup NM is down: speculation is best-effort,
                        # so degrade to the primary attempt only.
                        self.attempts.put(task_id, count)
                        self.log.warn(
                            f"backup attempt for {task_id} not launched: {exc}"
                        )
                sleep(self.scan_interval)

        self.node.spawn(scanner, name=f"speculator-{task_id}")

    def attempt_done(self, task_id: str) -> bool:
        """RPC from an NM: one attempt finished; discard bookkeeping."""
        self.attempts.remove(task_id)
        return True
