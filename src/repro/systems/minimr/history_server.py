"""The JobHistory server: a timeline of job lifecycle events.

Real MapReduce posts job/task lifecycle events to a history server that
serves them back to UIs and debuggers.  The AM reports milestones over
RPC; the history server keeps an append-only timeline per job and
answers queries.  Healthy subsystem — used by integration tests and
available to workloads that want an audit trail.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.runtime.cluster import Cluster


class HistoryServer:
    """Stores per-job event timelines."""

    def __init__(self, cluster: Cluster, name: str = "jhs") -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name)
        self.timelines = self.node.shared_dict("timelines")
        self.node.rpc_server.register("record_event", self.record_event)
        self.node.rpc_server.register("job_timeline", self.job_timeline)
        self.node.rpc_server.register("job_summary", self.job_summary)

    def record_event(self, job_id: str, kind: str, detail: str = "") -> int:
        """RPC from the AM: append one lifecycle event."""
        timeline = self.timelines.get(job_id) or []
        timeline = list(timeline)
        timeline.append({"kind": kind, "detail": detail, "n": len(timeline)})
        self.timelines.put(job_id, timeline)
        return len(timeline)

    def job_timeline(self, job_id: str) -> List[Dict[str, Any]]:
        return list(self.timelines.get(job_id) or [])

    def job_summary(self, job_id: str) -> Optional[Dict[str, Any]]:
        timeline = self.timelines.get(job_id)
        if not timeline:
            return None
        kinds = [event["kind"] for event in timeline]
        return {
            "events": len(timeline),
            "launched": "LAUNCHED" in kinds,
            "finished": "FINISHED" in kinds or "KILLED" in kinds,
            "outcome": kinds[-1],
        }


class HistoryReporter:
    """AM-side helper: report milestones if a history server exists."""

    def __init__(self, am_node: "object", server_name: str = "jhs") -> None:
        self.node = am_node
        self.server_name = server_name

    def report(self, job_id: str, kind: str, detail: str = "") -> None:
        self.node.rpc(self.server_name).record_event(job_id, kind, detail)
