"""Background bookkeeping churn for the mini systems.

Real cloud systems spend most of their memory traffic on *local*
housekeeping — block caches, compaction bookkeeping, container resource
monitors — none of it related to inter-node communication.  DCatch's
selective tracing exists precisely to skip this traffic (paper Section
3.1.1); Table 8 shows that tracing it anyway blows the trace up ~40x and
makes the analysis run out of memory.

``start_churn`` gives each mini system that housekeeping load: a daemon
thread scanning a private table in rounds.  Under the selective scope the
accesses are dropped (not a handler, not a communication function); under
the full scope every access lands in the trace.  The accesses are
single-threaded, so they never add DCbug candidates — only bulk.
"""

from __future__ import annotations

from repro.runtime import sleep
from repro.runtime.node import Node


def start_churn(
    node: Node,
    name: str = "housekeeping",
    entries: int = 40,
    rounds: int = 30,
    interval: int = 2,
) -> None:
    """Run ``rounds`` scans of an ``entries``-slot private table."""
    table = node.shared_dict(f"{name}-table")

    def churn() -> None:
        for round_no in range(rounds):
            for key in range(entries):
                table.put(key, round_no)
                table.get(key)
            sleep(interval)

    node.spawn(churn, name=f"{node.name}.{name}")
