"""Resource governance for the analysis pipeline.

The north-star deployment is a long-running detection service chewing on
unbounded WAL streams; there, an analysis stage that runs forever or
eats all memory takes the tenant fleet down with it.  The
``ResourceGovernor`` bounds both axes:

* **wall-clock deadlines** — each stage gets ``max_stage_seconds``;
  cooperative checkpoints (between detect shards, between trigger
  reports) observe the deadline and stop early, marking the stage
  *degraded* rather than wedging the process;
* **memory budget** — ``memory_budget_mb`` caps both the reachability
  structure's byte accounting (the existing ``TraceAnalysisOOM`` path)
  and the process RSS, polled from ``/proc/self/statm`` (falling back
  to ``resource.getrusage``).

On pressure the pipeline degrades along an explicit ladder (see
``repro.pipeline``): bitset → chain reachability, parallel → serial
enumeration, ``max_pairs_per_location`` truncation, and finally a
``degraded`` stage status instead of an exception.  "Dynamic Race
Detection with O(1) Samples" (PAPERS.md) is the theoretical license:
detection quality survives deliberately shedding work.

Every decision is observable: ``governor_degradations_total{rung=}``,
``governor_deadline_exceeded_total{stage=}``, and the
``governor_rss_mb`` gauge.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro import obs

#: The degradation ladder, in the order rungs are engaged.
DEGRADATION_LADDER = (
    "reach_chain",      # bitset -> chain-compressed reachability
    "detect_serial",    # shrink detect_workers to 1
    "truncate_pairs",   # engage aggressive max_pairs_per_location
    "abandoned",        # give up: stage marked degraded, partial result kept
)

#: ``max_pairs_per_location`` once the ``truncate_pairs`` rung engages.
TRUNCATED_MAX_PAIRS = 5_000

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss_mb() -> float:
    """Current resident set size in MB (high-water fallback on
    platforms without ``/proc``)."""
    try:
        with open("/proc/self/statm") as fh:
            rss_pages = int(fh.read().split()[1])
        return rss_pages * _PAGE_SIZE / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # Linux reports ru_maxrss in KB; a high-water mark is a
            # conservative stand-in for current RSS.
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        except Exception:  # pragma: no cover - exotic platforms
            return 0.0


def maybe_stall(point: str) -> None:
    """Test hook: ``DCATCH_STALL=<point>:<seconds>`` sleeps at a named
    pipeline point so crash/signal tests get a deterministic window.
    A no-op unless the environment variable names this exact point."""
    spec = os.environ.get("DCATCH_STALL")
    if not spec:
        return
    name, _, seconds = spec.partition(":")
    if name != point:
        return
    try:
        time.sleep(float(seconds or "0"))
    except ValueError:
        pass


@dataclass
class StageBudget:
    """One stage's slice of the governor's budgets."""

    name: str
    started: float
    max_seconds: Optional[float] = None
    deadline_hit: bool = False

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def exceeded(self) -> bool:
        """True once the stage is past its wall-clock deadline.  Sticky:
        the first observation is also counted on the metric."""
        if self.max_seconds is None:
            return False
        if not self.deadline_hit and self.elapsed() > self.max_seconds:
            self.deadline_hit = True
            obs.counter(
                "governor_deadline_exceeded_total",
                "pipeline stages that overran max_stage_seconds",
            ).labels(stage=self.name).inc()
        return self.deadline_hit


@dataclass
class ResourceGovernor:
    """Per-run budgets plus the record of every degradation taken."""

    max_stage_seconds: Optional[float] = None
    memory_budget_mb: Optional[int] = None
    #: Rungs engaged this run, in order (also on
    #: ``PipelineResult.degradation``).
    degradations: List[str] = field(default_factory=list)
    #: Stages whose wall-clock deadline fired.
    deadline_stages: List[str] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str) -> Iterator[StageBudget]:
        budget = StageBudget(
            name=name,
            started=time.perf_counter(),
            max_seconds=self.max_stage_seconds,
        )
        try:
            yield budget
        finally:
            if budget.exceeded() and name not in self.deadline_stages:
                self.deadline_stages.append(name)

    # -- memory ---------------------------------------------------------------

    def reach_budget(self, configured_bytes: int) -> int:
        """The reachability byte budget: the configured analysis budget,
        tightened by the governor's overall memory budget when set."""
        if self.memory_budget_mb is None:
            return configured_bytes
        return min(configured_bytes, self.memory_budget_mb * 1024 * 1024)

    def memory_pressure(self) -> bool:
        """True when process RSS is above the governor's budget."""
        if self.memory_budget_mb is None:
            return False
        rss = process_rss_mb()
        obs.gauge("governor_rss_mb", "process RSS at the last poll (MB)").set(
            round(rss, 1)
        )
        return rss > self.memory_budget_mb

    # -- degradation ----------------------------------------------------------

    def degrade(self, rung: str, stage: str, reason: str = "") -> None:
        """Record one rung of the ladder being engaged."""
        self.degradations.append(rung)
        obs.counter(
            "governor_degradations_total",
            "degradation-ladder rungs engaged under resource pressure",
        ).labels(rung=rung, stage=stage).inc()

    def summary(self) -> Dict[str, object]:
        return {
            "max_stage_seconds": self.max_stage_seconds,
            "memory_budget_mb": self.memory_budget_mb,
            "degradations": list(self.degradations),
            "deadline_stages": list(self.deadline_stages),
        }
