"""Resource governance for the analysis pipeline.

The north-star deployment is a long-running detection service chewing on
unbounded WAL streams; there, an analysis stage that runs forever or
eats all memory takes the tenant fleet down with it.  The
``ResourceGovernor`` bounds both axes:

* **wall-clock deadlines** — each stage gets ``max_stage_seconds``;
  cooperative checkpoints (between detect shards, between trigger
  reports) observe the deadline and stop early, marking the stage
  *degraded* rather than wedging the process;
* **memory budget** — ``memory_budget_mb`` caps both the reachability
  structure's byte accounting (the existing ``TraceAnalysisOOM`` path)
  and the process RSS, polled from ``/proc/self/statm`` (falling back
  to ``resource.getrusage``).

On pressure the pipeline degrades along an explicit ladder (see
``repro.pipeline``): bitset → chain reachability, parallel → serial
enumeration, ``max_pairs_per_location`` truncation, and finally a
``degraded`` stage status instead of an exception.  "Dynamic Race
Detection with O(1) Samples" (PAPERS.md) is the theoretical license:
detection quality survives deliberately shedding work.

Every decision is observable: ``governor_degradations_total{rung=}``,
``governor_deadline_exceeded_total{stage=}``, and the
``governor_rss_mb`` gauge.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro import obs

#: The degradation ladder, in the order rungs are engaged.
DEGRADATION_LADDER = (
    "reach_chain",      # bitset -> chain-compressed reachability
    "detect_serial",    # shrink detect_workers to 1
    "truncate_pairs",   # engage aggressive max_pairs_per_location
    "abandoned",        # give up: stage marked degraded, partial result kept
)

#: ``max_pairs_per_location`` once the ``truncate_pairs`` rung engages.
TRUNCATED_MAX_PAIRS = 5_000

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss_mb() -> float:
    """Current resident set size in MB (high-water fallback on
    platforms without ``/proc``)."""
    try:
        with open("/proc/self/statm") as fh:
            rss_pages = int(fh.read().split()[1])
        return rss_pages * _PAGE_SIZE / (1024 * 1024)
    except (OSError, ValueError, IndexError):
        try:
            import resource

            # Linux reports ru_maxrss in KB; a high-water mark is a
            # conservative stand-in for current RSS.
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
        except Exception:  # pragma: no cover - exotic platforms
            return 0.0


def maybe_stall(point: str) -> None:
    """Test hook: ``DCATCH_STALL=<point>:<seconds>`` sleeps at a named
    pipeline point so crash/signal tests get a deterministic window.
    A no-op unless the environment variable names this exact point."""
    spec = os.environ.get("DCATCH_STALL")
    if not spec:
        return
    name, _, seconds = spec.partition(":")
    if name != point:
        return
    try:
        time.sleep(float(seconds or "0"))
    except ValueError:
        pass


@dataclass
class StageBudget:
    """One stage's slice of the governor's budgets."""

    name: str
    started: float
    max_seconds: Optional[float] = None
    deadline_hit: bool = False

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def exceeded(self) -> bool:
        """True once the stage is past its wall-clock deadline.  Sticky:
        the first observation is also counted on the metric."""
        if self.max_seconds is None:
            return False
        if not self.deadline_hit and self.elapsed() > self.max_seconds:
            self.deadline_hit = True
            obs.counter(
                "governor_deadline_exceeded_total",
                "pipeline stages that overran max_stage_seconds",
            ).labels(stage=self.name).inc()
        return self.deadline_hit


@dataclass
class DegradationEvent:
    """One rung of the ladder being engaged, with the operator-facing
    *why* (surfaced by the ``run``/``stream`` CLI summaries)."""

    rung: str
    stage: str
    reason: str = ""

    def describe(self) -> str:
        why = f": {self.reason}" if self.reason else ""
        return f"{self.rung} [{self.stage}{why}]"


@dataclass
class ResourceGovernor:
    """Per-run budgets plus the record of every degradation taken."""

    max_stage_seconds: Optional[float] = None
    memory_budget_mb: Optional[int] = None
    #: Rungs engaged this run, in order (also on
    #: ``PipelineResult.degradation``).
    degradations: List[str] = field(default_factory=list)
    #: Structured (rung, stage, reason) record of each engagement —
    #: parallel to ``degradations``.
    degradation_events: List[DegradationEvent] = field(default_factory=list)
    #: Stages whose wall-clock deadline fired.
    deadline_stages: List[str] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str) -> Iterator[StageBudget]:
        budget = StageBudget(
            name=name,
            started=time.perf_counter(),
            max_seconds=self.max_stage_seconds,
        )
        try:
            yield budget
        finally:
            if budget.exceeded() and name not in self.deadline_stages:
                self.deadline_stages.append(name)

    # -- memory ---------------------------------------------------------------

    def reach_budget(self, configured_bytes: int) -> int:
        """The reachability byte budget: the configured analysis budget,
        tightened by the governor's overall memory budget when set."""
        if self.memory_budget_mb is None:
            return configured_bytes
        return min(configured_bytes, self.memory_budget_mb * 1024 * 1024)

    def memory_pressure(self) -> bool:
        """True when process RSS is above the governor's budget."""
        if self.memory_budget_mb is None:
            return False
        rss = process_rss_mb()
        obs.gauge("governor_rss_mb", "process RSS at the last poll (MB)").set(
            round(rss, 1)
        )
        return rss > self.memory_budget_mb

    # -- degradation ----------------------------------------------------------

    def degrade(self, rung: str, stage: str, reason: str = "") -> None:
        """Record one rung of the ladder being engaged."""
        self.degradations.append(rung)
        self.degradation_events.append(
            DegradationEvent(rung=rung, stage=stage, reason=reason)
        )
        obs.counter(
            "governor_degradations_total",
            "degradation-ladder rungs engaged under resource pressure",
        ).labels(rung=rung, stage=stage).inc()

    def summary(self) -> Dict[str, object]:
        return {
            "max_stage_seconds": self.max_stage_seconds,
            "memory_budget_mb": self.memory_budget_mb,
            "degradations": list(self.degradations),
            "degradation_events": [
                {"rung": e.rung, "stage": e.stage, "reason": e.reason}
                for e in self.degradation_events
            ],
            "deadline_stages": list(self.deadline_stages),
        }


# -- multi-tenant fleet budgets ----------------------------------------------

#: The detection service's overload ladder: every tenant ingests at one
#: of these levels.  Under pressure the service walks right (degrade),
#: with hysteresis on the way back left (recover).  Composition of the
#: PR-5 governor (budgets, observability) with PR-9 sampling (the
#: ``sampled`` rung's mechanism).
OVERLOAD_LADDER = ("full", "sampled", "paused")

#: RSS fraction of the fleet budget where ingestion degrades to sampled.
OVERLOAD_SOFT_FRACTION = 0.75
#: RSS fraction where ingestion pauses (credits stop) until RSS drains.
OVERLOAD_HARD_FRACTION = 0.92
#: Hysteresis: recover one rung only after dropping this far below the
#: rung's engage threshold, so the ladder does not flap at the boundary.
OVERLOAD_RECOVER_MARGIN = 0.08


@dataclass
class FleetBudget:
    """Aggregate budgets for a multi-tenant detection service.

    One process serves many tenant streams; the budget governs the
    *sum*: how many tenants may be admitted at all, how much process
    RSS the fleet may use before the overload ladder engages, and how
    many ingested-but-unprocessed segments may queue per tenant."""

    max_tenants: int = 16
    memory_budget_mb: Optional[int] = None
    queue_segments: int = 64

    def admit_tenant(self, active_tenants: int) -> Optional[str]:
        """None when a new tenant fits, else a refusal reason."""
        if active_tenants >= self.max_tenants:
            return (
                f"tenant budget exhausted "
                f"({active_tenants}/{self.max_tenants} active)"
            )
        if self.memory_budget_mb is not None:
            rss = process_rss_mb()
            if rss > self.memory_budget_mb * OVERLOAD_HARD_FRACTION:
                return (
                    f"memory budget exhausted "
                    f"(RSS {rss:.0f} MB of {self.memory_budget_mb} MB)"
                )
        return None

    def pressure_fraction(
        self, pending_segments: int = 0, active_tenants: int = 1
    ) -> float:
        """Fleet pressure as a fraction of budget — the max of the two
        axes: process RSS against the memory budget, and spooled-but-
        unprocessed segments against the fleet's aggregate queue
        capacity (ingest outrunning detection)."""
        fraction = 0.0
        if self.memory_budget_mb is not None and self.memory_budget_mb > 0:
            fraction = process_rss_mb() / self.memory_budget_mb
        capacity = self.queue_segments * max(1, active_tenants)
        if capacity > 0:
            fraction = max(fraction, pending_segments / capacity)
        return fraction

    def overload_level(
        self,
        current: str = "full",
        pending_segments: int = 0,
        active_tenants: int = 1,
    ) -> str:
        """The ladder rung the fleet should run at, given current
        pressure (RSS and queue depth).

        ``current`` is the rung in effect; recovery applies the
        hysteresis margin so a fleet hovering at a threshold does not
        oscillate between rungs."""
        fraction = self.pressure_fraction(pending_segments, active_tenants)
        rank = OVERLOAD_LADDER.index(current)
        if fraction >= OVERLOAD_HARD_FRACTION:
            target = 2
        elif fraction >= OVERLOAD_SOFT_FRACTION:
            target = 1
        else:
            target = 0
        if target < rank:
            # Recovering: require the margin below the rung we'd leave.
            engage = (
                OVERLOAD_HARD_FRACTION if rank == 2 else OVERLOAD_SOFT_FRACTION
            )
            if fraction > engage - OVERLOAD_RECOVER_MARGIN:
                return current
        return OVERLOAD_LADDER[target]

    def tenant_memory_share_mb(self, active_tenants: int) -> Optional[int]:
        """An even per-tenant slice of the fleet memory budget (used to
        cap each tenant's streaming-detector compaction budget)."""
        if self.memory_budget_mb is None:
            return None
        return max(16, self.memory_budget_mb // max(1, active_tenants))
