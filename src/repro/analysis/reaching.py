"""Flow-sensitive reaching definitions over the statement CFG.

The default taint engine (``repro.analysis.dataflow``) is deliberately
flow-insensitive — a conservative over-approximation that is the right
default for pruning.  This module provides the classic flow-sensitive
alternative: per-CFG-node IN/OUT sets of reaching definitions, computed
by the standard worklist algorithm.  It backs the precision ablation
(how much sharper does pruning get with flow sensitivity?) and doubles
as a well-tested example of dataflow over ``repro.analysis.cfg``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, CFGNode

#: A definition: (variable name, defining CFG node id).
Definition = Tuple[str, int]


def definitions_in(node: CFGNode) -> List[str]:
    """Variable names defined (assigned) by this CFG node."""
    stmt = node.stmt
    if stmt is None:
        return []
    names: List[str] = []
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.For) and node.kind == "cond":
        targets = [stmt.target]
    elif isinstance(stmt, ast.With):
        targets = [
            item.optional_vars
            for item in stmt.items
            if item.optional_vars is not None
        ]
    for target in targets:
        for child in ast.walk(target):
            if isinstance(child, ast.Name):
                names.append(child.id)
    return names


def uses_in(node: CFGNode) -> List[str]:
    """Variable names read by this CFG node."""
    stmt = node.stmt
    if stmt is None:
        return []
    scope: ast.AST = stmt
    if isinstance(stmt, (ast.If, ast.While)) and node.kind == "cond":
        scope = stmt.test
    elif isinstance(stmt, ast.For) and node.kind == "cond":
        scope = stmt.iter
    names: List[str] = []
    for child in ast.walk(scope):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            names.append(child.id)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return names


@dataclass
class ReachingDefinitions:
    """IN/OUT reaching-definition sets per CFG node."""

    cfg: CFG
    in_sets: Dict[int, FrozenSet[Definition]]
    out_sets: Dict[int, FrozenSet[Definition]]

    def reaching(self, node_id: int, variable: str) -> Set[int]:
        """CFG nodes whose definition of ``variable`` reaches ``node_id``."""
        return {
            def_node
            for name, def_node in self.in_sets[node_id]
            if name == variable
        }

    def def_use_pairs(self) -> List[Tuple[int, int, str]]:
        """All (def node, use node, variable) links in the function."""
        pairs = []
        for node in self.cfg.nodes:
            for variable in uses_in(node):
                for def_node in self.reaching(node.nid, variable):
                    pairs.append((def_node, node.nid, variable))
        return pairs


def compute_reaching_definitions(cfg: CFG) -> ReachingDefinitions:
    gen: Dict[int, Set[Definition]] = {}
    kill_names: Dict[int, Set[str]] = {}
    for node in cfg.nodes:
        defined = definitions_in(node)
        gen[node.nid] = {(name, node.nid) for name in defined}
        kill_names[node.nid] = set(defined)

    in_sets: Dict[int, Set[Definition]] = {n.nid: set() for n in cfg.nodes}
    out_sets: Dict[int, Set[Definition]] = {
        n.nid: set(gen[n.nid]) for n in cfg.nodes
    }
    worklist = [node.nid for node in cfg.nodes]
    while worklist:
        nid = worklist.pop()
        node = cfg.nodes[nid]
        new_in: Set[Definition] = set()
        for pred in node.preds:
            new_in |= out_sets[pred]
        survivors = {
            (name, dn) for name, dn in new_in if name not in kill_names[nid]
        }
        new_out = gen[nid] | survivors
        if new_in != in_sets[nid] or new_out != out_sets[nid]:
            in_sets[nid] = new_in
            out_sets[nid] = new_out
            worklist.extend(node.succs)
    return ReachingDefinitions(
        cfg=cfg,
        in_sets={k: frozenset(v) for k, v in in_sets.items()},
        out_sets={k: frozenset(v) for k, v in out_sets.items()},
    )
