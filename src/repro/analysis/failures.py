"""Failure-instruction identification (paper Section 4.1).

Four configurable classes, mirroring the paper:

1. system aborts/exits — calls to ``abort``/``exit`` methods;
2. severe printed errors — ``log.fatal`` / ``log.error`` calls;
3. uncatchable exceptions — ``raise`` statements (our mini systems treat
   any escaping exception as fatal, like a RuntimeException);
4. infinite loops — every loop-exit condition is a *potential* failure
   instruction (a hang if never satisfied).

The spec is configurable, "allowing future extension to detect DCbugs
with different failures" (paper Section 4.1 closing note).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, List

from repro.analysis.cfg import CFG, CFGNode


class FailureClass(Enum):
    ABORT = "abort"
    SEVERE_LOG = "severe_log"
    RAISE = "raise"
    LOOP_EXIT = "loop_exit"


@dataclass(frozen=True)
class FailureSpec:
    """Which instructions count as failures."""

    abort_methods: FrozenSet[str] = frozenset({"abort", "exit", "fatal_exit"})
    log_methods: FrozenSet[str] = frozenset({"fatal", "error"})
    log_receiver_hints: tuple = ("log",)
    raises_are_failures: bool = True
    loop_exits_are_failures: bool = True
    # Coordination-service calls that throw uncatchable exceptions
    # (NoNodeError / NodeExistsError) when their precondition is violated.
    throwing_methods: FrozenSet[str] = frozenset(
        {"create", "delete", "set_data", "get_data"}
    )
    throwing_receiver_hints: tuple = ("zk", "coord", "zoo")


DEFAULT_FAILURE_SPEC = FailureSpec()


@dataclass
class FailureInstruction:
    """One potential failure site inside a function."""

    cfg_node: CFGNode
    failure_class: FailureClass
    detail: str

    @property
    def line(self):
        return self.cfg_node.line


def find_failure_instructions(
    cfg: CFG, spec: FailureSpec = DEFAULT_FAILURE_SPEC
) -> List[FailureInstruction]:
    found: List[FailureInstruction] = []
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if stmt is None:
            continue
        if isinstance(stmt, (ast.While, ast.For)) and node.kind == "cond":
            if spec.loop_exits_are_failures:
                found.append(
                    FailureInstruction(node, FailureClass.LOOP_EXIT, "loop exit")
                )
            continue
        if isinstance(stmt, ast.Raise) and spec.raises_are_failures:
            found.append(
                FailureInstruction(node, FailureClass.RAISE, _raise_detail(stmt))
            )
            continue
        for call in _calls_in_statement(stmt):
            if not isinstance(call.func, ast.Attribute):
                continue
            attr = call.func.attr
            if attr in spec.abort_methods:
                found.append(
                    FailureInstruction(node, FailureClass.ABORT, f"call to {attr}")
                )
            elif attr in spec.log_methods and _receiver_is_log(call.func, spec):
                found.append(
                    FailureInstruction(
                        node, FailureClass.SEVERE_LOG, f"log.{attr}"
                    )
                )
            elif attr in spec.throwing_methods and _receiver_matches(
                call.func, spec.throwing_receiver_hints
            ):
                if spec.raises_are_failures:
                    found.append(
                        FailureInstruction(
                            node, FailureClass.RAISE, f"throwing API {attr}"
                        )
                    )
    return found


def _calls_in_statement(stmt: ast.AST) -> List[ast.Call]:
    calls = []
    for child in ast.walk(stmt):
        if isinstance(child, ast.Call):
            calls.append(child)
        # Do not descend into nested function definitions.
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)) and child is not stmt:
            return [
                c
                for c in calls
                if not _within(c, child)
            ]
    return calls


def _within(node: ast.AST, container: ast.AST) -> bool:
    return any(child is node for child in ast.walk(container))


def _receiver_is_log(func: ast.Attribute, spec: FailureSpec) -> bool:
    return _receiver_matches(func, spec.log_receiver_hints)


def _receiver_matches(func: ast.Attribute, hints: tuple) -> bool:
    text = ast.dump(func.value).lower()
    return any(hint in text for hint in hints)


def _raise_detail(stmt: ast.Raise) -> str:
    if stmt.exc is None:
        return "re-raise"
    if isinstance(stmt.exc, ast.Call) and isinstance(stmt.exc.func, ast.Name):
        return f"raise {stmt.exc.func.id}"
    if isinstance(stmt.exc, ast.Name):
        return f"raise {stmt.exc.id}"
    return "raise"
