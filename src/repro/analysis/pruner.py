"""Static pruning of DCbug candidates (paper Section 4).

A candidate ``(s, t)`` survives iff *either* access can influence a
failure instruction.  The pruner anchors each access by its trace call
stack (innermost system-under-test frame first, falling back outward when
a frame cannot be resolved — the paper's "inter-procedural analysis
follows the reported call-stack").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.astutil import SourceIndex
from repro.analysis.failures import DEFAULT_FAILURE_SPEC, FailureSpec
from repro.analysis.impact import Impact, ImpactAnalyzer, RpcLink, rpc_links_from_trace
from repro.detect.report import CONFIDENCE_RANK, SOUNDNESS_RANK, BugReport, ReportSet
from repro.ids import Site
from repro.runtime.ops import OpEvent


def rank_reports(reports) -> List[BugReport]:
    """Trigger-queue order: strongest soundness tier first (SP-sound
    candidates jump the queue), then strongest confidence (``full`` <
    ``partial`` < ``sampled`` — sampled evidence queues after sp-sound
    full-trace reports), stable by report id within a tier — which
    keeps pre-SP single-confidence pipelines byte-identical to their
    old output."""
    return sorted(
        reports,
        key=lambda r: (
            -SOUNDNESS_RANK.get(getattr(r, "soundness", "hb-predicted"), 0),
            CONFIDENCE_RANK.get(getattr(r, "confidence", "full"), 0),
            r.report_id,
        ),
    )


@dataclass
class PruneDecision:
    report: BugReport
    keep: bool
    reasons: List[str] = field(default_factory=list)


@dataclass
class PruneResult:
    kept: ReportSet
    pruned: ReportSet
    decisions: List[PruneDecision]
    seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"static pruning kept {len(self.kept)} / "
            f"{len(self.kept) + len(self.pruned)} reports"
        )


class StaticPruner:
    """Prunes candidates with no estimated failure impact."""

    def __init__(
        self,
        index: SourceIndex,
        spec: FailureSpec = DEFAULT_FAILURE_SPEC,
        rpc_links: Sequence[RpcLink] = (),
        interprocedural_depth: int = 1,
        observed_functions=None,
    ) -> None:
        self.analyzer = ImpactAnalyzer(
            index,
            spec=spec,
            rpc_links=rpc_links,
            interprocedural_depth=interprocedural_depth,
            observed_functions=observed_functions,
        )

    @classmethod
    def for_trace(
        cls,
        index: SourceIndex,
        trace: "object",
        spec: FailureSpec = DEFAULT_FAILURE_SPEC,
        interprocedural_depth: int = 1,
    ) -> "StaticPruner":
        observed = {
            frame.func
            for record in trace.records
            for frame in record.callstack
        }
        return cls(
            index,
            spec=spec,
            rpc_links=rpc_links_from_trace(trace),
            interprocedural_depth=interprocedural_depth,
            observed_functions=observed,
        )

    def assess(self, report: BugReport) -> PruneDecision:
        reasons: List[str] = []
        keep = False
        for access in report.representative.accesses():
            impact = self._access_impact(access)
            if impact.found:
                keep = True
                reasons.extend(impact.reasons)
        return PruneDecision(report=report, keep=keep, reasons=reasons)

    def apply(self, reports: ReportSet, detection=None) -> PruneResult:
        """Assess every report; the kept set comes back in trigger-queue
        order (``rank_reports``: SP-sound first).

        ``detection`` is optional ranking context.  Streaming-mode
        results carry ``graph=None`` (no whole-trace HB graph exists),
        so nothing here may touch ``detection.graph`` unguarded — the
        soundness tiers ranked on were computed at detection time and
        live on the reports themselves."""
        import time

        from repro import obs

        started = time.perf_counter()
        with obs.span("prune.apply", reports=len(reports)):
            decisions = [self.assess(report) for report in reports]
        kept = ReportSet(rank_reports(d.report for d in decisions if d.keep))
        pruned = ReportSet([d.report for d in decisions if not d.keep])
        sp_kept = sum(1 for r in kept if r.soundness == "sp-sound")
        if sp_kept:
            obs.counter(
                "prune_sp_sound_kept_total",
                "SP-sound reports surviving static pruning",
            ).inc(sp_kept)
        obs.counter("prune_kept_total", "reports surviving static pruning").inc(
            len(kept)
        )
        obs.counter("prune_dropped_total", "reports pruned as impact-free").inc(
            len(pruned)
        )
        return PruneResult(
            kept=kept,
            pruned=pruned,
            decisions=decisions,
            seconds=time.perf_counter() - started,
        )

    def _access_impact(self, access: OpEvent) -> Impact:
        """Walk the recorded call stack outward until a frame resolves."""
        for frame in access.callstack:
            site = Site.of_frame(frame)
            fn = self.analyzer.index.function_at(site.path, site.line)
            if fn is None:
                continue
            return self.analyzer.access_impact(site)
        return Impact(True, ["no resolvable frame: kept conservatively"])
