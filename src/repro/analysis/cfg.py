"""Statement-level control-flow graphs for Python functions.

The unit the pruner reasons about is the CFG node: a simple statement, or
the condition of an ``if``/``while``/``for``.  Construction threads a
"frontier" of dangling edges through the statement list, with loop-
context stacks for ``break``/``continue`` and an exit node collecting
``return``/``raise``/fall-through.

``try`` blocks are approximated: handlers are entered from every node of
the try body (any statement may raise), ``finally`` follows both.  This
over-approximates flow, which for pruning purposes errs on the safe side
(more dependence → fewer candidates pruned).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_STMT = "stmt"
KIND_COND = "cond"  # if/while test, for iterator


@dataclass
class CFGNode:
    nid: int
    kind: str
    stmt: Optional[ast.AST] = None
    label: str = ""
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    @property
    def line(self) -> Optional[int]:
        return getattr(self.stmt, "lineno", None)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(KIND_ENTRY, label="<entry>")
        self.exit = self._new(KIND_EXIT, label="<exit>")

    def _new(
        self, kind: str, stmt: Optional[ast.AST] = None, label: str = ""
    ) -> CFGNode:
        node = CFGNode(nid=len(self.nodes), kind=kind, stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)
            self.nodes[dst].preds.append(src)

    def nodes_at_line(self, line: int) -> List[CFGNode]:
        return [n for n in self.nodes if n.line == line]

    def statement_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.kind in (KIND_STMT, KIND_COND)]

    def loop_condition_nodes(self) -> List[CFGNode]:
        return [
            n
            for n in self.nodes
            if n.kind == KIND_COND and isinstance(n.stmt, (ast.While, ast.For))
        ]


class _LoopContext:
    def __init__(self, cond_id: int) -> None:
        self.cond_id = cond_id
        self.breaks: List[int] = []


class CFGBuilder:
    """Builds a ``CFG`` from an ``ast.FunctionDef``."""

    def __init__(self) -> None:
        self.cfg = CFG()
        self._loops: List[_LoopContext] = []

    def build(self, fn: ast.FunctionDef) -> CFG:
        frontier = [self.cfg.entry.nid]
        frontier = self._sequence(fn.body, frontier)
        for nid in frontier:
            self.cfg.add_edge(nid, self.cfg.exit.nid)
        return self.cfg

    # -- helpers ----------------------------------------------------------

    def _sequence(self, stmts: Sequence[ast.stmt], frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self._statement(stmt, frontier)
        return frontier

    def _connect(self, frontier: List[int], node_id: int) -> None:
        for nid in frontier:
            self.cfg.add_edge(nid, node_id)

    def _statement(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, ast.For):
            return self._for(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.With):
            node = self.cfg._new(KIND_STMT, stmt, label="with")
            self._connect(frontier, node.nid)
            return self._sequence(stmt.body, [node.nid])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self.cfg._new(KIND_STMT, stmt, label=type(stmt).__name__.lower())
            self._connect(frontier, node.nid)
            self.cfg.add_edge(node.nid, self.cfg.exit.nid)
            return []
        if isinstance(stmt, ast.Break):
            node = self.cfg._new(KIND_STMT, stmt, label="break")
            self._connect(frontier, node.nid)
            if self._loops:
                self._loops[-1].breaks.append(node.nid)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new(KIND_STMT, stmt, label="continue")
            self._connect(frontier, node.nid)
            if self._loops:
                self.cfg.add_edge(node.nid, self._loops[-1].cond_id)
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested definitions execute as one step (the body is analyzed
            # separately when that function is anchored).
            node = self.cfg._new(KIND_STMT, stmt, label=f"def {stmt.name}")
            self._connect(frontier, node.nid)
            return [node.nid]
        node = self.cfg._new(KIND_STMT, stmt, label=type(stmt).__name__)
        self._connect(frontier, node.nid)
        return [node.nid]

    def _if(self, stmt: ast.If, frontier: List[int]) -> List[int]:
        cond = self.cfg._new(KIND_COND, stmt, label="if")
        self._connect(frontier, cond.nid)
        then_exit = self._sequence(stmt.body, [cond.nid])
        if stmt.orelse:
            else_exit = self._sequence(stmt.orelse, [cond.nid])
            return then_exit + else_exit
        return then_exit + [cond.nid]

    def _while(self, stmt: ast.While, frontier: List[int]) -> List[int]:
        cond = self.cfg._new(KIND_COND, stmt, label="while")
        self._connect(frontier, cond.nid)
        ctx = _LoopContext(cond.nid)
        self._loops.append(ctx)
        body_exit = self._sequence(stmt.body, [cond.nid])
        self._loops.pop()
        for nid in body_exit:
            self.cfg.add_edge(nid, cond.nid)
        exits = [cond.nid] + ctx.breaks
        if stmt.orelse:
            exits = self._sequence(stmt.orelse, [cond.nid]) + ctx.breaks
        return exits

    def _for(self, stmt: ast.For, frontier: List[int]) -> List[int]:
        cond = self.cfg._new(KIND_COND, stmt, label="for")
        self._connect(frontier, cond.nid)
        ctx = _LoopContext(cond.nid)
        self._loops.append(ctx)
        body_exit = self._sequence(stmt.body, [cond.nid])
        self._loops.pop()
        for nid in body_exit:
            self.cfg.add_edge(nid, cond.nid)
        exits = [cond.nid] + ctx.breaks
        if stmt.orelse:
            exits = self._sequence(stmt.orelse, [cond.nid]) + ctx.breaks
        return exits

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        body_nodes_before = len(self.cfg.nodes)
        body_exit = self._sequence(stmt.body, frontier)
        body_node_ids = list(range(body_nodes_before, len(self.cfg.nodes)))
        exits = list(body_exit)
        for handler in stmt.handlers:
            sources = body_node_ids or frontier
            handler_frontier = list(sources)
            exits += self._sequence(handler.body, handler_frontier)
        if stmt.orelse:
            exits = self._sequence(stmt.orelse, body_exit) + [
                e for e in exits if e not in body_exit
            ]
        if stmt.finalbody:
            exits = self._sequence(stmt.finalbody, exits)
        return exits


def build_cfg(fn: ast.FunctionDef) -> CFG:
    return CFGBuilder().build(fn)
