"""Static pruning: program analysis over system sources (paper Section 4)."""

from repro.analysis.astutil import (
    ACCESS_METHODS,
    READ_METHODS,
    WRITE_METHODS,
    CallSite,
    FunctionInfo,
    SourceIndex,
    access_calls_at_line,
)
from repro.analysis.cfg import CFG, CFGNode, build_cfg
from repro.analysis.dataflow import TaintAnalysis, TaintResult
from repro.analysis.failures import (
    DEFAULT_FAILURE_SPEC,
    FailureClass,
    FailureInstruction,
    FailureSpec,
    find_failure_instructions,
)
from repro.analysis.impact import (
    Impact,
    ImpactAnalyzer,
    RpcLink,
    rpc_links_from_trace,
)
from repro.analysis.pdg import (
    control_dependence,
    dominator_sets,
    postdominator_sets,
    transitive_control_dependence,
)
from repro.analysis.pruner import PruneDecision, PruneResult, StaticPruner
from repro.analysis.reaching import (
    ReachingDefinitions,
    compute_reaching_definitions,
    definitions_in,
    uses_in,
)

__all__ = [
    "SourceIndex",
    "FunctionInfo",
    "CallSite",
    "access_calls_at_line",
    "ACCESS_METHODS",
    "READ_METHODS",
    "WRITE_METHODS",
    "CFG",
    "CFGNode",
    "build_cfg",
    "TaintAnalysis",
    "TaintResult",
    "FailureSpec",
    "FailureClass",
    "FailureInstruction",
    "DEFAULT_FAILURE_SPEC",
    "find_failure_instructions",
    "Impact",
    "ImpactAnalyzer",
    "RpcLink",
    "rpc_links_from_trace",
    "postdominator_sets",
    "dominator_sets",
    "control_dependence",
    "transitive_control_dependence",
    "StaticPruner",
    "PruneDecision",
    "PruneResult",
    "ReachingDefinitions",
    "compute_reaching_definitions",
    "definitions_in",
    "uses_in",
]
