"""Control dependence via postdominators (the PDG's control half).

Standard Ferrante–Ottenstein–Warren construction: node *n* is control
dependent on predicate *p* iff *p* has a successor *s* such that *n*
postdominates *s* (inclusively) but *n* does not strictly postdominate
*p*.  Postdominator sets are computed by the iterative dataflow algorithm
on the reverse CFG.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.cfg import CFG


def dominator_sets(cfg: CFG) -> List[Set[int]]:
    """``dom[n]`` = nodes that dominate ``n`` (inclusive of n).

    The forward dual of ``postdominator_sets``; not used by the pruner
    itself but part of the analysis toolkit (e.g. loop-header checks).
    """
    n = len(cfg.nodes)
    all_nodes = set(range(n))
    dom: List[Set[int]] = [set(all_nodes) for _ in range(n)]
    dom[cfg.entry.nid] = {cfg.entry.nid}
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.nid == cfg.entry.nid:
                continue
            preds = node.preds
            if preds:
                new: Set[int] = set(dom[preds[0]])
                for p in preds[1:]:
                    new &= dom[p]
            else:
                new = set()
            new.add(node.nid)
            if new != dom[node.nid]:
                dom[node.nid] = new
                changed = True
    return dom


def postdominator_sets(cfg: CFG) -> List[Set[int]]:
    """``pdom[n]`` = nodes that postdominate ``n`` (inclusive of n)."""
    n = len(cfg.nodes)
    all_nodes = set(range(n))
    pdom: List[Set[int]] = [set(all_nodes) for _ in range(n)]
    pdom[cfg.exit.nid] = {cfg.exit.nid}
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.nid == cfg.exit.nid:
                continue
            succs = node.succs
            if succs:
                new: Set[int] = set(pdom[succs[0]])
                for s in succs[1:]:
                    new &= pdom[s]
            else:
                # No successors and not exit (unreachable tail): only
                # itself.
                new = set()
            new.add(node.nid)
            if new != pdom[node.nid]:
                pdom[node.nid] = new
                changed = True
    return pdom


def control_dependence(cfg: CFG) -> Dict[int, Set[int]]:
    """``cd[n]`` = predicates that ``n`` is control dependent on."""
    pdom = postdominator_sets(cfg)
    cd: Dict[int, Set[int]] = {node.nid: set() for node in cfg.nodes}
    for p in cfg.nodes:
        if len(p.succs) < 2:
            continue  # not a branch
        strict_pdom_p = pdom[p.nid] - {p.nid}
        for s in p.succs:
            for n_id in pdom[s]:
                if n_id != p.nid and n_id not in strict_pdom_p:
                    cd[n_id].add(p.nid)
    return cd


def transitive_control_dependence(cfg: CFG) -> Dict[int, Set[int]]:
    """Transitive closure of control dependence (predicate chains)."""
    direct = control_dependence(cfg)
    closure: Dict[int, Set[int]] = {}

    def resolve(nid: int, seen: Set[int]) -> Set[int]:
        if nid in closure:
            return closure[nid]
        result = set(direct[nid])
        for p in direct[nid]:
            if p not in seen:
                result |= resolve(p, seen | {nid})
        closure[nid] = result
        return result

    for node in cfg.nodes:
        resolve(node.nid, set())
    return closure
