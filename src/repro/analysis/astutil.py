"""Source indexing for static analysis.

The paper's static pruning runs WALA over Java bytecode.  Our systems are
Python, so the equivalent program representation is the ``ast`` of the
system-under-test modules.  ``SourceIndex`` parses a set of modules and
answers the queries the pruner needs:

* function containing a given (file, line) — to anchor a traced access;
* all functions by name — for one-level caller/callee hops;
* call sites of a function — a name-based call graph, which matches the
  paper's accuracy-conscious "one-level" inter-procedural analysis.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from types import ModuleType
from typing import Dict, Iterable, List, Optional, Tuple

#: Heap accessor method names, split by effect.  These identify "the
#: memory access expression" at a traced line.
READ_METHODS = frozenset(
    {
        "get",
        "contains",
        "size",
        "is_empty",
        "keys",
        "items",
        "snapshot",
        "get_data",
        "exists",
        "get_children",
    }
)
WRITE_METHODS = frozenset(
    {
        "set",
        "put",
        "remove",
        "clear",
        "add",
        "append",
        "discard",
        "pop_first",
        "increment",
        "compare_and_set",
        "create",
        "delete",
        "set_data",
    }
)
ACCESS_METHODS = READ_METHODS | WRITE_METHODS


@dataclass
class FunctionInfo:
    """One function definition plus its location."""

    name: str
    qualname: str
    path: str  # shortened, matches trace Frame.path convention
    node: ast.FunctionDef
    first_line: int
    last_line: int

    def contains_line(self, line: int) -> bool:
        return self.first_line <= line <= self.last_line


@dataclass
class CallSite:
    """A call to some known function, inside another function."""

    caller: FunctionInfo
    call: ast.Call
    line: int


def _shorten(path: str) -> str:
    for marker in ("src/repro/", "repro/"):
        idx = path.rfind(marker)
        if idx >= 0:
            return path[idx:]
    parts = path.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


class SourceIndex:
    """Parsed view of the system-under-test sources."""

    def __init__(self) -> None:
        self._functions: List[FunctionInfo] = []
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._by_path: Dict[str, List[FunctionInfo]] = {}
        self._call_sites: Dict[str, List[CallSite]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_modules(cls, modules: Iterable[ModuleType]) -> "SourceIndex":
        index = cls()
        for module in modules:
            try:
                source = inspect.getsource(module)
                path = inspect.getsourcefile(module) or "<unknown>"
            except (OSError, TypeError):
                continue
            index.add_source(source, path)
        index._build_call_graph()
        return index

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "SourceIndex":
        """``{path: source}`` — used heavily by tests."""
        index = cls()
        for path, source in sources.items():
            index.add_source(source, path)
        index._build_call_graph()
        return index

    def add_source(self, source: str, path: str) -> None:
        short = _shorten(path)
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = node.name
                info = FunctionInfo(
                    name=node.name,
                    qualname=qual,
                    path=short,
                    node=node,
                    first_line=node.lineno,
                    last_line=_max_line(node),
                )
                self._functions.append(info)
                self._by_name.setdefault(node.name, []).append(info)
                self._by_path.setdefault(short, []).append(info)

    def _build_call_graph(self) -> None:
        self._call_sites = {}
        for fn in self._functions:
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                name = call_target_name(node)
                if name is None:
                    continue
                self._call_sites.setdefault(name, []).append(
                    CallSite(caller=fn, call=node, line=node.lineno)
                )

    # -- queries --------------------------------------------------------------

    def functions(self) -> List[FunctionInfo]:
        return list(self._functions)

    def function_at(self, path: str, line: int) -> Optional[FunctionInfo]:
        """Innermost function containing (path, line)."""
        candidates = [
            fn
            for fn in self._by_path.get(_shorten(path), [])
            if fn.contains_line(line)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda fn: fn.last_line - fn.first_line)

    def functions_named(self, name: str) -> List[FunctionInfo]:
        return list(self._by_name.get(name, []))

    def callers_of(self, name: str) -> List[CallSite]:
        return list(self._call_sites.get(name, []))


def _max_line(node: ast.AST) -> int:
    result = getattr(node, "lineno", 0)
    for child in ast.walk(node):
        line = getattr(child, "end_lineno", getattr(child, "lineno", 0)) or 0
        if line > result:
            result = line
    return result


def call_target_name(call: ast.Call) -> Optional[str]:
    """The bare name a call dispatches to, if recognizable."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def access_calls_at_line(fn: FunctionInfo, line: int) -> List[ast.Call]:
    """Heap-access calls (``x.get(...)``, ``m.put(...)``) at a line."""
    result = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and getattr(node, "lineno", None) == line
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ACCESS_METHODS
        ):
            result.append(node)
    return result


def names_used(node: ast.AST) -> List[str]:
    """All variable names read inside ``node`` (including attr roots)."""
    result = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            result.append(child.id)
    return result


def attribute_paths_used(node: ast.AST) -> List[str]:
    """Dotted paths like ``self.tasks`` read inside ``node``."""
    result = []
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute) and isinstance(child.ctx, ast.Load):
            path = _attr_path(child)
            if path is not None:
                result.append(path)
    return result


def receiver_paths(call: ast.Call) -> List[str]:
    """Dotted paths of a heap-access call's receiver.

    For ``self.accepted_epoch.set(v)`` this is ``["self.accepted_epoch"]``
    — used to connect accesses to the *same heap object* within a
    function (any other access to that object is value-related).
    """
    if not isinstance(call.func, ast.Attribute):
        return []
    value = call.func.value
    if isinstance(value, ast.Attribute):
        path = _attr_path(value)
        return [path] if path else []
    if isinstance(value, ast.Name):
        return [value.id]
    return []


def _attr_path(node: ast.Attribute) -> Optional[str]:
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
        return ".".join(reversed(parts))
    return None
