"""Taint propagation: the data half of the dependence analysis.

Given source expressions (the traced heap access at the candidate's line),
propagate through assignments inside one function until fixpoint.  The
propagation is flow-insensitive — an over-approximation of the paper's
PDG-based data dependence, which errs on the conservative side for
pruning (more dependence found → fewer candidates discarded).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import FunctionInfo, attribute_paths_used, call_target_name


@dataclass
class TaintResult:
    """What the taint reached inside one function."""

    tainted_expr_ids: Set[int]
    tainted_names: Set[str]
    tainted_attrs: Set[str]
    return_tainted: bool
    tainted_call_args: List[Tuple[ast.Call, str, List[int], List[str]]]
    # (call node, callee name, tainted positional idx, tainted kwarg names)

    def expr_is_tainted(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            # Only real expression nodes carry taint identity; context
            # objects (Load/Store) are shared singletons in CPython's ast
            # and must never be used as identity keys.
            if isinstance(child, ast.expr) and id(child) in self.tainted_expr_ids:
                return True
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                if child.id in self.tainted_names:
                    return True
        if self.tainted_attrs:
            for path in attribute_paths_used(node):
                if path in self.tainted_attrs:
                    return True
        return False


class TaintAnalysis:
    """Function-local forward taint."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn

    def run(
        self,
        sources: Sequence[ast.AST],
        seed_names: Sequence[str] = (),
        seed_attrs: Sequence[str] = (),
    ) -> TaintResult:
        tainted_expr_ids: Set[int] = set()
        for src in sources:
            for child in ast.walk(src):
                if isinstance(child, ast.expr):
                    tainted_expr_ids.add(id(child))
        result = TaintResult(
            tainted_expr_ids=tainted_expr_ids,
            tainted_names=set(seed_names),
            tainted_attrs=set(seed_attrs),
            return_tainted=False,
            tainted_call_args=[],
        )
        assignments = self._assignments()
        changed = True
        while changed:
            changed = False
            for targets, value in assignments:
                if value is None or not result.expr_is_tainted(value):
                    continue
                for target in targets:
                    changed |= self._taint_target(target, result)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if result.expr_is_tainted(node.value):
                    result.return_tainted = True
        result.tainted_call_args = self._tainted_calls(result)
        return result

    # -- internals ------------------------------------------------------------

    def _assignments(self) -> List[Tuple[List[ast.expr], Optional[ast.expr]]]:
        pairs: List[Tuple[List[ast.expr], Optional[ast.expr]]] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                pairs.append((list(node.targets), node.value))
            elif isinstance(node, ast.AugAssign):
                pairs.append(([node.target], node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs.append(([node.target], node.value))
            elif isinstance(node, ast.For):
                pairs.append(([node.target], node.iter))
            elif isinstance(node, ast.NamedExpr):
                pairs.append(([node.target], node.value))
            elif isinstance(node, ast.With):
                for item in node.items:
                    if item.optional_vars is not None:
                        pairs.append(([item.optional_vars], item.context_expr))
        return pairs

    def _taint_target(self, target: ast.expr, result: TaintResult) -> bool:
        changed = False
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                if node.id not in result.tainted_names:
                    result.tainted_names.add(node.id)
                    changed = True
            elif isinstance(node, ast.Attribute):
                paths = attribute_paths_used(_as_load(node))
                for path in paths:
                    if path not in result.tainted_attrs:
                        result.tainted_attrs.add(path)
                        changed = True
        return changed

    def _tainted_calls(
        self, result: TaintResult
    ) -> List[Tuple[ast.Call, str, List[int], List[str]]]:
        out = []
        for node in ast.walk(self.fn.node):
            if not isinstance(node, ast.Call):
                continue
            if id(node) in result.tainted_expr_ids:
                continue  # the source access itself, not a downstream call
            name = call_target_name(node)
            if name is None:
                continue
            pos = [
                i for i, arg in enumerate(node.args) if result.expr_is_tainted(arg)
            ]
            kw = [
                k.arg
                for k in node.keywords
                if k.arg is not None and result.expr_is_tainted(k.value)
            ]
            if pos or kw:
                out.append((node, name, pos, kw))
        return out


def _as_load(node: ast.Attribute) -> ast.Attribute:
    """Re-context an attribute store target so path extraction works."""
    clone = ast.Attribute(value=node.value, attr=node.attr, ctx=ast.Load())
    ast.copy_location(clone, node)
    return clone
