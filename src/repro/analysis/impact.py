"""Impact estimation (paper Section 4.2).

Given one access of a DCbug candidate, decide whether it can influence a
failure instruction:

* **Local, intra-procedural** — taint the access expression; a failure
  instruction is impacted if it uses tainted data or is control dependent
  (via the postdominator PDG) on a tainted predicate.
* **Local, one-level caller** — if the function's return value is tainted,
  re-anchor the taint at each caller's call expression (one level only,
  like the paper, "for accuracy concerns").
* **Local, one-level callee** — if tainted data is passed as an argument,
  seed the matching parameter inside the callee (one level only).
* **Distributed** — if the access sits in an RPC handler whose return
  value is tainted, re-anchor at the *remote* caller of that RPC (found
  through the happens-before chains recorded in the trace, exactly as the
  paper locates ``Mr``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import (
    FunctionInfo,
    SourceIndex,
    access_calls_at_line,
    call_target_name,
    receiver_paths,
)
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import TaintAnalysis, TaintResult
from repro.analysis.failures import (
    DEFAULT_FAILURE_SPEC,
    FailureInstruction,
    FailureSpec,
    find_failure_instructions,
)
from repro.analysis.pdg import transitive_control_dependence
from repro.ids import Site
from repro.runtime.ops import OpKind


@dataclass
class Impact:
    """Result of impact estimation for one access."""

    found: bool
    reasons: List[str] = field(default_factory=list)

    def merge(self, other: "Impact") -> "Impact":
        return Impact(self.found or other.found, self.reasons + other.reasons)


@dataclass(frozen=True)
class RpcLink:
    """An RPC method observed at run time: handler + remote caller sites."""

    method: str
    handler_func: str
    caller_sites: Tuple[Site, ...]


def rpc_links_from_trace(trace: "object") -> List[RpcLink]:
    """Reconstruct RPC handler/caller relationships from trace records."""
    handler_by_method: Dict[str, str] = {}
    callers_by_method: Dict[str, Set[Site]] = {}
    for record in trace.records:
        if record.kind is OpKind.RPC_BEGIN:
            handler = record.extra.get("handler", "")
            method = record.extra.get("method", "")
            handler_by_method[method] = handler.split(".")[-1]
        elif record.kind is OpKind.RPC_CREATE:
            method = record.extra.get("method", "")
            site = record.site
            if site is not None:
                callers_by_method.setdefault(method, set()).add(site)
    links = []
    for method, handler in handler_by_method.items():
        links.append(
            RpcLink(
                method=method,
                handler_func=handler,
                caller_sites=tuple(sorted(callers_by_method.get(method, ()), key=str)),
            )
        )
    return links


class ImpactAnalyzer:
    """Implements the paper's local + distributed impact analysis."""

    def __init__(
        self,
        index: SourceIndex,
        spec: FailureSpec = DEFAULT_FAILURE_SPEC,
        rpc_links: Sequence[RpcLink] = (),
        interprocedural_depth: int = 1,
        observed_functions: Optional[Set[str]] = None,
    ) -> None:
        """``observed_functions`` — names of functions that actually ran
        in the monitored trace; when provided, the heap-field hop only
        follows objects into those (impact through never-executed code
        is not impact for this workload — the same philosophy as the
        paper's call-stack-guided inter-procedural analysis)."""
        self.index = index
        self.spec = spec
        self.rpc_links = list(rpc_links)
        self.depth = interprocedural_depth
        self.observed_functions = observed_functions
        self._cache: Dict[Site, Impact] = {}
        self._field_readers: Dict[str, List[FunctionInfo]] = {}

    # -- public API -------------------------------------------------------

    def access_impact(self, site: Optional[Site]) -> Impact:
        """Can the access at ``site`` influence any failure instruction?"""
        if site is None:
            return Impact(True, ["unresolved site: kept conservatively"])
        cached = self._cache.get(site)
        if cached is not None:
            return cached
        impact = self._compute(site)
        self._cache[site] = impact
        return impact

    # -- core -----------------------------------------------------------------

    def _compute(self, site: Site) -> Impact:
        fn = self.index.function_at(site.path, site.line)
        if fn is None:
            return Impact(True, [f"{site}: function not found, kept conservatively"])
        sources = access_calls_at_line(fn, site.line)
        receiver_seeds: List[str] = []
        for call in sources:
            receiver_seeds.extend(receiver_paths(call))
        if not sources:
            sources = _statements_at_line(fn, site.line)
        if not sources:
            return Impact(True, [f"{site}: access expression not found, kept"])
        # Other accesses to the same heap object in this function are
        # value-related to this access (same-object dependence).
        seed_names = [p for p in receiver_seeds if "." not in p]
        seed_attrs = [p for p in receiver_seeds if "." in p]
        impact = self._impact_of_sources(
            fn,
            sources,
            self.depth,
            via=str(site),
            seed_names=seed_names,
            seed_attrs=seed_attrs,
        )
        if not impact.found:
            impact = impact.merge(
                self._heap_field_impact(fn, receiver_seeds, via=str(site))
            )
        return impact

    def _heap_field_impact(
        self, fn: FunctionInfo, receiver_seeds: List[str], via: str
    ) -> Impact:
        """Field-based heap hop: the accessed object may be read by any
        other function; if such a read feeds a failure instruction there,
        the access has impact.  This is the analogue of WALA's
        field-sensitive heap modeling (the paper's "heap/global objects"
        channel), matched by field name.
        """
        fields = {p.rsplit(".", 1)[-1] for p in receiver_seeds}
        fields.discard("")
        result = Impact(False)
        for field_name in sorted(fields):
            for other in self._functions_accessing_field(field_name):
                if other.node is fn.node:
                    continue
                if (
                    self.observed_functions is not None
                    and other.name not in self.observed_functions
                ):
                    continue
                sub = self._impact_of_sources(
                    other,
                    sources=[],
                    depth=0,
                    via=f"{via} -> heap field {field_name} in {other.name}",
                    seed_attrs=[f"self.{field_name}"],
                    seed_names=[field_name],
                )
                result = result.merge(sub)
                if result.found:
                    return result
        return result

    def _functions_accessing_field(self, field_name: str) -> List[FunctionInfo]:
        cached = self._field_readers.get(field_name)
        if cached is not None:
            return cached
        import ast as _ast

        readers = []
        for fn in self.index.functions():
            found = False
            for node in _ast.walk(fn.node):
                if (
                    isinstance(node, _ast.Attribute)
                    and node.attr == field_name
                ):
                    found = True
                    break
            if found:
                readers.append(fn)
        self._field_readers[field_name] = readers
        return readers

    def _impact_of_sources(
        self,
        fn: FunctionInfo,
        sources: Sequence[ast.AST],
        depth: int,
        via: str,
        seed_names: Sequence[str] = (),
        seed_attrs: Sequence[str] = (),
    ) -> Impact:
        taint = TaintAnalysis(fn).run(
            sources, seed_names=seed_names, seed_attrs=seed_attrs
        )
        impact = self._local_impact(fn, taint, via)
        if depth <= 0:
            return impact
        if not impact.found:
            impact = impact.merge(self._caller_impact(fn, taint, depth, via))
        if not impact.found:
            impact = impact.merge(self._callee_impact(fn, taint, depth, via))
        if not impact.found:
            impact = impact.merge(self._distributed_impact(fn, taint, via))
        return impact

    def _local_impact(self, fn: FunctionInfo, taint: TaintResult, via: str) -> Impact:
        cfg = build_cfg(fn.node)
        failures = find_failure_instructions(cfg, self.spec)
        if not failures:
            return Impact(False)
        cd = transitive_control_dependence(cfg)
        tainted_nodes = {
            node.nid
            for node in cfg.statement_nodes()
            if node.stmt is not None and taint.expr_is_tainted(node.stmt)
        }
        reasons = []
        for failure in failures:
            nid = failure.cfg_node.nid
            if nid in tainted_nodes:
                reasons.append(
                    f"{via}: {failure.failure_class.value} at "
                    f"{fn.name}:{failure.line} data-depends on access"
                )
                continue
            if cd.get(nid, set()) & tainted_nodes:
                reasons.append(
                    f"{via}: {failure.failure_class.value} at "
                    f"{fn.name}:{failure.line} control-depends on access"
                )
        return Impact(bool(reasons), reasons)

    def _caller_impact(
        self, fn: FunctionInfo, taint: TaintResult, depth: int, via: str
    ) -> Impact:
        if not taint.return_tainted:
            return Impact(False)
        result = Impact(False)
        for call_site in self.index.callers_of(fn.name):
            caller_taint_sources = [call_site.call]
            sub = self._impact_of_sources(
                call_site.caller,
                caller_taint_sources,
                depth - 1,
                via=f"{via} -> caller {call_site.caller.name}",
            )
            result = result.merge(sub)
            if result.found:
                break
        return result

    def _callee_impact(
        self, fn: FunctionInfo, taint: TaintResult, depth: int, via: str
    ) -> Impact:
        result = Impact(False)
        for call, callee_name, pos_idx, kw_names in taint.tainted_call_args:
            for callee in self.index.functions_named(callee_name):
                if callee.node is fn.node:
                    continue
                params = _parameter_names(callee.node)
                seeds = []
                # A method call (obj.m(x)) binds self implicitly, so the
                # first positional arg lands on the second parameter; a
                # plain call (m(self, x)) passes it explicitly.
                method_style = isinstance(call.func, ast.Attribute)
                offset = 1 if method_style and params[:1] == ["self"] else 0
                for i in pos_idx:
                    if i + offset < len(params):
                        seeds.append(params[i + offset])
                seeds.extend(k for k in kw_names if k in params)
                if not seeds:
                    continue
                sub = self._impact_of_sources(
                    callee,
                    sources=[],
                    depth=depth - 1,
                    via=f"{via} -> callee {callee.name}",
                    seed_names=seeds,
                )
                result = result.merge(sub)
                if result.found:
                    return result
        return result

    def _distributed_impact(
        self, fn: FunctionInfo, taint: TaintResult, via: str
    ) -> Impact:
        """Paper 4.2: follow the RPC return value to the remote caller."""
        if not taint.return_tainted:
            return Impact(False)
        result = Impact(False)
        for link in self.rpc_links:
            if link.handler_func != fn.name:
                continue
            for caller_site in link.caller_sites:
                caller_fn = self.index.function_at(caller_site.path, caller_site.line)
                if caller_fn is None:
                    continue
                rpc_calls = _rpc_calls_at_line(
                    caller_fn, caller_site.line, link.method
                )
                if not rpc_calls:
                    continue
                sub = self._impact_of_sources(
                    caller_fn,
                    rpc_calls,
                    depth=0,
                    via=f"{via} -> RPC {link.method} caller {caller_fn.name}",
                )
                result = result.merge(sub)
                if result.found:
                    return result
        return result


def _statements_at_line(fn: FunctionInfo, line: int) -> List[ast.AST]:
    return [
        node
        for node in ast.walk(fn.node)
        if isinstance(node, ast.stmt) and getattr(node, "lineno", None) == line
    ]


def _parameter_names(fn_node: ast.FunctionDef) -> List[str]:
    args = fn_node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return names


def _rpc_calls_at_line(fn: FunctionInfo, line: int, method: str) -> List[ast.Call]:
    calls = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and getattr(node, "lineno", None) == line
            and call_target_name(node) == method
        ):
            calls.append(node)
    return calls
