"""Stage-level checkpoint/resume for the analysis pipeline.

The tracing side has been crash-tolerant since the WAL (PR 4); this
module is the analysis-side twin.  After each pipeline stage completes,
its outputs are serialized into a checkpoint directory; ``dcatch run
--resume`` validates the manifest against config + trace fingerprints
and skips every completed stage, so a killed analyzer loses at most the
stage (for detection: the *shard*; for triggering: the *report*) that
was in flight.

Layout (one run per checkpoint directory)::

    <dir>/manifest.json            schema-versioned, atomically replaced
    <dir>/trace.json               stage payloads, CRC32-checked
    <dir>/hb.json
    <dir>/reach.json
    <dir>/detect-shards.jsonl      incremental: one framed line per shard
    <dir>/detect.json
    <dir>/prune.json
    <dir>/trigger-outcomes.jsonl   incremental: one framed line per report
    <dir>/trigger.json

Incremental files reuse the WAL's line framing (``R <len> <crc>
<json>``) so a SIGKILL mid-append leaves a torn tail the loader simply
drops — the same recovery story as ``repro.trace.salvage``.  Stage
payload files carry their CRC32 in the manifest; damage, stale schema
versions, and fingerprint mismatches all raise ``CheckpointError``
(exit 2 in the CLI), never a traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import CheckpointError
from repro.trace.records import TRACE_SCHEMA_VERSION
from repro.trace.store import Trace

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: Pipeline stages in execution order.  ``detect`` and ``trigger`` also
#: keep incremental shard files so a mid-stage crash only loses the
#: in-flight unit of work.
STAGES = ("trace", "hb", "reach", "detect", "prune", "trigger")

_INCREMENTAL_FILES = {
    "detect": "detect-shards.jsonl",
    "trigger": "trigger-outcomes.jsonl",
}


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def config_fingerprint(benchmark: str, config: "object") -> str:
    """Hash of every config knob that changes analysis *results*.

    Performance knobs (worker counts, observability) are deliberately
    excluded: resuming with a different worker count is safe because
    any worker count produces identical candidates."""
    model = config.model
    fields = {
        "benchmark": benchmark,
        "scope": config.scope,
        "model": model.describe(),
        "monitored_seed": config.monitored_seed,
        "interprocedural_depth": config.interprocedural_depth,
        "prune": config.prune,
        "trigger": config.trigger,
        "trigger_seeds": list(config.trigger_seeds),
        "trigger_max_wait": config.trigger_max_wait,
        "reach_backend": config.reach_backend,
        "detect_mode": getattr(config, "detect_mode", "batch"),
        "compress_mem": getattr(config, "compress_mem", True),
        "max_pairs_per_location": getattr(
            config, "max_pairs_per_location", 200_000
        ),
        # The plan's *content*, not just its presence: resuming after an
        # edited fault plan must invalidate the checkpointed trace.
        "fault_plan": (
            config.fault_plan.describe()
            if config.fault_plan is not None
            else None
        ),
        "trace_schema": TRACE_SCHEMA_VERSION,
    }
    # Sampling thins the traced record stream itself, so resuming a
    # sampled checkpoint under a different policy/seed must be refused.
    # Keys are added only when sampling is on, so fingerprints of
    # unsampled runs (and their existing checkpoints) are unchanged.
    if getattr(config, "sampling", None) is not None:
        fields["sampling"] = config.sampling
        fields["sampling_seed"] = getattr(config, "sampling_seed", 0)
    blob = json.dumps(fields, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def trace_fingerprint(trace: Trace) -> str:
    """CRC of the serialized trace — ties analysis checkpoints to the
    exact record stream they were computed from.

    Lines are sorted within each thread file: a live trace may append
    records out of ``seq`` order while a restored one is seq-sorted, and
    the fingerprint must depend on content, not append order."""
    running = 0
    for _tid, blob in sorted(trace.dump_thread_files().items()):
        for line in sorted(blob.splitlines()):
            running = zlib.crc32(line.encode(), running) & 0xFFFFFFFF
    return f"{running:08x}"


class ShardLog:
    """Append-only, CRC-framed JSONL file for one incremental stage."""

    def __init__(self, path: str) -> None:
        self.path = path
        # A SIGKILL mid-append leaves a torn partial line at the tail.
        # Truncate to the last intact framed line before appending:
        # otherwise the first resumed entry concatenates with the torn
        # fragment into one malformed line, and the *next* crash/resume
        # cycle discards every entry after it.
        _, valid_bytes = _scan_shard_file(path)
        self._fh = open(path, "ab")
        self._fh.truncate(valid_bytes)

    def append(self, entry: Dict[str, Any]) -> None:
        from repro.trace.wal import encode_record_line

        payload = json.dumps(entry, sort_keys=True).encode()
        self._fh.write(encode_record_line(payload))
        # Flush per shard: the unflushed suffix is exactly what a crash
        # loses, and a shard is the unit we promise to lose at most.
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def _scan_shard_file(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Every intact framed line plus the byte length of the valid
    prefix (just past the last intact, newline-terminated line).  A
    torn/damaged tail is dropped; torn or corrupt *interior* lines stop
    the scan (everything after them might be misframed)."""
    entries: List[Dict[str, Any]] = []
    valid_bytes = 0
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return entries, 0
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            break  # unterminated tail: the append was cut mid-line
        line = data[offset:newline]
        if line:
            parts = line.split(b" ", 3)
            if len(parts) != 4 or parts[0] != b"R":
                break
            try:
                length = int(parts[1], 16)
                crc = int(parts[2], 16)
            except ValueError:
                break
            payload = parts[3]
            if len(payload) != length or _crc(payload) != crc:
                break
            try:
                entry = json.loads(payload.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                break
            entries.append(entry)
        offset = newline + 1
        valid_bytes = offset
    return entries, valid_bytes


def _read_shard_lines(path: str) -> List[Dict[str, Any]]:
    return _scan_shard_file(path)[0]


@dataclass
class CheckpointStore:
    """One run's checkpoint directory plus its manifest."""

    directory: str
    benchmark: str
    config_fp: str
    resume: bool = False
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: Stages loaded from disk instead of recomputed, in order.
    stages_skipped: List[str] = field(default_factory=list)
    _shard_logs: Dict[str, ShardLog] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._manifest_path = os.path.join(self.directory, "manifest.json")
        if self.resume:
            self.manifest = self._load_manifest()
            self._validate_manifest()
        else:
            os.makedirs(self.directory, exist_ok=True)
            self._clear_previous_run()
            self.manifest = {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "benchmark": self.benchmark,
                "config_fingerprint": self.config_fp,
                "trace_fingerprint": None,
                "stages": {},
            }
            self._write_manifest()

    def _clear_previous_run(self) -> None:
        """Delete stage payloads and shard files left by an earlier run.

        A fresh (non-resume) run owns the directory.  ShardLog appends
        and ``load_shards`` reads whatever file is present, so without
        this sweep a reused directory — exactly what "re-run without
        --resume to rebuild" advises — would silently merge shard
        results computed from a different trace or config into this
        run's candidates."""
        names = [f"{stage}.json" for stage in STAGES]
        names += [f"{name}.tmp" for name in names]
        names += list(_INCREMENTAL_FILES.values())
        for name in names:
            try:
                os.remove(os.path.join(self.directory, name))
            except FileNotFoundError:
                pass

    # -- manifest -------------------------------------------------------------

    def _load_manifest(self) -> Dict[str, Any]:
        if not os.path.isdir(self.directory):
            raise CheckpointError(
                f"{self.directory} is not a checkpoint directory "
                f"(run with --checkpoint-dir first, then --resume)"
            )
        try:
            with open(self._manifest_path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise CheckpointError(
                f"no checkpoint manifest in {self.directory} "
                f"(nothing to resume)"
            ) from None
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"damaged checkpoint manifest {self._manifest_path}: {exc.msg}"
            ) from None

    def _validate_manifest(self) -> None:
        manifest = self.manifest
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self._manifest_path} is not a checkpoint manifest "
                f"(format {manifest.get('format')!r})"
            )
        version = manifest.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"stale checkpoint schema version {version!r} "
                f"(this reader understands version {CHECKPOINT_VERSION}); "
                f"re-run without --resume to rebuild"
            )
        if manifest.get("benchmark") != self.benchmark:
            raise CheckpointError(
                f"checkpoint is for benchmark {manifest.get('benchmark')!r}, "
                f"not {self.benchmark!r}"
            )
        if manifest.get("config_fingerprint") != self.config_fp:
            raise CheckpointError(
                "checkpoint config fingerprint mismatch: the checkpoint "
                f"was produced with different analysis settings "
                f"({manifest.get('config_fingerprint')} != {self.config_fp}); "
                f"re-run without --resume to rebuild"
            )

    def _write_manifest(self) -> None:
        tmp = self._manifest_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)

    # -- stage lifecycle ------------------------------------------------------

    def stage_completed(self, name: str) -> bool:
        entry = self.manifest.get("stages", {}).get(name)
        return bool(entry and entry.get("completed"))

    def mark_skipped(self, name: str) -> None:
        self.stages_skipped.append(name)
        obs.counter(
            "checkpoint_stages_skipped_total",
            "completed stages skipped by --resume",
        ).labels(stage=name).inc()

    def seal_stage(self, name: str, payload: Dict[str, Any]) -> None:
        """Write one stage's payload and mark it completed (atomic:
        payload file first, then manifest replace)."""
        with obs.span("checkpoint.seal", stage=name):
            blob = json.dumps(payload, sort_keys=True).encode()
            filename = f"{name}.json"
            path = os.path.join(self.directory, filename)
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            entry = self.manifest["stages"].setdefault(name, {})
            entry.update(
                {"file": filename, "crc": f"{_crc(blob):08x}", "completed": True}
            )
            self._write_manifest()
        obs.counter(
            "checkpoint_stages_sealed_total", "pipeline stages checkpointed"
        ).labels(stage=name).inc()
        obs.counter(
            "checkpoint_bytes_written_total", "bytes of sealed stage payloads"
        ).inc(len(blob))

    def load_stage(self, name: str) -> Dict[str, Any]:
        entry = self.manifest.get("stages", {}).get(name)
        if not entry or not entry.get("completed"):
            raise CheckpointError(f"stage {name} is not completed in {self.directory}")
        path = os.path.join(self.directory, entry["file"])
        with obs.span("checkpoint.load", stage=name):
            try:
                with open(path, "rb") as fh:
                    blob = fh.read()
            except FileNotFoundError:
                raise CheckpointError(
                    f"checkpoint stage file missing: {path}"
                ) from None
            if f"{_crc(blob):08x}" != entry.get("crc"):
                raise CheckpointError(
                    f"checkpoint stage {name} failed its CRC check "
                    f"({path} is damaged); re-run without --resume"
                )
            return json.loads(blob.decode())

    # -- trace fingerprint ----------------------------------------------------

    def set_trace_fingerprint(self, fingerprint: str) -> None:
        self.manifest["trace_fingerprint"] = fingerprint
        self._write_manifest()

    def check_trace_fingerprint(self, fingerprint: str) -> None:
        stored = self.manifest.get("trace_fingerprint")
        if stored is not None and stored != fingerprint:
            raise CheckpointError(
                f"checkpoint trace fingerprint mismatch "
                f"({stored} != {fingerprint}): the trace this checkpoint "
                f"was computed from has changed; re-run without --resume"
            )

    # -- incremental shards ---------------------------------------------------

    def shard_log(self, stage: str) -> ShardLog:
        """The append-only shard file for an incremental stage; noted in
        the manifest (``completed: false``) the first time it opens."""
        log = self._shard_logs.get(stage)
        if log is None:
            filename = _INCREMENTAL_FILES[stage]
            entry = self.manifest["stages"].setdefault(stage, {})
            if entry.get("shards_file") != filename:
                entry.update({"shards_file": filename, "completed": False})
                self._write_manifest()
            log = ShardLog(os.path.join(self.directory, filename))
            self._shard_logs[stage] = log
        return log

    def load_shards(self, stage: str) -> List[Dict[str, Any]]:
        """Intact shard entries written before a crash (torn tail dropped)."""
        entries = _read_shard_lines(
            os.path.join(self.directory, _INCREMENTAL_FILES[stage])
        )
        if entries:
            obs.counter(
                "checkpoint_shards_resumed_total",
                "per-shard results recovered from a checkpoint",
            ).labels(stage=stage).inc(len(entries))
        return entries

    def seal(self) -> None:
        """Flush and close every open incremental file (called on clean
        stage completion *and* on interrupt — the manifest is already
        consistent because it is rewritten atomically at every step)."""
        for log in self._shard_logs.values():
            log.close()
        self._shard_logs.clear()


# -- stage payload builders / restorers ---------------------------------------
#
# These keep the (de)serialization of pipeline artifacts next to the
# store so repro.pipeline stays readable.  Everything round-trips
# through plain JSON; OpEvents reuse the trace record schema.


def run_result_to_dict(result: "object") -> Dict[str, Any]:
    return {
        "name": result.name,
        "seed": result.seed,
        "steps": result.steps,
        "clock": result.clock,
        "completed": result.completed,
        "wall_seconds": result.wall_seconds,
        "ops": result.ops,
        "failures": [
            {
                "kind": event.kind.value,
                "node": event.node,
                "thread": event.thread,
                "message": event.message,
                "step": event.step,
            }
            for event in result.failures.events
        ],
    }


def run_result_from_dict(data: Dict[str, Any]) -> "object":
    from repro.runtime.cluster import RunResult
    from repro.runtime.failures import FailureEvent, FailureKind, FailureLog

    failures = FailureLog()
    for event in data.get("failures", []):
        failures.record(
            FailureEvent(
                kind=FailureKind(event["kind"]),
                node=event["node"],
                thread=event["thread"],
                message=event["message"],
                step=event["step"],
            )
        )
    return RunResult(
        name=data["name"],
        seed=data["seed"],
        steps=data["steps"],
        clock=data["clock"],
        completed=data["completed"],
        failures=failures,
        wall_seconds=data["wall_seconds"],
        ops=data["ops"],
    )


def trace_stage_payload(
    trace: Trace, base_result: "object", monitored_result: "object"
) -> Dict[str, Any]:
    return {
        "name": trace.name,
        "partial": bool(getattr(trace, "partial", False)),
        "sampled": bool(getattr(trace, "sampled", False)),
        "sampling_rate": getattr(trace, "sampling_rate", None),
        "sampled_dropped": dict(getattr(trace, "sampled_dropped", {}) or {}),
        "dropped_mem": int(getattr(trace, "dropped_mem", 0)),
        "skipped_unbound": int(getattr(trace, "skipped_unbound", 0)),
        "skipped_untraced": int(getattr(trace, "skipped_untraced", 0)),
        "thread_files": {
            str(tid): blob for tid, blob in trace.dump_thread_files().items()
        },
        "base_result": run_result_to_dict(base_result),
        "monitored_result": run_result_to_dict(monitored_result),
    }


def restore_trace_stage(
    payload: Dict[str, Any],
) -> Tuple[Trace, "object", "object"]:
    files = {
        int(tid): blob for tid, blob in payload["thread_files"].items()
    }
    trace = Trace.from_thread_files(files, name=payload.get("name", "trace"))
    trace.partial = bool(payload.get("partial", False))
    trace.sampled = bool(payload.get("sampled", False))
    trace.sampling_rate = payload.get("sampling_rate")
    trace.sampled_dropped = dict(payload.get("sampled_dropped", {}) or {})
    trace.dropped_mem = int(payload.get("dropped_mem", 0))
    trace.skipped_unbound = int(payload.get("skipped_unbound", 0))
    trace.skipped_untraced = int(payload.get("skipped_untraced", 0))
    return (
        trace,
        run_result_from_dict(payload["base_result"]),
        run_result_from_dict(payload["monitored_result"]),
    )


def detection_payload(detection: "object") -> Dict[str, Any]:
    return {
        "candidates": [
            [c.first.seq, c.second.seq] for c in detection.candidates
        ],
        "pairs_examined": detection.pairs_examined,
        "truncated_locations": [
            list(loc) for loc in detection.truncated_locations
        ],
        "workers": detection.workers,
        "stopped_early": detection.stopped_early,
        "auto_decision": detection.auto_decision,
        "confidence": detection.confidence,
        "analysis_seconds": detection.analysis_seconds,
        "sp_pairs": (
            sorted([a, b] for a, b in detection.sp_pairs)
            if detection.sp_pairs is not None
            else None
        ),
    }


def restore_detection(
    payload: Dict[str, Any], trace: Trace, graph: "object"
) -> "object":
    from repro.detect.races import Candidate, DetectionResult

    by_seq = {record.seq: record for record in trace.records}
    try:
        candidates = [
            Candidate(by_seq[first], by_seq[second])
            for first, second in payload["candidates"]
        ]
    except KeyError as exc:
        raise CheckpointError(
            f"detect checkpoint references seq {exc.args[0]} missing from "
            f"the trace; re-run without --resume"
        ) from None
    return DetectionResult(
        trace=trace,
        graph=graph,
        candidates=candidates,
        analysis_seconds=payload.get("analysis_seconds", 0.0),
        pairs_examined=payload.get("pairs_examined", 0),
        truncated_locations=[
            tuple(loc) for loc in payload.get("truncated_locations", [])
        ],
        workers=payload.get("workers", 1),
        stopped_early=payload.get("stopped_early", False),
        auto_decision=payload.get("auto_decision"),
        confidence=payload.get("confidence", "full"),
        sp_pairs=(
            {(a, b) for a, b in payload["sp_pairs"]}
            if payload.get("sp_pairs") is not None
            else None
        ),
    )


def prune_payload(prune_result: "object") -> Dict[str, Any]:
    return {
        "decisions": [
            {
                "report_id": decision.report.report_id,
                "keep": decision.keep,
                "reasons": list(decision.reasons),
            }
            for decision in prune_result.decisions
        ],
        "seconds": prune_result.seconds,
    }


def restore_prune(payload: Dict[str, Any], reports_pre: "object") -> "object":
    from repro.analysis.pruner import PruneDecision, PruneResult, rank_reports
    from repro.detect.report import ReportSet

    by_id = {report.report_id: report for report in reports_pre}
    decisions = []
    for entry in payload.get("decisions", []):
        report = by_id.get(entry["report_id"])
        if report is None:
            raise CheckpointError(
                f"prune checkpoint references report #{entry['report_id']} "
                f"missing from detection; re-run without --resume"
            )
        decisions.append(
            PruneDecision(
                report=report,
                keep=entry["keep"],
                reasons=list(entry.get("reasons", [])),
            )
        )
    return PruneResult(
        # Same trigger-queue ranking as a fresh StaticPruner.apply, so a
        # resumed pipeline's reports stay byte-identical to a clean run.
        kept=ReportSet(rank_reports(d.report for d in decisions if d.keep)),
        pruned=ReportSet([d.report for d in decisions if not d.keep]),
        decisions=decisions,
        seconds=payload.get("seconds", 0.0),
    )


def outcome_to_dict(outcome: "object") -> Dict[str, Any]:
    """Serialize one ``TriggerOutcome`` (per-report checkpoint unit)."""
    return {
        "report_id": outcome.report.report_id,
        "verdict": outcome.verdict.value,
        "detail": outcome.detail,
        "plan": outcome.plan.describe() if outcome.plan is not None else "",
        "runs": [
            {
                "order": list(run.order),
                "seed": run.seed,
                "enforced": run.enforced,
                "co_occurred": run.co_occurred,
                "error": run.error,
                "result": run_result_to_dict(run.result),
            }
            for run in outcome.runs
        ],
    }


@dataclass
class RestoredGatePlan:
    """A checkpointed plan: only its description survives (gates are
    re-derivable from the trace, but a restored outcome never re-runs)."""

    description: str

    def describe(self) -> str:
        return self.description


def outcome_from_dict(data: Dict[str, Any], report: "object") -> "object":
    from repro.detect.report import Verdict
    from repro.trigger.explorer import TriggerOutcome, TriggerRun

    outcome = TriggerOutcome(
        report=report,
        plan=RestoredGatePlan(data.get("plan", "")),
        verdict=Verdict(data["verdict"]),
        detail=data.get("detail", ""),
    )
    for run in data.get("runs", []):
        outcome.runs.append(
            TriggerRun(
                order=tuple(run["order"]),
                seed=run["seed"],
                enforced=run["enforced"],
                co_occurred=run["co_occurred"],
                result=run_result_from_dict(run["result"]),
                error=run.get("error"),
            )
        )
    report.verdict = outcome.verdict
    report.verdict_detail = outcome.detail
    if outcome.verdict in (Verdict.HARMFUL, Verdict.BENIGN):
        # Restored verdicts carry the same evidence live ones do: both
        # orders were actually enforced in a re-execution.
        report.soundness = "trigger-confirmed"
    return outcome
