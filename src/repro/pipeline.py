"""The end-to-end DCatch pipeline (paper Section 1.3).

One ``DCatch(workload).run()`` performs the paper's four stages:

1. **Run-time tracing** — a monitored (correct) execution of the
   workload with the selective-scope tracer;
2. **Trace analysis** — HB-graph construction + conflicting-concurrent
   pair detection (including Rule-Mpull loop analysis);
3. **Static pruning** — impact estimation over the mini system's source;
4. **Triggering** — controlled re-executions that classify each report
   as harmful / benign / serial.

A ``PipelineResult`` carries everything the evaluation tables need:
counts at each stage (Tables 4, 5), timings and trace sizes (Table 6),
record breakdowns (Table 7).
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro import obs
from repro.analysis.astutil import SourceIndex
from repro.analysis.governor import (
    TRUNCATED_MAX_PAIRS,
    ResourceGovernor,
    maybe_stall,
)
from repro.analysis.pruner import PruneResult, StaticPruner
from repro.detect.races import DetectionResult, detect_races
from repro.detect.report import ReportSet, Verdict
from repro.errors import CheckpointError, PipelineInterrupted, TraceAnalysisOOM
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.faults import FaultPlan
from repro.systems.base import Workload
from repro.trace.scope import FullScope, TracingScope, selective_scope_for
from repro.trace.store import Trace
from repro.trace.tracer import Tracer
from repro.trigger.explorer import (
    TriggerModule,
    TriggerOutcome,
    prioritize_reports,
)
from repro.trigger.placement import PlacementAnalyzer


@dataclass
class PipelineConfig:
    """Knobs for the pipeline; defaults match the paper's DCatch."""

    scope: str = "selective"  # or "full" (Table 8's alternative design)
    model: HBModel = FULL_MODEL
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    #: Reachability engine for trace analysis: "bitset" (the paper's
    #: bit matrix) or "chain" (segment-chain compression, lower memory).
    reach_backend: str = "bitset"
    #: Compress memory accesses to segment positions in the HB backbone
    #: (the paper's design).  False keeps every record on the backbone —
    #: Table 8's blow-up — which is where the degradation ladder's
    #: bitset→chain rung earns its keep.
    compress_mem: bool = True
    #: Worker processes for candidate enumeration: 1 = serial (the
    #: default), 0 = one per CPU, N = exactly N, ``"auto"`` = serial on
    #: small traces where pool overhead dominates, scaled by record
    #: count (capped at the CPU count) on large ones.  Any value returns
    #: the same candidates.
    detect_workers: "Union[int, str]" = 1
    #: ``"batch"`` builds the whole-trace HB graph + reachability
    #: closure before detection (the paper's offline algorithm);
    #: ``"streaming"`` runs the single-pass bounded-memory detector
    #: (``repro.detect.streaming``) — no graph, no closure, memory
    #: tracks concurrency width instead of trace length;
    #: ``"sync-preserving"`` runs the batch path and then replays the
    #: candidates against the sync-preserving order
    #: (``repro.detect.syncpres``) — pairs with a sound reordering
    #: witness are tiered ``sp-sound`` and jump the prune/trigger queue.
    detect_mode: str = "batch"
    #: Streaming-mode compaction cadence (records between HB-frontier
    #: eviction passes).  Memory/CPU knob only: the candidate set is
    #: identical for every window size.
    stream_window: int = 8192
    #: Cap on eligible pairs enumerated per memory location (the
    #: governor's ``truncate_pairs`` rung tightens this under pressure).
    max_pairs_per_location: int = 200_000
    interprocedural_depth: int = 1
    prune: bool = True
    trigger: bool = True
    trigger_seeds: tuple = (0, 1)
    #: Watchdog for order enforcement: a gated party held longer than
    #: this many logical clock ticks is released and the run counts as
    #: not enforced.  None (default) = idle-release only.
    trigger_max_wait: Optional[int] = None
    monitored_seed: Optional[int] = None  # None = the workload's default
    #: Optional fault-injection schedule installed on the base and the
    #: monitored run (see ``repro.runtime.faults``).  Trigger re-runs stay
    #: fault-free: they must isolate the racing pair, not the faults.
    fault_plan: Optional[FaultPlan] = None
    #: Durable tracing: when set, the monitored run's tracer also
    #: appends every record to a write-ahead log under
    #: ``<trace_dir>/<bug_id>/seed-<seed>/`` (see ``repro.trace.wal``),
    #: so a node crashed mid-run leaves a salvageable prefix on disk.
    #: None (default) keeps tracing purely in memory — zero overhead.
    trace_dir: Optional[str] = None
    #: Memory-access sampling policy for the monitored run
    #: (``repro.trace.sampling`` spec: a bare rate like ``"0.1"`` for
    #: the budgeted-rate composite, or ``"budget:N"``/``"rate:R"``/
    #: ``"epoch:N:M"``/``"reservoir:K"``, composable with ``+``).  HB
    #: and lock records are always kept; downstream results carry
    #: ``confidence: "sampled"``.  None (default) traces every in-scope
    #: access, byte-identical to the pre-sampling tracer.
    sampling: Optional[str] = None
    #: Seed for the sampling policy's deterministic hashing — same
    #: ``(sampling, sampling_seed)`` means the same kept set, and both
    #: join the checkpoint ``config_fingerprint`` so resume refuses a
    #: cross-policy mix.
    sampling_seed: int = 0
    #: Collect metrics and spans for this run (``repro.obs``).  When off,
    #: every instrumentation point hits the no-op registry/tracer and the
    #: result carries an empty ``metrics`` snapshot and no profile.
    observe: bool = True
    #: Checkpoint/resume: when set, every completed stage is serialized
    #: under this directory (manifest + CRC-checked payloads; detection
    #: and triggering also keep incremental shard files), and SIGINT/
    #: SIGTERM seal the checkpoint before exiting.
    checkpoint_dir: Optional[str] = None
    #: Resume from ``checkpoint_dir``: validate the manifest against
    #: this config and the trace, skip completed stages, and continue
    #: from the first incomplete shard.
    resume: bool = False
    #: Wall-clock deadline per stage (seconds).  Cooperative: detection
    #: checks it between location shards, triggering between reports; an
    #: overrunning stage stops early and is marked degraded.
    max_stage_seconds: Optional[float] = None
    #: Overall memory budget (MB) enforced by the ``ResourceGovernor``:
    #: tightens the reachability byte budget and, when process RSS
    #: exceeds it, engages the degradation ladder
    #: (bitset→chain, parallel→serial, pair truncation).
    memory_budget_mb: Optional[int] = None


@dataclass
class PipelineResult:
    """Everything one benchmark run of DCatch produced."""

    workload: Workload
    config: PipelineConfig
    base_result: RunResult
    monitored_result: RunResult
    trace: Trace
    detection: Optional[DetectionResult]
    reports_pre_prune: Optional[ReportSet]
    prune_result: Optional[PruneResult]
    reports: Optional[ReportSet]
    outcomes: List[TriggerOutcome] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    oom: Optional[TraceAnalysisOOM] = None
    #: Degrade-don't-die bookkeeping: count of failures per stage name and
    #: the error strings.  A stage failure leaves earlier stages' results
    #: intact — the pipeline returns what it has instead of raising.
    stage_failures: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: Per-stage outcome: ``"ok"``, ``"skipped"`` (restored from a
    #: checkpoint), ``"degraded"`` (completed under the ladder or cut
    #: short by a deadline), or ``"failed"``.
    stage_status: Dict[str, str] = field(default_factory=dict)
    #: Degradation-ladder rungs engaged this run, in order (see
    #: ``repro.analysis.governor.DEGRADATION_LADDER``).
    degradation: List[str] = field(default_factory=list)
    #: Structured ladder record — one ``DegradationEvent`` (rung, stage,
    #: reason) per entry of ``degradation``; what the CLI summary prints
    #: so operators see *why* a result is degraded.
    degradation_events: List["object"] = field(default_factory=list)
    #: Stages restored from the checkpoint instead of recomputed.
    stages_skipped: List[str] = field(default_factory=list)
    #: Where this run checkpointed, when it did.
    checkpoint_dir: Optional[str] = None
    #: Metrics snapshot of the run (``MetricsRegistry.snapshot()``) —
    #: empty when ``config.observe`` is false.  Benchmarks and fault
    #: campaigns assert on this instead of re-deriving counts.
    metrics: Dict[str, Dict] = field(default_factory=dict)
    #: The run's ``SpanTracer`` (None when observability is off); feed it
    #: to ``repro.obs.render_span_table`` / ``spans_to_chrome``.
    profile: Optional[obs.SpanTracer] = None

    @property
    def degraded(self) -> bool:
        """True when some stage failed, was cut short, or completed only
        by shedding work along the degradation ladder."""
        return (
            bool(self.stage_failures)
            or self.oom is not None
            or bool(self.degradation)
            or "degraded" in self.stage_status.values()
        )

    # -- Table 4-style counts ------------------------------------------------

    def verdict_counts(self, by: str = "static") -> Dict[str, int]:
        """Counts of harmful/benign/serial reports (static or callstack)."""
        if self.reports is None:
            return {}
        counter = {}
        for verdict in (Verdict.HARMFUL, Verdict.BENIGN, Verdict.SERIAL):
            if by == "static":
                counter[verdict.value] = self.reports.static_count(verdict)
            else:
                counter[verdict.value] = self.reports.callstack_count(verdict)
        return counter

    def summary(self) -> str:
        lines = [f"== DCatch on {self.workload.info.bug_id} =="]
        lines.append(f"monitored run: {self.monitored_result.summary()}")
        if self.oom is not None:
            lines.append(f"trace analysis: OUT OF MEMORY ({self.oom})")
            return "\n".join(lines)
        lines.append(
            f"trace: {len(self.trace)} records, "
            f"{self.trace.size_bytes() / 1024:.1f} KB"
        )
        if self.detection is not None:
            tag = (
                ""
                if self.detection.confidence == "full"
                else f" (confidence: {self.detection.confidence})"
            )
            lines.append(
                f"trace analysis: {len(self.detection.candidates)} dynamic "
                f"pairs, {self.detection.static_count()} static, "
                f"{self.detection.callstack_count()} callstack{tag}"
            )
            if self.detection.sp_pairs is not None:
                hb_only = len(self.detection.candidates) - len(
                    self.detection.sp_pairs
                )
                lines.append(
                    f"sync-preserving: {len(self.detection.sp_pairs)} of "
                    f"{len(self.detection.candidates)} dynamic pairs "
                    f"sp-sound ({hb_only} hb-only)"
                )
        if self.prune_result is not None:
            lines.append(f"static pruning: {self.prune_result.summary()}")
        if self.reports is not None:
            lines.append(f"DCatch reports: {self.reports.summary()}")
            tiers = self.reports.soundness_counts()
            if set(tiers) - {"hb-predicted"}:
                from repro.detect.report import SOUNDNESS_TIERS

                parts = ", ".join(
                    f"{tier}={tiers[tier]}"
                    for tier in reversed(SOUNDNESS_TIERS)
                    if tier in tiers
                )
                lines.append(f"soundness: {parts}")
        if self.stage_failures:
            parts = ", ".join(
                f"{stage}: {count}" for stage, count in sorted(self.stage_failures.items())
            )
            lines.append(f"partial failures: {parts}")
        if self.degradation_events:
            lines.append(
                "degraded: "
                + " -> ".join(e.describe() for e in self.degradation_events)
            )
        elif self.degradation:
            lines.append(f"degraded: {' -> '.join(self.degradation)}")
        if self.stages_skipped:
            lines.append(
                f"resumed: skipped {', '.join(self.stages_skipped)} "
                f"(checkpoint {self.checkpoint_dir})"
            )
        for key, value in sorted(self.timings.items()):
            lines.append(f"  {key}: {value:.3f}s")
        return "\n".join(lines)


class DCatch:
    """The detector, wired for one workload."""

    #: Valid ``PipelineConfig.detect_mode`` values.
    DETECT_MODES = ("batch", "streaming", "sync-preserving")

    def __init__(
        self, workload: Workload, config: Optional[PipelineConfig] = None
    ) -> None:
        self.workload = workload
        self.config = config or PipelineConfig()
        if self.config.detect_mode not in self.DETECT_MODES:
            raise ValueError(
                f"unknown detect_mode {self.config.detect_mode!r}; "
                f"expected one of {self.DETECT_MODES}"
            )
        if self.config.sampling is not None:
            from repro.trace.sampling import parse_policy

            # Fail fast on a bad spec, before any stage has run.
            parse_policy(self.config.sampling, self.config.sampling_seed)

    def _make_sampler(self):
        from repro.trace.sampling import build_sampler

        return build_sampler(self.config.sampling, self.config.sampling_seed)

    # -- stages ----------------------------------------------------------------

    def _make_scope(self) -> TracingScope:
        if self.config.scope == "full":
            return FullScope()
        return selective_scope_for(self.workload.modules())

    def _build_cluster(self) -> Cluster:
        cluster = self.workload.cluster(self.config.monitored_seed)
        if self.config.fault_plan is not None:
            self.config.fault_plan.install(cluster)
        return cluster

    def run_base(self) -> RunResult:
        """The untraced baseline run (Table 6's 'Base' column)."""
        return self._build_cluster().run()

    def run_traced(self) -> tuple:
        cluster = self._build_cluster()
        wal = None
        if self.config.trace_dir:
            import os

            from repro.trace.wal import WalSink

            # Per-benchmark, per-seed subdirectory so campaign runs over
            # many seeds never clobber each other's logs.
            wal = WalSink(
                os.path.join(
                    self.config.trace_dir,
                    self.workload.info.bug_id,
                    f"seed-{cluster.seed}",
                )
            )
        tracer = Tracer(
            scope=self._make_scope(),
            name=self.workload.info.bug_id,
            wal=wal,
            sampler=self._make_sampler(),
        )
        tracer.bind(cluster)
        try:
            result = cluster.run()
        finally:
            # Seal the surviving WAL streams even when the run blows up —
            # a salvageable log is the whole point of the durable path.
            tracer.close()
        return result, tracer.trace

    def run(self) -> PipelineResult:
        """Run all stages under this run's observability context.

        When ``config.observe`` is set (the default) a fresh registry and
        span tracer are activated for the duration of the run — unless
        the caller already activated ones (e.g. a fault campaign
        aggregating across runs), which are then reused.  The snapshot
        lands on ``PipelineResult.metrics`` either way.
        """
        config = self.config
        if not config.observe:
            registry: obs.MetricsRegistry = obs.NULL_REGISTRY
            tracer: obs.SpanTracer = obs.NULL_TRACER
        else:
            registry = (
                obs.get_registry()
                if obs.get_registry().enabled
                else obs.MetricsRegistry(name=self.workload.info.bug_id)
            )
            tracer = (
                obs.get_tracer()
                if obs.get_tracer().enabled
                else obs.SpanTracer(name=self.workload.info.bug_id)
            )
        with obs.use_registry(registry), obs.use_tracer(tracer):
            result = self._run_stages()
        result.metrics = registry.snapshot()
        result.profile = tracer if config.observe else None
        return result

    def _run_stages(self) -> PipelineResult:
        """Set up governance, checkpointing, and signal handling, then
        run the stages.  SIGINT/SIGTERM (installed only when a
        checkpoint directory is configured — otherwise there is nothing
        to seal) raise ``PipelineInterrupted`` at the next bytecode
        boundary; the checkpoint's incremental files are flushed
        per-shard and its manifest is replaced atomically, so whatever
        the signal lands on, the directory stays resumable."""
        config = self.config
        governor = ResourceGovernor(
            max_stage_seconds=config.max_stage_seconds,
            memory_budget_mb=config.memory_budget_mb,
        )
        store = None
        if config.resume and not config.checkpoint_dir:
            raise CheckpointError(
                "resume requires a checkpoint directory (--checkpoint-dir)"
            )
        if config.checkpoint_dir:
            from repro.analysis import checkpoint as ckpt

            store = ckpt.CheckpointStore(
                directory=config.checkpoint_dir,
                benchmark=self.workload.info.bug_id,
                config_fp=ckpt.config_fingerprint(
                    self.workload.info.bug_id, config
                ),
                resume=config.resume,
            )

        previous_handlers: Dict[int, object] = {}
        if (
            store is not None
            and threading.current_thread() is threading.main_thread()
        ):

            def _on_signal(signum: int, _frame: object) -> None:
                raise PipelineInterrupted(
                    f"interrupted by {signal.Signals(signum).name}",
                    checkpoint_dir=store.directory,
                )

            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(
                        signum, _on_signal
                    )
                except (ValueError, OSError):  # pragma: no cover
                    pass

        try:
            return self._run_stages_governed(governor, store)
        except PipelineInterrupted:
            obs.counter(
                "pipeline_interrupted_total",
                "pipeline runs stopped by SIGINT/SIGTERM",
            ).inc()
            raise
        finally:
            if store is not None:
                store.seal()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)

    def _run_streaming_analysis(
        self,
        config: PipelineConfig,
        trace: Trace,
        store: "object",
        restore,
        budget,
        stage_status: Dict[str, str],
        timings: Dict[str, float],
        governor: ResourceGovernor,
    ) -> DetectionResult:
        """Streaming-mode analysis: skip the whole-trace HB graph and
        reachability closure entirely; one bounded-memory pass over the
        records (``repro.detect.streaming``).  The detect stage seals
        into the same checkpoint slot as batch mode, so ``--resume``
        restores it identically; ``detection.graph`` is None and
        downstream stages degrade gracefully (placement falls back to
        non-graph gating)."""
        from repro.analysis import checkpoint as ckpt
        from repro.detect.streaming import detect_races_streaming

        if store is not None and store.stage_completed("detect"):
            payload = restore("detect")
            detection = ckpt.restore_detection(payload, trace, None)
            timings["analysis_seconds"] = payload.get("analysis_seconds", 0.0)
            return detection
        maybe_stall("stream_detect")
        stream = detect_races_streaming(
            records=trace.records,
            model=config.model,
            window=config.stream_window,
            expected_streams=trace.per_thread.keys(),
            memory_budget_mb=config.memory_budget_mb,
            should_stop=budget.exceeded,
        )
        detection = stream.to_detection(trace)
        if trace.partial and detection.confidence == "full":
            detection.confidence = "partial"
        if getattr(trace, "sampled", False):
            detection.confidence = "sampled"
        if store is not None and not detection.stopped_early:
            store.seal_stage("detect", ckpt.detection_payload(detection))
        stage_status["detect"] = (
            "degraded" if detection.stopped_early else "ok"
        )
        return detection

    def _run_stages_governed(
        self, governor: ResourceGovernor, store: "object"
    ) -> PipelineResult:
        config = self.config
        timings: Dict[str, float] = {}
        stage_status: Dict[str, str] = {}
        obs.counter("pipeline_runs_total", "DCatch pipeline executions").inc()

        if store is not None:
            from repro.analysis import checkpoint as ckpt

        def restore(stage: str):
            """Load a completed stage's payload and account the skip."""
            payload = store.load_stage(stage)
            store.mark_skipped(stage)
            stage_status[stage] = "skipped"
            return payload

        # -- run-time tracing (base + monitored) ------------------------------
        if store is not None and store.stage_completed("trace"):
            payload = restore("trace")
            trace, base_result, monitored_result = ckpt.restore_trace_stage(
                payload
            )
            store.check_trace_fingerprint(ckpt.trace_fingerprint(trace))
            timings.update(payload.get("timings", {}))
        else:
            with governor.stage("trace"):
                started = time.perf_counter()
                with obs.span(
                    "pipeline.base", workload=self.workload.info.bug_id
                ):
                    base_result = self.run_base()
                timings["base_seconds"] = time.perf_counter() - started

                started = time.perf_counter()
                with obs.span("pipeline.tracing", scope=config.scope):
                    monitored_result, trace = self.run_traced()
                    if obs.enabled():
                        from repro.trace.stats import (
                            compute_stats,
                            publish_stats,
                        )

                        publish_stats(compute_stats(trace))
                timings["tracing_seconds"] = time.perf_counter() - started
            if store is not None:
                payload = ckpt.trace_stage_payload(
                    trace, base_result, monitored_result
                )
                payload["timings"] = {
                    key: timings[key]
                    for key in ("base_seconds", "tracing_seconds")
                }
                store.seal_stage("trace", payload)
                store.set_trace_fingerprint(ckpt.trace_fingerprint(trace))
            stage_status["trace"] = "ok"

        detection = None
        reports_pre = None
        prune_result = None
        reports = None
        oom = None
        outcomes: List[TriggerOutcome] = []
        stage_failures: Dict[str, int] = {}
        errors: List[str] = []

        def stage_failed(stage: str, exc: Exception) -> None:
            stage_failures[stage] = stage_failures.get(stage, 0) + 1
            stage_status[stage] = "failed"
            errors.append(f"{stage}: {type(exc).__name__}: {exc}")
            obs.counter(
                "pipeline_stage_failures_total", "degraded pipeline stages"
            ).labels(stage=stage).inc()

        # -- trace analysis: HB graph, reachability, detection ----------------
        # The governor may tighten the reachability byte budget, and the
        # degradation ladder responds to OOM/RSS pressure one rung at a
        # time instead of giving up on the first failed allocation.
        reach_budget = governor.reach_budget(config.memory_budget)
        try:
            started = time.perf_counter()
            with obs.span("pipeline.analysis"), governor.stage(
                "analysis"
            ) as budget:
                if config.detect_mode == "streaming":
                    detection = self._run_streaming_analysis(
                        config, trace, store, restore, budget,
                        stage_status, timings, governor
                    )
                else:
                    if store is not None and store.stage_completed("hb"):
                        graph = HBGraph.from_snapshot(
                            trace,
                            restore("hb"),
                            model=config.model,
                            memory_budget=reach_budget,
                            reach_backend=config.reach_backend,
                        )
                    else:
                        maybe_stall("hb_build")
                        graph = HBGraph(
                            trace,
                            model=config.model,
                            memory_budget=reach_budget,
                            compress_mem=config.compress_mem,
                            reach_backend=config.reach_backend,
                        )
                        if store is not None:
                            store.seal_stage("hb", graph.to_snapshot())
                        stage_status["hb"] = "ok"

                    if store is not None and store.stage_completed("reach"):
                        graph.restore_reach(restore("reach"))
                    else:
                        # Ladder rung 1: a bitset OOM retries with the
                        # chain-compressed backend before giving up.
                        while True:
                            try:
                                graph.reach_stats()
                                break
                            except TraceAnalysisOOM as exc:
                                if graph.reach_backend == "bitset":
                                    governor.degrade(
                                        "reach_chain", "reach", str(exc)
                                    )
                                    graph.reach_backend = "chain"
                                    graph._reach = None
                                    continue
                                governor.degrade("abandoned", "reach", str(exc))
                                raise
                        if store is not None:
                            store.seal_stage("reach", graph.reach_snapshot())
                        stage_status["reach"] = (
                            "degraded"
                            if "reach_chain" in governor.degradations
                            else "ok"
                        )

                    # Ladder rungs 2 and 3: under RSS pressure shrink the
                    # worker pool (forked workers multiply RSS), then
                    # tighten the per-location pair cap.
                    from repro.detect.parallel import resolve_workers

                    workers = config.detect_workers
                    max_pairs = config.max_pairs_per_location
                    if governor.memory_pressure():
                        if resolve_workers(workers, len(trace.records)) > 1:
                            governor.degrade(
                                "detect_serial",
                                "detect",
                                "process RSS above memory_budget_mb",
                            )
                            workers = 1
                        if governor.memory_pressure():
                            governor.degrade(
                                "truncate_pairs",
                                "detect",
                                "process RSS above memory_budget_mb",
                            )
                            max_pairs = min(max_pairs, TRUNCATED_MAX_PAIRS)

                    if store is not None and store.stage_completed("detect"):
                        payload = restore("detect")
                        detection = ckpt.restore_detection(payload, trace, graph)
                        timings["analysis_seconds"] = payload.get(
                            "analysis_seconds", 0.0
                        )
                        if (
                            config.detect_mode == "sync-preserving"
                            and detection.sp_pairs is None
                        ):
                            # Checkpoint predates the SP annotation (or
                            # was sealed without it): recompute — cheap
                            # next to the restored enumeration.
                            from repro.detect.syncpres import (
                                annotate_sync_preserving,
                            )

                            annotate_sync_preserving(
                                detection,
                                model=config.model,
                                memory_budget=reach_budget,
                                reach_backend=config.reach_backend,
                            )
                    else:
                        on_shard = None
                        completed_shards = None
                        if store is not None:
                            completed_shards = {
                                entry["index"]: (
                                    entry["pairs"],
                                    entry["examined"],
                                    entry["truncated"],
                                )
                                for entry in store.load_shards("detect")
                            }
                            shard_log = store.shard_log("detect")

                            def on_shard(index, seq_pairs, pairs, truncated):
                                shard_log.append(
                                    {
                                        "index": index,
                                        "pairs": [list(p) for p in seq_pairs],
                                        "examined": pairs,
                                        "truncated": truncated,
                                    }
                                )

                        detection = detect_races(
                            trace,
                            model=config.model,
                            memory_budget=reach_budget,
                            graph=graph,
                            max_pairs_per_location=max_pairs,
                            workers=workers,
                            reach_backend=config.reach_backend,
                            on_shard=on_shard,
                            completed_shards=completed_shards,
                            should_stop=budget.exceeded,
                        )
                        if config.detect_mode == "sync-preserving":
                            # Annotate before sealing so sp_pairs ride
                            # the detect checkpoint and a resumed run
                            # restores them instead of recomputing.
                            from repro.detect.syncpres import (
                                annotate_sync_preserving,
                            )

                            annotate_sync_preserving(
                                detection,
                                model=config.model,
                                memory_budget=reach_budget,
                                reach_backend=config.reach_backend,
                            )
                        if store is not None and not detection.stopped_early:
                            # A deadline-truncated detection stays unsealed
                            # (completed: false): --resume then re-enters the
                            # stage and enumerates the remaining locations
                            # from the shard log, instead of skipping a
                            # permanently partial result.
                            store.seal_stage(
                                "detect", ckpt.detection_payload(detection)
                            )
                        stage_status["detect"] = (
                            "degraded" if detection.stopped_early else "ok"
                        )
                reports_pre = ReportSet.from_detection(detection)
            reports = reports_pre
            timings.setdefault(
                "analysis_seconds", time.perf_counter() - started
            )
        except (PipelineInterrupted, CheckpointError):
            raise
        except TraceAnalysisOOM as exc:
            # The whole ladder was exhausted: record the OOM and mark the
            # stage degraded instead of raising.
            oom = exc
            stage_failed("analysis", exc)
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            stage_failed("analysis", exc)

        # -- static pruning ---------------------------------------------------
        if reports is not None and config.prune:
            if store is not None and store.stage_completed("prune"):
                payload = restore("prune")
                prune_result = ckpt.restore_prune(payload, reports_pre)
                reports = prune_result.kept
                timings["pruning_seconds"] = payload.get("seconds", 0.0)
            else:
                try:
                    started = time.perf_counter()
                    with obs.span("pipeline.pruning"):
                        index = SourceIndex.from_modules(
                            self.workload.modules()
                        )
                        pruner = StaticPruner.for_trace(
                            index,
                            trace,
                            interprocedural_depth=config.interprocedural_depth,
                        )
                        # detection may be graph-less (streaming mode);
                        # the pruner tolerates that — ranking context
                        # comes from the reports' soundness tiers.
                        prune_result = pruner.apply(
                            reports_pre, detection=detection
                        )
                    reports = prune_result.kept
                    timings["pruning_seconds"] = time.perf_counter() - started
                    if store is not None:
                        store.seal_stage(
                            "prune", ckpt.prune_payload(prune_result)
                        )
                    stage_status["prune"] = "ok"
                except (PipelineInterrupted, CheckpointError):
                    raise
                except Exception as exc:  # noqa: BLE001
                    # Pruning is an optimization: fall back to the
                    # unpruned set.
                    stage_failed("pruning", exc)
                    reports = reports_pre

        # -- triggering -------------------------------------------------------
        if reports is not None and detection is not None and config.trigger:
            if store is not None and store.stage_completed("trigger"):
                payload = restore("trigger")
                done = {
                    entry["report_id"]: entry
                    for entry in store.load_shards("trigger")
                }
                for report in reports:
                    if report.report_id in done:
                        outcomes.append(
                            ckpt.outcome_from_dict(
                                done[report.report_id], report
                            )
                        )
                timings["trigger_seconds"] = payload.get("seconds", 0.0)
            else:
                started = time.perf_counter()
                with obs.span(
                    "pipeline.trigger", reports=len(reports)
                ), governor.stage("trigger") as budget:
                    done = {}
                    trigger_log = None
                    if store is not None:
                        done = {
                            entry["report_id"]: entry
                            for entry in store.load_shards("trigger")
                        }
                        trigger_log = store.shard_log("trigger")
                    try:
                        placement = PlacementAnalyzer(trace, detection.graph)
                        module = TriggerModule(
                            self.workload.factory(),
                            seeds=config.trigger_seeds,
                            max_wait=config.trigger_max_wait,
                        )
                    except (PipelineInterrupted, CheckpointError):
                        raise
                    except Exception as exc:  # noqa: BLE001
                        stage_failed("trigger", exc)
                    else:
                        stage_status.setdefault("trigger", "ok")
                        # Strongest-evidence-first: under a deadline the
                        # reports left UNKNOWN are the weakest tier.
                        for report in prioritize_reports(reports):
                            if report.report_id in done:
                                outcomes.append(
                                    ckpt.outcome_from_dict(
                                        done[report.report_id], report
                                    )
                                )
                                continue
                            if budget.exceeded():
                                # Deadline: remaining reports stay
                                # UNKNOWN; the shard log keeps what ran.
                                stage_status["trigger"] = "degraded"
                                break
                            maybe_stall("trigger_report")
                            # Each report's re-runs are isolated: one
                            # hung or crashed trigger execution is that
                            # report's outcome, not the pipeline's.
                            try:
                                outcome = module.validate_report(
                                    report, placement
                                )
                            except (PipelineInterrupted, CheckpointError):
                                raise
                            except Exception as exc:  # noqa: BLE001
                                stage_failed("trigger", exc)
                                continue
                            if outcome is None:
                                continue
                            outcomes.append(outcome)
                            if trigger_log is not None:
                                trigger_log.append(
                                    ckpt.outcome_to_dict(outcome)
                                )
                timings["trigger_seconds"] = time.perf_counter() - started
                if store is not None and stage_status.get("trigger") == "ok":
                    store.seal_stage(
                        "trigger",
                        {
                            "reports": len(outcomes),
                            "seconds": timings["trigger_seconds"],
                        },
                    )

        for stage in governor.deadline_stages:
            # A deadline overrun degrades the stage even when its loop
            # happened to finish; "failed" stays the stronger signal.
            if stage_status.get(stage) in (None, "ok"):
                stage_status[stage] = "degraded"

        return PipelineResult(
            workload=self.workload,
            config=config,
            base_result=base_result,
            monitored_result=monitored_result,
            trace=trace,
            detection=detection,
            reports_pre_prune=reports_pre,
            prune_result=prune_result,
            reports=reports,
            outcomes=outcomes,
            timings=timings,
            oom=oom,
            stage_failures=stage_failures,
            errors=errors,
            stage_status=stage_status,
            degradation=list(governor.degradations),
            degradation_events=list(governor.degradation_events),
            stages_skipped=list(store.stages_skipped) if store else [],
            checkpoint_dir=store.directory if store else None,
        )
