"""The end-to-end DCatch pipeline (paper Section 1.3).

One ``DCatch(workload).run()`` performs the paper's four stages:

1. **Run-time tracing** — a monitored (correct) execution of the
   workload with the selective-scope tracer;
2. **Trace analysis** — HB-graph construction + conflicting-concurrent
   pair detection (including Rule-Mpull loop analysis);
3. **Static pruning** — impact estimation over the mini system's source;
4. **Triggering** — controlled re-executions that classify each report
   as harmful / benign / serial.

A ``PipelineResult`` carries everything the evaluation tables need:
counts at each stage (Tables 4, 5), timings and trace sizes (Table 6),
record breakdowns (Table 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.analysis.astutil import SourceIndex
from repro.analysis.pruner import PruneResult, StaticPruner
from repro.detect.races import DetectionResult, detect_races
from repro.detect.report import ReportSet, Verdict
from repro.errors import TraceAnalysisOOM
from repro.hb.graph import DEFAULT_MEMORY_BUDGET
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.faults import FaultPlan
from repro.systems.base import Workload
from repro.trace.scope import FullScope, TracingScope, selective_scope_for
from repro.trace.store import Trace
from repro.trace.tracer import Tracer
from repro.trigger.explorer import TriggerModule, TriggerOutcome
from repro.trigger.placement import PlacementAnalyzer


@dataclass
class PipelineConfig:
    """Knobs for the pipeline; defaults match the paper's DCatch."""

    scope: str = "selective"  # or "full" (Table 8's alternative design)
    model: HBModel = FULL_MODEL
    memory_budget: int = DEFAULT_MEMORY_BUDGET
    #: Reachability engine for trace analysis: "bitset" (the paper's
    #: bit matrix) or "chain" (segment-chain compression, lower memory).
    reach_backend: str = "bitset"
    #: Worker processes for candidate enumeration: 1 = serial (the
    #: default), 0 = one per CPU, N = exactly N.  Any value returns the
    #: same candidates.
    detect_workers: int = 1
    interprocedural_depth: int = 1
    prune: bool = True
    trigger: bool = True
    trigger_seeds: tuple = (0, 1)
    #: Watchdog for order enforcement: a gated party held longer than
    #: this many logical clock ticks is released and the run counts as
    #: not enforced.  None (default) = idle-release only.
    trigger_max_wait: Optional[int] = None
    monitored_seed: Optional[int] = None  # None = the workload's default
    #: Optional fault-injection schedule installed on the base and the
    #: monitored run (see ``repro.runtime.faults``).  Trigger re-runs stay
    #: fault-free: they must isolate the racing pair, not the faults.
    fault_plan: Optional[FaultPlan] = None
    #: Durable tracing: when set, the monitored run's tracer also
    #: appends every record to a write-ahead log under
    #: ``<trace_dir>/<bug_id>/seed-<seed>/`` (see ``repro.trace.wal``),
    #: so a node crashed mid-run leaves a salvageable prefix on disk.
    #: None (default) keeps tracing purely in memory — zero overhead.
    trace_dir: Optional[str] = None
    #: Collect metrics and spans for this run (``repro.obs``).  When off,
    #: every instrumentation point hits the no-op registry/tracer and the
    #: result carries an empty ``metrics`` snapshot and no profile.
    observe: bool = True


@dataclass
class PipelineResult:
    """Everything one benchmark run of DCatch produced."""

    workload: Workload
    config: PipelineConfig
    base_result: RunResult
    monitored_result: RunResult
    trace: Trace
    detection: Optional[DetectionResult]
    reports_pre_prune: Optional[ReportSet]
    prune_result: Optional[PruneResult]
    reports: Optional[ReportSet]
    outcomes: List[TriggerOutcome] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    oom: Optional[TraceAnalysisOOM] = None
    #: Degrade-don't-die bookkeeping: count of failures per stage name and
    #: the error strings.  A stage failure leaves earlier stages' results
    #: intact — the pipeline returns what it has instead of raising.
    stage_failures: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: Metrics snapshot of the run (``MetricsRegistry.snapshot()``) —
    #: empty when ``config.observe`` is false.  Benchmarks and fault
    #: campaigns assert on this instead of re-deriving counts.
    metrics: Dict[str, Dict] = field(default_factory=dict)
    #: The run's ``SpanTracer`` (None when observability is off); feed it
    #: to ``repro.obs.render_span_table`` / ``spans_to_chrome``.
    profile: Optional[obs.SpanTracer] = None

    @property
    def degraded(self) -> bool:
        """True when some stage failed and the result is partial."""
        return bool(self.stage_failures) or self.oom is not None

    # -- Table 4-style counts ------------------------------------------------

    def verdict_counts(self, by: str = "static") -> Dict[str, int]:
        """Counts of harmful/benign/serial reports (static or callstack)."""
        if self.reports is None:
            return {}
        counter = {}
        for verdict in (Verdict.HARMFUL, Verdict.BENIGN, Verdict.SERIAL):
            if by == "static":
                counter[verdict.value] = self.reports.static_count(verdict)
            else:
                counter[verdict.value] = self.reports.callstack_count(verdict)
        return counter

    def summary(self) -> str:
        lines = [f"== DCatch on {self.workload.info.bug_id} =="]
        lines.append(f"monitored run: {self.monitored_result.summary()}")
        if self.oom is not None:
            lines.append(f"trace analysis: OUT OF MEMORY ({self.oom})")
            return "\n".join(lines)
        lines.append(
            f"trace: {len(self.trace)} records, "
            f"{self.trace.size_bytes() / 1024:.1f} KB"
        )
        if self.detection is not None:
            tag = (
                ""
                if self.detection.confidence == "full"
                else f" (confidence: {self.detection.confidence})"
            )
            lines.append(
                f"trace analysis: {len(self.detection.candidates)} dynamic "
                f"pairs, {self.detection.static_count()} static, "
                f"{self.detection.callstack_count()} callstack{tag}"
            )
        if self.prune_result is not None:
            lines.append(f"static pruning: {self.prune_result.summary()}")
        if self.reports is not None:
            lines.append(f"DCatch reports: {self.reports.summary()}")
        if self.stage_failures:
            parts = ", ".join(
                f"{stage}: {count}" for stage, count in sorted(self.stage_failures.items())
            )
            lines.append(f"partial failures: {parts}")
        for key, value in sorted(self.timings.items()):
            lines.append(f"  {key}: {value:.3f}s")
        return "\n".join(lines)


class DCatch:
    """The detector, wired for one workload."""

    def __init__(
        self, workload: Workload, config: Optional[PipelineConfig] = None
    ) -> None:
        self.workload = workload
        self.config = config or PipelineConfig()

    # -- stages ----------------------------------------------------------------

    def _make_scope(self) -> TracingScope:
        if self.config.scope == "full":
            return FullScope()
        return selective_scope_for(self.workload.modules())

    def _build_cluster(self) -> Cluster:
        cluster = self.workload.cluster(self.config.monitored_seed)
        if self.config.fault_plan is not None:
            self.config.fault_plan.install(cluster)
        return cluster

    def run_base(self) -> RunResult:
        """The untraced baseline run (Table 6's 'Base' column)."""
        return self._build_cluster().run()

    def run_traced(self) -> tuple:
        cluster = self._build_cluster()
        wal = None
        if self.config.trace_dir:
            import os

            from repro.trace.wal import WalSink

            # Per-benchmark, per-seed subdirectory so campaign runs over
            # many seeds never clobber each other's logs.
            wal = WalSink(
                os.path.join(
                    self.config.trace_dir,
                    self.workload.info.bug_id,
                    f"seed-{cluster.seed}",
                )
            )
        tracer = Tracer(
            scope=self._make_scope(), name=self.workload.info.bug_id, wal=wal
        )
        tracer.bind(cluster)
        try:
            result = cluster.run()
        finally:
            # Seal the surviving WAL streams even when the run blows up —
            # a salvageable log is the whole point of the durable path.
            tracer.close()
        return result, tracer.trace

    def run(self) -> PipelineResult:
        """Run all stages under this run's observability context.

        When ``config.observe`` is set (the default) a fresh registry and
        span tracer are activated for the duration of the run — unless
        the caller already activated ones (e.g. a fault campaign
        aggregating across runs), which are then reused.  The snapshot
        lands on ``PipelineResult.metrics`` either way.
        """
        config = self.config
        if not config.observe:
            registry: obs.MetricsRegistry = obs.NULL_REGISTRY
            tracer: obs.SpanTracer = obs.NULL_TRACER
        else:
            registry = (
                obs.get_registry()
                if obs.get_registry().enabled
                else obs.MetricsRegistry(name=self.workload.info.bug_id)
            )
            tracer = (
                obs.get_tracer()
                if obs.get_tracer().enabled
                else obs.SpanTracer(name=self.workload.info.bug_id)
            )
        with obs.use_registry(registry), obs.use_tracer(tracer):
            result = self._run_stages()
        result.metrics = registry.snapshot()
        result.profile = tracer if config.observe else None
        return result

    def _run_stages(self) -> PipelineResult:
        config = self.config
        timings: Dict[str, float] = {}
        obs.counter("pipeline_runs_total", "DCatch pipeline executions").inc()

        started = time.perf_counter()
        with obs.span("pipeline.base", workload=self.workload.info.bug_id):
            base_result = self.run_base()
        timings["base_seconds"] = time.perf_counter() - started

        started = time.perf_counter()
        with obs.span("pipeline.tracing", scope=config.scope):
            monitored_result, trace = self.run_traced()
            if obs.enabled():
                from repro.trace.stats import compute_stats, publish_stats

                publish_stats(compute_stats(trace))
        timings["tracing_seconds"] = time.perf_counter() - started

        detection = None
        reports_pre = None
        prune_result = None
        reports = None
        oom = None
        outcomes: List[TriggerOutcome] = []
        stage_failures: Dict[str, int] = {}
        errors: List[str] = []

        def stage_failed(stage: str, exc: Exception) -> None:
            stage_failures[stage] = stage_failures.get(stage, 0) + 1
            errors.append(f"{stage}: {type(exc).__name__}: {exc}")
            obs.counter(
                "pipeline_stage_failures_total", "degraded pipeline stages"
            ).labels(stage=stage).inc()

        try:
            started = time.perf_counter()
            with obs.span("pipeline.analysis"):
                detection = detect_races(
                    trace,
                    model=config.model,
                    memory_budget=config.memory_budget,
                    workers=config.detect_workers,
                    reach_backend=config.reach_backend,
                )
                reports_pre = ReportSet.from_detection(detection)
            reports = reports_pre
            timings["analysis_seconds"] = time.perf_counter() - started
        except TraceAnalysisOOM as exc:
            oom = exc
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            stage_failed("analysis", exc)

        if reports is not None and config.prune:
            try:
                started = time.perf_counter()
                with obs.span("pipeline.pruning"):
                    index = SourceIndex.from_modules(self.workload.modules())
                    pruner = StaticPruner.for_trace(
                        index,
                        trace,
                        interprocedural_depth=config.interprocedural_depth,
                    )
                    prune_result = pruner.apply(reports_pre)
                reports = prune_result.kept
                timings["pruning_seconds"] = time.perf_counter() - started
            except Exception as exc:  # noqa: BLE001
                # Pruning is an optimization: fall back to the unpruned set.
                stage_failed("pruning", exc)
                reports = reports_pre

        if reports is not None and detection is not None and config.trigger:
            started = time.perf_counter()
            with obs.span("pipeline.trigger", reports=len(reports)):
                try:
                    placement = PlacementAnalyzer(trace, detection.graph)
                    module = TriggerModule(
                        self.workload.factory(),
                        seeds=config.trigger_seeds,
                        max_wait=config.trigger_max_wait,
                    )
                except Exception as exc:  # noqa: BLE001
                    stage_failed("trigger", exc)
                else:
                    for report in reports:
                        # Each report's re-runs are isolated: one hung or
                        # crashed trigger execution is that report's outcome,
                        # not the pipeline's.
                        try:
                            outcomes.append(
                                module.validate_report(report, placement)
                            )
                        except Exception as exc:  # noqa: BLE001
                            stage_failed("trigger", exc)
            timings["trigger_seconds"] = time.perf_counter() - started

        return PipelineResult(
            workload=self.workload,
            config=config,
            base_result=base_result,
            monitored_result=monitored_result,
            trace=trace,
            detection=detection,
            reports_pre_prune=reports_pre,
            prune_result=prune_result,
            reports=reports,
            outcomes=outcomes,
            timings=timings,
            oom=oom,
            stage_failures=stage_failures,
            errors=errors,
        )
