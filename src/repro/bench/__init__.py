"""Evaluation harness: regenerates every table and figure of the paper."""

from repro.bench.format import TableResult, check_mark
from repro.bench.runner import CACHE, BenchCache, FullTracingResult, all_bug_ids
from repro.bench.tables import (
    ALL_TABLES,
    figure1_mr_hang,
    figure3_hb_chain,
    figure4_mr_structure,
    table1_mechanisms,
    table3_benchmarks,
    table4_detection,
    table5_pruning,
    table6_performance,
    table7_trace_breakdown,
    table8_full_tracing,
    table9_hb_ablation,
)

__all__ = [
    "TableResult",
    "check_mark",
    "CACHE",
    "BenchCache",
    "FullTracingResult",
    "all_bug_ids",
    "ALL_TABLES",
    "table1_mechanisms",
    "table3_benchmarks",
    "table4_detection",
    "table5_pruning",
    "table6_performance",
    "table7_trace_breakdown",
    "table8_full_tracing",
    "table9_hb_ablation",
    "figure1_mr_hang",
    "figure3_hb_chain",
    "figure4_mr_structure",
]
