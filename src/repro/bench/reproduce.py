"""One-shot reproduction report: every table and figure, one document.

``reproduce_all()`` regenerates the full evaluation and renders a single
text report (the machine-checked companion to EXPERIMENTS.md); the CLI
exposes it as ``dcatch reproduce [--out FILE]``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench.format import TableResult
from repro.bench.tables import ALL_TABLES

#: Render order: paper order, figures after their related tables.
_ORDER = [
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "figure1",
    "figure3",
    "figure4",
]


def reproduce_all(
    only: Optional[List[str]] = None,
) -> Tuple[str, Dict[str, TableResult]]:
    """Regenerate everything; returns (rendered report, tables by name)."""
    names = [n for n in _ORDER if only is None or n in only]
    unknown = set(only or []) - set(ALL_TABLES)
    if unknown:
        raise KeyError(f"unknown experiments: {sorted(unknown)}")

    tables: Dict[str, TableResult] = {}
    sections: List[str] = []
    started = time.perf_counter()
    for name in names:
        table = ALL_TABLES[name]()
        tables[name] = table
        sections.append(table.render())
    elapsed = time.perf_counter() - started

    header = [
        "DCatch reproduction report",
        "=" * 60,
        "Every table and figure of the paper's evaluation (ASPLOS'17),",
        "regenerated from the mini systems on the simulated runtime.",
        f"Experiments: {', '.join(names)}",
        f"Wall time: {elapsed:.1f}s",
        "",
    ]
    report = "\n".join(header) + "\n\n".join(sections) + "\n"
    return report, tables


def write_report(path: str, only: Optional[List[str]] = None) -> str:
    report, _tables = reproduce_all(only)
    with open(path, "w") as fh:
        fh.write(report)
    return report
