"""Plain-text table rendering for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


@dataclass
class TableResult:
    """One regenerated table: title, headers, rows, footnotes."""

    table_id: str  # e.g. "Table 4"
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        cells = [self.headers] + [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(str(row[i])) for row in cells) for i in range(len(self.headers))
        ]
        lines = [f"{self.table_id}: {self.title}"]
        lines.append(
            "  " + " | ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  " + "-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  "
                + " | ".join(
                    _fmt(v).ljust(w) for v, w in zip(row, widths)
                )
            )
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def row_for(self, key: str) -> Optional[List[Any]]:
        for row in self.rows:
            if str(row[0]) == key:
                return row
        return None

    def column(self, header: str) -> List[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "-"
    return str(value)


def check_mark(flag: bool) -> str:
    return "X" if flag else "-"
