"""Benchmarks for the always-on detection service (``BENCH_service.json``).

Three sections, matching the service's three robustness claims:

* ``multi_tenant`` — N tenants (default 4) concurrently ship medium
  workloads (~180k records each) into one server; records aggregate
  throughput and the fleet-wide ingest latency quantiles;
* ``overload`` — a deliberately under-provisioned server (tiny ingest
  queue + an injected per-batch detection delay) so ingest outruns
  detection and the overload ladder engages; the published report must
  *honestly* carry ``confidence: "sampled"``;
* ``recovery`` — a real ``kill -9`` mid-ingest against a server
  subprocess, then a restart + re-ship; the final report must be
  byte-identical to an offline single-pass over the same WAL.

Run: ``python -m repro.bench.service [--out BENCH_service.json]``.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.governor import FleetBudget
from repro.detect.streaming import detect_races_streaming
from repro.service.client import ServiceClient
from repro.service.report import render_report, report_from_stream_result
from repro.service.server import DetectionServer, load_service_file
from repro.trace.wal import list_stream_segments
from repro.workload import generate_workload

REPO_ROOT = Path(__file__).resolve().parents[3]

#: Where ``write_service_bench_json`` puts its artifact by default.
SERVICE_BENCH_PATH = REPO_ROOT / "BENCH_service.json"

BENCH_WINDOW = 8192
BENCH_PRESET = "medium"
#: One flavor per tenant so the fleet is heterogeneous.
BENCH_SYSTEMS = ("minizk", "minimr", "minica", "minihb")


def _generate(out_dir: str, system: str, seed: int):
    return generate_workload(system, BENCH_PRESET, seed=seed, out_dir=out_dir)


def _quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# -- multi-tenant throughput --------------------------------------------------


def bench_multi_tenant(workdir: str, tenants: int = 4) -> Dict[str, object]:
    """N tenants ship concurrently; measure aggregate ingest-to-report
    throughput and fleet-wide durable-spool latency."""
    workloads = []
    for index in range(tenants):
        system = BENCH_SYSTEMS[index % len(BENCH_SYSTEMS)]
        out = os.path.join(workdir, f"workload-{index}")
        workloads.append(
            (f"tenant-{index}", _generate(out, system, seed=index), system)
        )
    # Provisioned-for-burst: enough queue credits that the ladder never
    # engages and every report keeps full confidence — this section
    # measures throughput, not degradation.
    server = DetectionServer(
        os.path.join(workdir, "data"),
        limits=FleetBudget(queue_segments=1024),
        window=BENCH_WINDOW,
        http_port=None,
    ).start()
    per_tenant: Dict[str, Dict[str, object]] = {}
    errors: List[str] = []

    def ship(tenant: str, generated, system: str) -> None:
        try:
            with ServiceClient(
                "127.0.0.1", server.port, tenant, retry_deadline_s=300
            ) as client:
                result = client.ship_wal_dir(generated.wal_dir)
                report = client.wait_report(timeout_s=900)
            per_tenant[tenant] = {
                "system": system,
                "ship": result.to_dict(),
                "records": report["records"],
                "candidates": report["candidate_count"],
                "confidence": report["confidence"],
                "latencies": result.ingest_latencies_s,
            }
        except Exception as exc:  # surface, don't hang the bench
            errors.append(f"{tenant}: {type(exc).__name__}: {exc}")

    started = time.perf_counter()
    threads = [
        threading.Thread(target=ship, args=w, name=f"ship-{w[0]}")
        for w in workloads
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    finally:
        server.stop()
    if errors:
        raise RuntimeError("; ".join(errors))
    all_latencies = [
        s for t in per_tenant.values() for s in t.pop("latencies")
    ]
    total_records = sum(int(t["records"]) for t in per_tenant.values())
    return {
        "tenants": tenants,
        "preset": BENCH_PRESET,
        "queue_segments": 1024,
        "window": BENCH_WINDOW,
        "total_records": total_records,
        "wall_seconds": round(wall, 3),
        "aggregate_records_per_second": round(total_records / wall, 1),
        "ingest_p50_s": round(_quantile(all_latencies, 0.50), 6),
        "ingest_p99_s": round(_quantile(all_latencies, 0.99), 6),
        "all_full_confidence": all(
            t["confidence"] == "full" for t in per_tenant.values()
        ),
        "per_tenant": per_tenant,
    }


# -- induced overload ---------------------------------------------------------


def bench_overload(workdir: str) -> Dict[str, object]:
    """Under-provision the server so ingest outruns detection: a
    4-segment queue and a 0.25s per-batch detection delay.  The ladder
    must engage and the report must say ``sampled``."""
    generated = _generate(os.path.join(workdir, "workload"), "minizk", seed=7)
    server = DetectionServer(
        os.path.join(workdir, "data"),
        limits=FleetBudget(queue_segments=4),
        window=BENCH_WINDOW,
        overload_poll_s=0.05,
        pump_delay_s=0.25,
        http_port=None,
    ).start()
    try:
        started = time.perf_counter()
        with ServiceClient(
            "127.0.0.1", server.port, "hot", retry_deadline_s=600
        ) as client:
            result = client.ship_wal_dir(generated.wal_dir)
            report = client.wait_report(timeout_s=900)
        wall = time.perf_counter() - started
    finally:
        server.stop()
    shipped = result.records_shipped
    dropped = sum(report["sampled_dropped"].values())
    return {
        "preset": BENCH_PRESET,
        "queue_segments": 4,
        "pump_delay_s": 0.25,
        "wall_seconds": round(wall, 3),
        "records_shipped": shipped,
        "records_detected": report["records"],
        "records_sampled_away": dropped,
        "confidence": report["confidence"],
        "honest": report["confidence"] == "sampled" and dropped > 0,
        "backpressure_waits": result.backpressure_waits,
        "paused_waits": result.paused_waits,
        "candidates": report["candidate_count"],
    }


# -- crash recovery -----------------------------------------------------------


def _serve_subprocess(data_dir: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve", data_dir,
            "--window", str(BENCH_WINDOW), "--no-http", *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    path = os.path.join(data_dir, "service.json")
    while time.monotonic() < deadline:
        if os.path.exists(path):
            try:
                if load_service_file(data_dir).get("pid") == proc.pid:
                    return proc
            except (OSError, ValueError):
                pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("service subprocess never became ready")


def bench_recovery(workdir: str) -> Dict[str, object]:
    """SIGKILL the server subprocess mid-ingest; restart; re-ship.
    Zero acknowledged segments may be lost and the final report must be
    byte-identical to the offline pass."""
    generated = _generate(os.path.join(workdir, "workload"), "minimr", seed=3)
    wal_dir = generated.wal_dir
    oracle = render_report(
        report_from_stream_result(
            "alpha",
            detect_races_streaming(wal_dir=wal_dir, window=BENCH_WINDOW),
        )
    )
    data_dir = os.path.join(workdir, "data")
    os.makedirs(data_dir, exist_ok=True)
    spool_glob = os.path.join(
        data_dir, "tenants", "alpha", "spool", "**", "*.wal"
    )

    # Phase 1: throttled server (backpressure paces the client; the
    # ladder is parked so the report stays full-confidence), ship until
    # ~60 segments are durable, then SIGKILL (no handler runs, nothing
    # gets to seal).
    server = _serve_subprocess(
        data_dir,
        "--queue-segments", "8",
        "--pump-delay-s", "0.05",
        "--overload-poll-s", "3600",
    )
    first_pid = server.pid
    shipper: Optional[threading.Thread] = None
    try:
        doc = load_service_file(data_dir)

        def ship_first() -> None:
            try:
                with ServiceClient(
                    "127.0.0.1", int(doc["port"]), "alpha",
                    retry_deadline_s=5,
                ) as client:
                    client.ship_wal_dir(wal_dir)
            except Exception:
                pass  # expected: the server dies under it

        shipper = threading.Thread(target=ship_first, name="ship-first")
        shipper.start()
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(glob.glob(spool_glob, recursive=True)) >= 60:
                break
            time.sleep(0.02)
        spooled_before = len(glob.glob(spool_glob, recursive=True))
        os.kill(first_pid, signal.SIGKILL)
        server.wait(timeout=30)
        shipper.join(timeout=60)
    finally:
        if server.poll() is None:
            server.kill()
        if shipper is not None and shipper.is_alive():
            shipper.join(timeout=10)

    # Phase 2: restart over the same directory and finish the ship.
    # Provisioned-for-burst like the multi_tenant section: this section
    # measures recovery fidelity, so the ladder must stay out of the
    # way or the re-ship burst would (honestly) degrade to "sampled"
    # and break byte-identity with the offline oracle.
    server = _serve_subprocess(
        data_dir,
        "--queue-segments", "1024",
        "--overload-poll-s", "3600",
    )
    try:
        doc = load_service_file(data_dir)
        with ServiceClient(
            "127.0.0.1", int(doc["port"]), "alpha", retry_deadline_s=300
        ) as client:
            result = client.ship_wal_dir(wal_dir)
            report = client.wait_report(timeout_s=900)
    finally:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
    total_segments = sum(
        len(paths) for paths in list_stream_segments(wal_dir).values()
    )
    return {
        "preset": BENCH_PRESET,
        "total_segments": total_segments,
        "segments_spooled_before_kill": spooled_before,
        "duplicates_on_reship": result.segments_duplicate,
        "zero_lost_segments": result.segments_duplicate >= spooled_before,
        "pid_killed": first_pid,
        "pid_recovered": doc["pid"],
        "records": report["records"],
        "confidence": report["confidence"],
        "byte_identical_to_offline": render_report(report) == oracle,
    }


# -- document -----------------------------------------------------------------


def bench_service_data(tenants: int = 4) -> Dict[str, object]:
    """The ``BENCH_service.json`` document."""
    import platform

    document: Dict[str, object] = {
        "format": "repro-bench-service",
        "version": 1,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        document["multi_tenant"] = bench_multi_tenant(
            os.path.join(tmp, "multi"), tenants=tenants
        )
        document["overload"] = bench_overload(os.path.join(tmp, "overload"))
        document["recovery"] = bench_recovery(os.path.join(tmp, "recovery"))
    return document


def write_service_bench_json(
    path=SERVICE_BENCH_PATH, tenants: int = 4
) -> Path:
    path = Path(path)
    document = bench_service_data(tenants=tenants)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="benchmark the multi-tenant detection service"
    )
    parser.add_argument(
        "--out", default=str(SERVICE_BENCH_PATH), help="artifact path"
    )
    parser.add_argument(
        "--tenants", type=int, default=4, help="concurrent tenants (>= 4)"
    )
    args = parser.parse_args(argv)
    path = write_service_bench_json(args.out, tenants=args.tenants)
    doc = json.loads(path.read_text())
    multi = doc["multi_tenant"]
    print(
        f"multi-tenant: {multi['tenants']} tenants, "
        f"{multi['total_records']} records in {multi['wall_seconds']}s "
        f"({multi['aggregate_records_per_second']:,.0f} rec/s aggregate, "
        f"ingest p99 {multi['ingest_p99_s'] * 1000:.1f}ms)"
    )
    over = doc["overload"]
    print(
        f"overload: confidence {over['confidence']} "
        f"({over['records_sampled_away']} records sampled away, "
        f"{over['backpressure_waits']} queue waits, "
        f"{over['paused_waits']} pauses)"
    )
    rec = doc["recovery"]
    print(
        f"recovery: killed pid {rec['pid_killed']} after "
        f"{rec['segments_spooled_before_kill']}/{rec['total_segments']} "
        f"segments; byte-identical={rec['byte_identical_to_offline']}, "
        f"zero-lost={rec['zero_lost_segments']}"
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
