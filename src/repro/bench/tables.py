"""Generators for every table and figure of the paper's evaluation.

Each function returns a ``TableResult`` whose rows mirror the paper's
layout.  Absolute numbers differ (our substrate is a simulator, not the
authors' testbed); the *shape* — who is detected, what gets pruned, what
blows up — is the reproduction target, and ``EXPERIMENTS.md`` records the
side-by-side comparison.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.bench.format import TableResult, check_mark
from repro.bench.runner import CACHE, all_bug_ids
from repro.detect.races import detect_races
from repro.detect.report import ReportSet, Verdict
from repro.hb.ablation import ablate_trace
from repro.hb.graph import HBGraph
from repro.runtime.ops import OpKind
from repro.systems import all_workloads

# A verb used purely as the push protocol's carrier; not counted as
# application-level socket communication in Table 1.
_PUSH_CARRIER_VERBS = {"zk-notify"}


# ---------------------------------------------------------------- Table 1

def table1_mechanisms() -> TableResult:
    """Concurrency & communication mechanisms per system (Table 1).

    Derived from trace evidence: which record kinds each system's
    monitored workloads actually produced.
    """
    per_system: Dict[str, Dict[str, bool]] = {}
    for workload in all_workloads():
        result = CACHE.pipeline(workload.info.bug_id, trigger=False)
        trace = result.trace
        mechanisms = per_system.setdefault(
            workload.info.system,
            {"rpc": False, "socket": False, "custom": False,
             "threads": False, "events": False},
        )
        for record in trace.records:
            if record.kind is OpKind.RPC_CREATE:
                mechanisms["rpc"] = True
            elif record.kind is OpKind.SOCK_SEND:
                if record.extra.get("verb") not in _PUSH_CARRIER_VERBS:
                    mechanisms["socket"] = True
            elif record.kind is OpKind.ZK_UPDATE:
                mechanisms["custom"] = True  # push-based protocol
            elif record.kind in (OpKind.THREAD_CREATE, OpKind.THREAD_BEGIN):
                mechanisms["threads"] = True
            elif record.kind is OpKind.EVENT_CREATE:
                mechanisms["events"] = True
        if result.detection is not None and result.detection.graph.pull_edges:
            mechanisms["custom"] = True  # pull-based protocol

    rows = [
        [
            system,
            check_mark(m["rpc"]),
            check_mark(m["socket"]),
            check_mark(m["custom"]),
            check_mark(m["threads"]),
            check_mark(m["events"]),
        ]
        for system, m in per_system.items()
    ]
    return TableResult(
        table_id="Table 1",
        title="Concurrency & communication in distributed systems",
        headers=["App", "Sync.RPC", "Async.Socket", "Custom Protocol",
                 "Sync.Threads", "Async.Events"],
        rows=rows,
        notes=["derived from monitored-run trace evidence"],
    )


# ---------------------------------------------------------------- Table 3

def table3_benchmarks() -> TableResult:
    rows = []
    for workload in all_workloads():
        info = workload.info
        rows.append(
            [
                info.bug_id,
                f"{workload.lines_of_code()} LoC",
                info.workload,
                info.symptom,
                info.error_pattern,
                info.root_cause,
            ]
        )
    return TableResult(
        table_id="Table 3",
        title="Benchmark bugs and applications",
        headers=["BugID", "LoC", "Workload", "Symptom", "Error", "Root"],
        rows=rows,
        notes=["LoC is the mini system's size (paper: real systems 61K-1.4M)"],
    )


# ---------------------------------------------------------------- Table 4

def table4_detection() -> TableResult:
    rows = []
    totals = Counter()
    for bug_id in all_bug_ids():
        result = CACHE.pipeline(bug_id, trigger=True)
        static = result.verdict_counts("static")
        callstack = result.verdict_counts("callstack")
        detected = callstack.get("harmful", 0) > 0
        rows.append(
            [
                bug_id,
                check_mark(detected),
                static.get("harmful", 0),
                static.get("benign", 0),
                static.get("serial", 0),
                callstack.get("harmful", 0),
                callstack.get("benign", 0),
                callstack.get("serial", 0),
            ]
        )
        for key in ("harmful", "benign", "serial"):
            totals[f"s_{key}"] += static.get(key, 0)
            totals[f"c_{key}"] += callstack.get(key, 0)
    rows.append(
        [
            "Total",
            "",
            totals["s_harmful"],
            totals["s_benign"],
            totals["s_serial"],
            totals["c_harmful"],
            totals["c_benign"],
            totals["c_serial"],
        ]
    )
    return TableResult(
        table_id="Table 4",
        title="DCatch bug detection results",
        headers=["BugID", "Detected?", "S.Bug", "S.Benign", "S.Serial",
                 "C.Bug", "C.Benign", "C.Serial"],
        rows=rows,
        notes=[
            "S.* = unique static instruction pairs, C.* = unique callstack pairs",
            "verdicts assigned by the triggering module (Section 5)",
        ],
    )


# ---------------------------------------------------------------- Table 5

def table5_pruning() -> TableResult:
    rows = []
    for bug_id in all_bug_ids():
        staged = CACHE.staged_counts(bug_id)
        rows.append(
            [
                bug_id,
                staged["TA"][0],
                staged["TA+SP"][0],
                staged["TA+SP+LP"][0],
                staged["TA"][1],
                staged["TA+SP"][1],
                staged["TA+SP+LP"][1],
            ]
        )
    return TableResult(
        table_id="Table 5",
        title="# of DCbugs reported by trace analysis (TA) alone, plus "
              "static pruning (SP), plus loop-based synchronization (LP)",
        headers=["BugID", "S.TA", "S.TA+SP", "S.TA+SP+LP",
                 "C.TA", "C.TA+SP", "C.TA+SP+LP"],
        rows=rows,
    )


# ---------------------------------------------------------------- Table 6

def table6_performance() -> TableResult:
    rows = []
    for bug_id in all_bug_ids():
        result = CACHE.pipeline(bug_id, trigger=False)
        rows.append(
            [
                bug_id,
                result.timings.get("base_seconds", 0.0),
                result.timings.get("tracing_seconds", 0.0),
                result.timings.get("analysis_seconds", 0.0),
                result.timings.get("pruning_seconds", 0.0),
                f"{result.trace.size_bytes() / 1024:.1f}KB",
            ]
        )
    return TableResult(
        table_id="Table 6",
        title="DCatch performance results",
        headers=["BugID", "Base(s)", "Tracing(s)", "TraceAnalysis(s)",
                 "StaticPruning(s)", "TraceSize"],
        rows=rows,
        notes=["Base is the execution time without DCatch"],
    )


# ---------------------------------------------------------------- Table 7

def table7_trace_breakdown() -> TableResult:
    rows = []
    for bug_id in all_bug_ids():
        result = CACHE.pipeline(bug_id, trigger=False)
        counts = result.trace.category_counts()
        rows.append(
            [
                bug_id,
                len(result.trace),
                counts.get("mem", 0),
                f"{counts.get('rpc', 0)} / {counts.get('socket', 0)}",
                counts.get("event", 0),
                counts.get("thread", 0),
                counts.get("lock", 0),
                counts.get("push", 0),
            ]
        )
    return TableResult(
        table_id="Table 7",
        title="Break down of # of major types of trace records",
        headers=["BugID", "Total", "Mem", "RPC/Socket", "Event",
                 "Thread", "Lock", "Push"],
        rows=rows,
    )


# ---------------------------------------------------------------- Table 8

def table8_full_tracing() -> TableResult:
    rows = []
    for bug_id in all_bug_ids():
        full = CACHE.full_tracing(bug_id)
        selective = CACHE.pipeline(bug_id, trigger=False)
        blowup = full.trace.size_bytes() / max(1, selective.trace.size_bytes())
        rows.append(
            [
                bug_id,
                f"{full.trace.size_bytes() / 1024:.0f}KB",
                f"{blowup:.0f}x",
                full.tracing_seconds,
                "Out of Memory" if full.oom else f"{full.analysis_seconds:.3f}s",
            ]
        )
    return TableResult(
        table_id="Table 8",
        title="Full (unselective) memory tracing results",
        headers=["BugID", "TraceSize", "vs.selective", "Tracing(s)",
                 "TraceAnalysis"],
        rows=rows,
        notes=[
            "analysis uses the paper's per-vertex bit-set algorithm with a "
            "budget scaled to the simulator (4MB ~ the paper's 50GB)",
        ],
    )


# ---------------------------------------------------------------- Table 9

_ABLATION_FAMILIES = ["event", "rpc", "socket", "push"]


def table9_hb_ablation() -> TableResult:
    rows = []
    for bug_id in all_bug_ids():
        result = CACHE.pipeline(bug_id, trigger=False)
        trace = result.trace
        baseline = result.detection
        base_static = set(baseline.static_pairs().keys())
        base_callstack = set(baseline.callstack_pairs().keys())
        row: List[object] = [bug_id]
        for family in _ABLATION_FAMILIES:
            ablated_trace = ablate_trace(trace, {family})
            ablated = detect_races(ablated_trace)
            abl_static = set(ablated.static_pairs().keys())
            abl_callstack = set(ablated.callstack_pairs().keys())
            fn_s = len(base_static - abl_static)
            fp_s = len(abl_static - base_static)
            fn_c = len(base_callstack - abl_callstack)
            fp_c = len(abl_callstack - base_callstack)
            if fn_s == fp_s == fn_c == fp_c == 0:
                row.append("-")
            else:
                row.append(f"-{fn_s}/+{fp_s} (-{fn_c}/+{fp_c})")
        rows.append(row)
    return TableResult(
        table_id="Table 9",
        title="False negatives (-) and false positives (+) of ignoring "
              "certain HB-related operations",
        headers=["BugID", "Event", "RPC", "Socket", "Push"],
        rows=rows,
        notes=["static counts, callstack counts in parentheses; '-' = no change"],
    )


# ---------------------------------------------------------------- Figures

def figure1_mr_hang() -> TableResult:
    """Figure 1/2: trigger the MR-3274 hang and report the scenario."""
    result = CACHE.pipeline("MR-3274", trigger=True)
    rows = []
    for outcome in result.outcomes:
        rep = outcome.report.representative
        rows.append(
            [
                f"#{outcome.report.report_id}",
                rep.variable,
                rep.first.kind.value,
                rep.second.kind.value,
                outcome.verdict.value,
                outcome.detail[:60],
            ]
        )
    notes = []
    for outcome in result.outcomes:
        if outcome.verdict is Verdict.HARMFUL:
            for run in outcome.runs:
                if run.failed:
                    kinds = ",".join(
                        sorted({k.value for k in run.result.failure_kinds()})
                    )
                    notes.append(
                        f"enforced {run.order[0]}->{run.order[1]}: {kinds} "
                        "(the Figure 1 hang: Cancel before GetTask)"
                    )
    return TableResult(
        table_id="Figure 1/2",
        title="The Hadoop MR-3274 DCbug: hang iff Cancel happens before "
              "GetTask",
        headers=["Report", "Variable", "Access1", "Access2", "Verdict",
                 "Detail"],
        rows=rows,
        notes=notes,
    )


def figure3_hb_chain() -> TableResult:
    """Figure 3: the HBase W=>R ordering needs every rule family."""
    result = CACHE.pipeline("HB-4539", trigger=False)
    trace = result.trace
    # W: the split path's regions_in_transition.put; R: the watcher read.
    writes = [
        r
        for r in trace.mem_accesses()
        if r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "split_table" in r.site.func
    ]
    reads = [
        r
        for r in trace.mem_accesses()
        if not r.is_write
        and str(r.obj_id).endswith("regions_in_transition")
        and r.site
        and "on_region_state_change" in r.site.func
    ]
    w, r = writes[0], reads[0]
    rows = []
    full_graph = result.detection.graph
    rows.append(["full model", "ordered" if full_graph.happens_before(w, r) else "CONCURRENT"])
    for family in ("rpc", "push", "event", "thread"):
        ablated = HBGraph(ablate_trace(trace, {family}))
        w2 = next(x for x in ablated.trace.records if x.seq == w.seq)
        r2 = next(x for x in ablated.trace.records if x.seq == r.seq)
        status = "ordered" if ablated.happens_before(w2, r2) else "CONCURRENT"
        rows.append([f"without {family}", status])
    return TableResult(
        table_id="Figure 3",
        title="HBase W => R through thread fork, RPC, event queue and "
              "ZooKeeper push: every hop is load-bearing",
        headers=["Model", "W vs R"],
        rows=rows,
        notes=[f"W: {w.site}", f"R: {r.site}"],
    )


def figure4_mr_structure() -> TableResult:
    """Figure 4: mini-MapReduce's concurrency structure from the trace."""
    result = CACHE.pipeline("MR-3274", trigger=False)
    trace = result.trace
    threads = sorted({r.thread_name for r in trace.records})
    queues = sorted(
        {
            r.extra.get("queue_name")
            for r in trace.records
            if r.kind is OpKind.EVENT_BEGIN
        }
    )
    rpc_methods = sorted(
        {
            r.extra.get("method")
            for r in trace.records
            if r.kind is OpKind.RPC_CREATE
        }
    )
    rows = [
        ["threads", len(threads), ", ".join(threads)[:80]],
        ["event queues", len(queues), ", ".join(q for q in queues if q)],
        ["RPC methods", len(rpc_methods), ", ".join(m for m in rpc_methods if m)],
    ]
    return TableResult(
        table_id="Figure 4",
        title="Concurrency and communication in mini-MapReduce",
        headers=["Kind", "Count", "Names"],
        rows=rows,
    )


ALL_TABLES = {
    "table1": table1_mechanisms,
    "table3": table3_benchmarks,
    "table4": table4_detection,
    "table5": table5_pruning,
    "table6": table6_performance,
    "table7": table7_trace_breakdown,
    "table8": table8_full_tracing,
    "table9": table9_hb_ablation,
    "figure1": figure1_mr_hang,
    "figure3": figure3_hb_chain,
    "figure4": figure4_mr_structure,
}
