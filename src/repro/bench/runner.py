"""Shared, cached pipeline executions for the evaluation harness.

Most tables consume the same artifacts (one monitored+analyzed+triggered
pipeline run per benchmark), so the harness memoizes them per process.
Determinism makes the cache sound: the same workload and seed always
produce the same trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.detect.races import DetectionResult, detect_races
from repro.detect.report import ReportSet
from repro.errors import TraceAnalysisOOM
from repro.hb.graph import HBGraph
from repro.hb.model import FULL_MODEL
from repro.pipeline import DCatch, PipelineConfig, PipelineResult
from repro.systems import all_workloads, workload_by_id
from repro.systems.base import Workload
from repro.trace.scope import FullScope
from repro.trace.store import Trace
from repro.trace.tracer import Tracer

#: Scaled trace-analysis memory budget for the Table 8 experiment.  The
#: paper's JVM had 50 GB for systems of 10^5-10^6 LoC; our mini systems
#: are roughly three orders of magnitude smaller.
FULL_TRACING_BUDGET = 4 * 1024 * 1024


@dataclass
class FullTracingResult:
    """One row of Table 8."""

    bug_id: str
    trace: Trace
    tracing_seconds: float
    analysis_seconds: Optional[float]  # None = out of memory
    oom: Optional[TraceAnalysisOOM]


class BenchCache:
    """Per-process memo of expensive artifacts."""

    def __init__(self) -> None:
        self._pipeline: Dict[Tuple[str, bool], PipelineResult] = {}
        self._full_tracing: Dict[str, FullTracingResult] = {}

    # -- standard pipeline runs -----------------------------------------------

    def pipeline(self, bug_id: str, trigger: bool = True) -> PipelineResult:
        key = (bug_id, trigger)
        if key not in self._pipeline:
            workload = workload_by_id(bug_id)
            config = PipelineConfig(trigger=trigger)
            self._pipeline[key] = DCatch(workload, config).run()
            if trigger:
                # A triggered run contains everything an untriggered one
                # does; reuse it.
                self._pipeline[(bug_id, False)] = self._pipeline[key]
        return self._pipeline[key]

    # -- Table 5: staged pruning -------------------------------------------------

    def staged_counts(self, bug_id: str) -> Dict[str, Tuple[int, int]]:
        """{stage: (static, callstack)} for TA, TA+SP, TA+SP+LP."""
        result = self.pipeline(bug_id, trigger=False)
        trace = result.trace
        workload = result.workload

        from repro.analysis.astutil import SourceIndex
        from repro.analysis.pruner import StaticPruner

        index = SourceIndex.from_modules(workload.modules())

        no_pull = detect_races(trace, model=FULL_MODEL.without("pull"))
        reports_ta = ReportSet.from_detection(no_pull)
        pruner = StaticPruner.for_trace(index, trace)
        reports_sp = pruner.apply(reports_ta).kept

        with_pull = detect_races(trace, model=FULL_MODEL)
        reports_lp_all = ReportSet.from_detection(with_pull)
        reports_lp = pruner.apply(reports_lp_all).kept

        return {
            "TA": (reports_ta.static_count(), reports_ta.callstack_count()),
            "TA+SP": (reports_sp.static_count(), reports_sp.callstack_count()),
            "TA+SP+LP": (reports_lp.static_count(), reports_lp.callstack_count()),
        }

    # -- Table 8: unselective tracing ----------------------------------------------

    def full_tracing(self, bug_id: str) -> FullTracingResult:
        if bug_id not in self._full_tracing:
            workload = workload_by_id(bug_id)
            started = time.perf_counter()
            cluster = workload.cluster(None)
            tracer = Tracer(scope=FullScope(), name=f"{bug_id}-full")
            tracer.bind(cluster)
            cluster.run()
            tracing_seconds = time.perf_counter() - started

            analysis_seconds: Optional[float] = None
            oom: Optional[TraceAnalysisOOM] = None
            started = time.perf_counter()
            try:
                # The paper's original algorithm: every vertex (incl.
                # memory accesses) gets a reachability bit set.
                detect_races(
                    tracer.trace,
                    memory_budget=FULL_TRACING_BUDGET,
                    graph=HBGraph(
                        tracer.trace,
                        memory_budget=FULL_TRACING_BUDGET,
                        compress_mem=False,
                    ),
                )
                analysis_seconds = time.perf_counter() - started
            except TraceAnalysisOOM as exc:
                oom = exc
            self._full_tracing[bug_id] = FullTracingResult(
                bug_id=bug_id,
                trace=tracer.trace,
                tracing_seconds=tracing_seconds,
                analysis_seconds=analysis_seconds,
                oom=oom,
            )
        return self._full_tracing[bug_id]


#: The module-level cache used by the benchmark suite.
CACHE = BenchCache()


def all_bug_ids():
    return [w.info.bug_id for w in all_workloads()]
