"""Shared, cached pipeline executions for the evaluation harness.

Most tables consume the same artifacts (one monitored+analyzed+triggered
pipeline run per benchmark), so the harness memoizes them per process.
Determinism makes the cache sound: the same workload and seed always
produce the same trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Where ``write_bench_json`` puts its artifact by default.
REPO_ROOT = Path(__file__).resolve().parents[3]
BENCH_JSON_PATH = REPO_ROOT / "BENCH_pipeline.json"
BENCH_DETECT_JSON_PATH = REPO_ROOT / "BENCH_detect.json"

#: One representative benchmark per mini system, Table 3 order.
BENCH_REPRESENTATIVES = ("CA-1011", "HB-4539", "MR-3274", "ZK-1144")

#: System vocabulary and seed for the ``--stream`` workload benchmark.
STREAM_BENCH_SYSTEM = "minimr"
STREAM_BENCH_SEED = 0
#: The streaming mode runs under this fixed RSS budget — proving the
#: single-pass detector stays bounded even on million-record traces.
STREAM_BENCH_MEMORY_BUDGET_MB = 512
#: Whole-graph memory budget for the stream bench's serial baseline —
#: an xl backbone needs a ~19 GB reachability bit matrix, which is the
#: point of the comparison (streaming/chunked stay bounded).
STREAM_SERIAL_BUDGET = 64 * 1024 * 1024 * 1024

from repro.detect.races import DetectionResult, detect_races
from repro.detect.report import ReportSet
from repro.errors import TraceAnalysisOOM
from repro.hb.graph import HBGraph
from repro.hb.model import FULL_MODEL
from repro.pipeline import DCatch, PipelineConfig, PipelineResult
from repro.systems import all_workloads, workload_by_id
from repro.systems.base import Workload
from repro.trace.scope import FullScope
from repro.trace.store import Trace
from repro.trace.tracer import Tracer

#: Scaled trace-analysis memory budget for the Table 8 experiment.  The
#: paper's JVM had 50 GB for systems of 10^5-10^6 LoC; our mini systems
#: are roughly three orders of magnitude smaller.
FULL_TRACING_BUDGET = 4 * 1024 * 1024


@dataclass
class FullTracingResult:
    """One row of Table 8."""

    bug_id: str
    trace: Trace
    tracing_seconds: float
    analysis_seconds: Optional[float]  # None = out of memory
    oom: Optional[TraceAnalysisOOM]


class BenchCache:
    """Per-process memo of expensive artifacts."""

    def __init__(self) -> None:
        self._pipeline: Dict[Tuple[str, bool], PipelineResult] = {}
        self._full_tracing: Dict[str, FullTracingResult] = {}

    # -- standard pipeline runs -----------------------------------------------

    def pipeline(self, bug_id: str, trigger: bool = True) -> PipelineResult:
        key = (bug_id, trigger)
        if key not in self._pipeline:
            workload = workload_by_id(bug_id)
            config = PipelineConfig(trigger=trigger)
            self._pipeline[key] = DCatch(workload, config).run()
            if trigger:
                # A triggered run contains everything an untriggered one
                # does; reuse it.
                self._pipeline[(bug_id, False)] = self._pipeline[key]
        return self._pipeline[key]

    # -- Table 5: staged pruning -------------------------------------------------

    def staged_counts(self, bug_id: str) -> Dict[str, Tuple[int, int]]:
        """{stage: (static, callstack)} for TA, TA+SP, TA+SP+LP."""
        result = self.pipeline(bug_id, trigger=False)
        trace = result.trace
        workload = result.workload

        from repro.analysis.astutil import SourceIndex
        from repro.analysis.pruner import StaticPruner

        index = SourceIndex.from_modules(workload.modules())

        no_pull = detect_races(trace, model=FULL_MODEL.without("pull"))
        reports_ta = ReportSet.from_detection(no_pull)
        pruner = StaticPruner.for_trace(index, trace)
        reports_sp = pruner.apply(reports_ta).kept

        with_pull = detect_races(trace, model=FULL_MODEL)
        reports_lp_all = ReportSet.from_detection(with_pull)
        reports_lp = pruner.apply(reports_lp_all).kept

        return {
            "TA": (reports_ta.static_count(), reports_ta.callstack_count()),
            "TA+SP": (reports_sp.static_count(), reports_sp.callstack_count()),
            "TA+SP+LP": (reports_lp.static_count(), reports_lp.callstack_count()),
        }

    # -- Table 8: unselective tracing ----------------------------------------------

    def full_tracing(self, bug_id: str) -> FullTracingResult:
        if bug_id not in self._full_tracing:
            workload = workload_by_id(bug_id)
            started = time.perf_counter()
            cluster = workload.cluster(None)
            tracer = Tracer(scope=FullScope(), name=f"{bug_id}-full")
            tracer.bind(cluster)
            cluster.run()
            tracing_seconds = time.perf_counter() - started

            analysis_seconds: Optional[float] = None
            oom: Optional[TraceAnalysisOOM] = None
            started = time.perf_counter()
            try:
                # The paper's original algorithm: every vertex (incl.
                # memory accesses) gets a reachability bit set.
                detect_races(
                    tracer.trace,
                    memory_budget=FULL_TRACING_BUDGET,
                    graph=HBGraph(
                        tracer.trace,
                        memory_budget=FULL_TRACING_BUDGET,
                        compress_mem=False,
                    ),
                )
                analysis_seconds = time.perf_counter() - started
            except TraceAnalysisOOM as exc:
                oom = exc
            self._full_tracing[bug_id] = FullTracingResult(
                bug_id=bug_id,
                trace=tracer.trace,
                tracing_seconds=tracing_seconds,
                analysis_seconds=analysis_seconds,
                oom=oom,
            )
        return self._full_tracing[bug_id]


#: The module-level cache used by the benchmark suite.
CACHE = BenchCache()


def all_bug_ids():
    return [w.info.bug_id for w in all_workloads()]


# -- machine-readable pipeline benchmark ------------------------------------------


def _stage_spans(tracer) -> Dict[str, Dict[str, float]]:
    stages: Dict[str, Dict[str, float]] = {}
    for span in tracer.roots():
        if not span.name.startswith("pipeline."):
            continue
        stage = span.name.split(".", 1)[1]
        stages[stage] = {
            "wall_seconds": round(span.wall_seconds, 6),
            "cpu_seconds": round(span.cpu_seconds, 6),
        }
    return stages


def _bench_durable(bug_id: str, trace_dir: str, baseline_tracing: float):
    """Re-run the monitored stage with the WAL on; report the overhead
    of durable tracing relative to the in-memory tracing stage, plus
    what salvage recovers from the written log."""
    import os

    from repro import obs
    from repro.trace.salvage import salvage_trace

    workload = workload_by_id(bug_id)
    registry = obs.MetricsRegistry(name=f"{bug_id}-durable")
    tracer = obs.SpanTracer(name=f"{bug_id}-durable")
    with obs.use_registry(registry), obs.use_tracer(tracer):
        result = DCatch(
            workload, PipelineConfig(trigger=False, trace_dir=trace_dir)
        ).run()
    durable_tracing = _stage_spans(tracer).get("tracing", {}).get(
        "wall_seconds", 0.0
    )
    wal_dir = os.path.join(
        trace_dir, bug_id, f"seed-{result.monitored_result.seed}"
    )
    _, report = salvage_trace(wal_dir)
    snapshot = registry.snapshot()

    def metric(name):
        return int(snapshot.get(name, {}).get("value", 0))

    return {
        "wall_seconds": durable_tracing,
        "overhead_seconds": round(durable_tracing - baseline_tracing, 6),
        "overhead_ratio": round(
            durable_tracing / baseline_tracing, 3
        ) if baseline_tracing > 0 else None,
        "wal_records": metric("wal_records_written_total"),
        "wal_segments_sealed": metric("wal_segments_sealed_total"),
        "wal_bytes": metric("wal_bytes_written_total"),
        "salvage": {
            "damaged": report.damaged,
            "records_recovered": report.records_recovered,
            "records_quarantined": report.records_quarantined,
        },
    }


def _bench_checkpoint(bug_id: str, plain_wall: float) -> Dict[str, object]:
    """Checkpointing overhead and resume speedup: a checkpointed run,
    then a full ``resume=True`` pass over it.

    Overhead is the summed wall time of the ``checkpoint.seal`` spans —
    the instrumented cost of serializing stage payloads — rather than a
    wall-clock delta between two runs, which on these sub-second
    benchmarks is dominated by run-to-run noise."""
    import shutil
    import tempfile

    from repro import obs

    workload = workload_by_id(bug_id)
    ckdir = tempfile.mkdtemp(prefix=f"dcatch-bench-ck-{bug_id}-")
    registry = obs.MetricsRegistry(name=f"{bug_id}-checkpoint")
    tracer = obs.SpanTracer(name=f"{bug_id}-checkpoint")
    try:
        with obs.use_registry(registry), obs.use_tracer(tracer):
            _, ck_wall, _ = _timed(
                lambda: DCatch(
                    workload, PipelineConfig(checkpoint_dir=ckdir)
                ).run()
            )
        seal_seconds = sum(
            span.wall_seconds for span in tracer.by_name("checkpoint.seal")
        )
        snapshot = registry.snapshot()
        resumed, resume_wall, _ = _timed(
            lambda: DCatch(
                workload,
                PipelineConfig(checkpoint_dir=ckdir, resume=True),
            ).run()
        )
        return {
            "wall_seconds": ck_wall,
            "plain_wall_seconds": plain_wall,
            "overhead_seconds": round(seal_seconds, 6),
            "overhead_ratio": round(seal_seconds / ck_wall, 4)
            if ck_wall > 0
            else None,
            "bytes_written": int(
                snapshot.get("checkpoint_bytes_written_total", {}).get(
                    "value", 0
                )
            ),
            "resume_wall_seconds": resume_wall,
            "resume_speedup": round(ck_wall / max(resume_wall, 1e-9), 3),
            "stages_skipped": list(resumed.stages_skipped),
        }
    finally:
        shutil.rmtree(ckdir, ignore_errors=True)


def _bench_one(bug_id: str, trace_dir: Optional[str] = None) -> Dict[str, object]:
    """Per-stage wall/CPU time plus trace size for one benchmark."""
    from repro import obs
    from repro.trace.stats import compute_stats

    workload = workload_by_id(bug_id)
    registry = obs.MetricsRegistry(name=bug_id)
    tracer = obs.SpanTracer(name=bug_id)
    with obs.use_registry(registry), obs.use_tracer(tracer):
        result, plain_wall, _ = _timed(
            lambda: DCatch(workload, PipelineConfig()).run()
        )

    stages = _stage_spans(tracer)
    stats = compute_stats(result.trace)
    entry = {
        "bug_id": bug_id,
        "system": workload.info.system,
        "stages": stages,
        "trace": {
            "records": stats.total,
            "size_bytes": stats.size_bytes,
            "records_by_category": dict(sorted(stats.categories.items())),
            "bytes_by_category": dict(sorted(stats.bytes_by_category.items())),
        },
        "reports": len(result.reports) if result.reports is not None else 0,
        "checkpoint": _bench_checkpoint(bug_id, plain_wall),
    }
    if trace_dir is not None:
        entry["durable_tracing"] = _bench_durable(
            bug_id,
            trace_dir,
            stages.get("tracing", {}).get("wall_seconds", 0.0),
        )
    return entry


def _guarded(bug_id: str, fn) -> Dict[str, object]:
    """One crashed benchmark case becomes an ``error`` entry instead of
    sinking the whole artifact."""
    import sys
    import traceback

    try:
        return fn()
    except Exception as exc:  # noqa: BLE001 - the guard is the point
        traceback.print_exc(file=sys.stderr)
        print(f"bench: {bug_id} failed: {exc}", file=sys.stderr)
        return {"bug_id": bug_id, "error": f"{type(exc).__name__}: {exc}"}


def bench_pipeline_data(
    bug_ids=BENCH_REPRESENTATIVES,
    trace_dir: Optional[str] = None,
    sampling_presets=None,
) -> Dict[str, object]:
    """The ``BENCH_pipeline.json`` document: one entry per mini system."""
    import platform
    import sys

    document = {
        "format": "repro-bench-pipeline",
        "version": 1,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": [
            _guarded(bug_id, lambda bug_id=bug_id: _bench_one(bug_id, trace_dir))
            for bug_id in bug_ids
        ],
    }
    if sampling_presets:
        document["sampling"] = bench_sampling_data(sampling_presets)
    return document


def write_bench_json(
    path=BENCH_JSON_PATH,
    bug_ids=BENCH_REPRESENTATIVES,
    trace_dir: Optional[str] = None,
    sampling_presets=None,
) -> Path:
    import json

    path = Path(path)
    document = bench_pipeline_data(bug_ids, trace_dir, sampling_presets)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


# -- sampled-tracing benchmark ------------------------------------------------

#: Sample rates the ``--sampling`` bench sweeps, highest first.
SAMPLING_BENCH_RATES = (1.0, 0.1, 0.01)
SAMPLING_BENCH_SEED = 0
#: Replay timings take the best of this many repeats — the replay is a
#: tight single-process loop, so min-of-N is the low-noise estimator.
SAMPLING_BENCH_REPEATS = 3


def _sampling_replay(records, sampler):
    """The tracer hot path on a pre-loaded record list: consult the
    sampler, honour reservoir evictions, and serialize every kept
    record (the WAL write path minus the disk).  Returns the serialized
    lines so the rate-1.0 run can be byte-compared against the
    unsampled output."""
    import json

    from repro.trace.records import record_to_dict

    kept = {}
    for event in records:
        if sampler is not None:
            keep, evictions = sampler.observe(event)
            for seq in evictions:
                kept.pop(seq, None)
            if not keep:
                continue
        kept[event.seq] = event
    return [
        json.dumps(record_to_dict(event), sort_keys=True)
        for event in kept.values()
    ]


def _bench_sampling_one(
    preset: str, rates=SAMPLING_BENCH_RATES, seed: int = SAMPLING_BENCH_SEED
) -> Dict[str, object]:
    """Tracing overhead and planted-race recall across sample rates on
    one generated workload.

    Overhead is the replay wall time (filter + serialize, best of
    repeats): keeping fewer records means serializing fewer, so the
    wall times should fall monotonically with the rate.  Recall is
    scored by running the streaming detector over the same WAL through
    a fresh sampler and matching candidates against the generator's
    planted-race ground truth.  At rate 1.0 the sampler is a no-op
    (``KeepAll``) and the replay output must be byte-identical to the
    unsampled one.
    """
    import gc
    import shutil
    import tempfile

    from repro.detect.streaming import detect_races_streaming
    from repro.trace.salvage import salvage_trace
    from repro.trace.sampling import build_sampler
    from repro.workload import generate_workload

    out_dir = tempfile.mkdtemp(prefix=f"dcatch-bench-sampling-{preset}-")
    try:
        generated = generate_workload(
            STREAM_BENCH_SYSTEM, preset, STREAM_BENCH_SEED, out_dir
        )
        planted = {
            frozenset((race["first_seq"], race["second_seq"]))
            for race in generated.planted_races
        }
        trace, _report = salvage_trace(generated.wal_dir)
        records = list(trace.records)

        def recall(seq_pairs) -> float:
            if not planted:
                return 1.0
            found = {frozenset(pair) for pair in seq_pairs}
            return round(len(planted & found) / len(planted), 4)

        gc.collect()
        baseline_lines, baseline_wall, _ = _timed(
            lambda: _sampling_replay(records, None)
        )

        entries = []
        identity_at_rate_1 = None
        for rate in rates:
            spec = f"{rate:g}"
            best_wall = None
            lines: list = []
            sampler = None
            for _ in range(SAMPLING_BENCH_REPEATS):
                candidate = build_sampler(spec, seed)
                # Collect before each repeat: the previous repeat's
                # ~100k-line list otherwise triggers GC mid-timing.
                gc.collect()
                result, wall, _cpu = _timed(
                    lambda candidate=candidate: _sampling_replay(
                        records, candidate
                    )
                )
                if best_wall is None or wall < best_wall:
                    best_wall, lines, sampler = wall, result, candidate
            if rate >= 1.0:
                identity_at_rate_1 = lines == baseline_lines
            detect_sampler = build_sampler(spec, seed)
            stream, detect_wall, _cpu = _timed(
                lambda: detect_races_streaming(
                    wal_dir=generated.wal_dir, sampler=detect_sampler
                )
            )
            entries.append(
                {
                    "rate": rate,
                    "policy": sampler.describe(),
                    "records_kept": len(lines),
                    "kept_ratio": round(len(lines) / max(len(records), 1), 4),
                    "sampled_dropped": dict(sampler.dropped),
                    "tracing": {
                        "wall_seconds": best_wall,
                        "records_per_second": round(
                            len(records) / max(best_wall, 1e-9), 1
                        ),
                        "repeats": SAMPLING_BENCH_REPEATS,
                    },
                    "detection": {
                        "wall_seconds": detect_wall,
                        "candidates": len(stream.candidates),
                        "confidence": stream.confidence,
                        "planted_recall": recall(stream.candidate_seq_pairs()),
                    },
                }
            )
        walls = [entry["tracing"]["wall_seconds"] for entry in entries]
        return {
            "preset": preset,
            "system": STREAM_BENCH_SYSTEM,
            "seed": STREAM_BENCH_SEED,
            "sampling_seed": seed,
            "trace": {
                "records": len(records),
                "streams": generated.streams,
                "planted_races": len(planted),
            },
            "baseline": {
                "wall_seconds": baseline_wall,
                "records": len(baseline_lines),
            },
            "identity_at_rate_1": identity_at_rate_1,
            # rates sweep highest-first, so walls should be decreasing
            "overhead_monotone_decreasing": all(
                walls[i] >= walls[i + 1] for i in range(len(walls) - 1)
            ),
            "rates": entries,
        }
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)


def bench_sampling_data(
    presets, rates=SAMPLING_BENCH_RATES, seed: int = SAMPLING_BENCH_SEED
) -> Dict[str, object]:
    """The ``sampling`` block of ``BENCH_pipeline.json``."""
    return {
        "system": STREAM_BENCH_SYSTEM,
        "seed": seed,
        "rates": list(rates),
        "presets": [
            _guarded(
                f"sampling-{preset}",
                lambda preset=preset: _bench_sampling_one(preset, rates, seed),
            )
            for preset in presets
        ],
    }


# -- machine-readable detection benchmark ------------------------------------------


def _timed(fn):
    """(result, wall_seconds, cpu_seconds) of one call."""
    wall = time.perf_counter()
    cpu = time.process_time()
    result = fn()
    return (
        result,
        round(time.perf_counter() - wall, 6),
        round(time.process_time() - cpu, 6),
    )


def _candidate_set(detection):
    return {(c.first.seq, c.second.seq) for c in detection.candidates}


def _bench_detect_one(bug_id: str, workers: int) -> Dict[str, object]:
    """Serial / parallel / compressed detection timings on one full
    (unselective, Table-8-style) trace."""
    from repro.detect.chunked import detect_races_chunked
    from repro.detect.parallel import derive_chunk_geometry

    workload = workload_by_id(bug_id)
    cluster = workload.cluster(0)
    tracer = Tracer(scope=FullScope(), name=f"{bug_id}-detect-bench")
    tracer.bind(cluster)
    cluster.run()
    trace = tracer.trace

    from repro.analysis.governor import process_rss_mb

    modes: Dict[str, Dict[str, object]] = {}

    def record(name, detection, wall, cpu, graph=None, extra=None):
        graph = graph if graph is not None else detection.graph
        entry = {
            "wall_seconds": wall,
            "cpu_seconds": cpu,
            "candidates": len(detection.candidates),
            "static_pairs": detection.static_count(),
            "records_per_second": round(len(trace) / max(wall, 1e-9), 1),
            "rss_high_water_mb": round(process_rss_mb(), 1),
            "reach": graph.reach_stats() if graph is not None else None,
        }
        entry.update(extra or {})
        modes[name] = entry
        return detection

    # Whole-graph, segment-compressed backbone (the production default).
    serial = record(
        "serial", *_timed(lambda: detect_races(trace)), extra={"workers": 1}
    )
    sharded = record(
        "sharded",
        *_timed(lambda: detect_races(trace, workers=workers)),
        extra={"workers": workers},
    )

    # The sync-preserving tier: the same candidate list plus the sound
    # subset — wall cost is the closure graph and one reachability
    # query per candidate on top of serial detection.
    from repro.detect.syncpres import detect_races_sync_preserving

    sp, sp_wall, sp_cpu = _timed(lambda: detect_races_sync_preserving(trace))
    record(
        "sp",
        sp,
        sp_wall,
        sp_cpu,
        extra={
            "workers": 1,
            "sp_candidates": len(sp.sp_pairs),
            "tiers": {
                "sp-sound": len(sp.sp_pairs),
                "hb-predicted": len(sp.candidates) - len(sp.sp_pairs),
            },
        },
    )

    # workers="auto": serial under the record-count threshold (pool
    # startup dominates tiny traces), the full pool above it.
    auto, auto_wall, auto_cpu = _timed(
        lambda: detect_races(trace, workers="auto")
    )
    record(
        "auto",
        auto,
        auto_wall,
        auto_cpu,
        extra={"workers": auto.workers, "decision": auto.auto_decision},
    )

    # The paper's per-vertex graph (compress_mem=False): bit matrix vs
    # the chain-compressed backend, same vertex set.
    full_bitset = record(
        "full_bitset",
        *_timed(
            lambda: detect_races(
                trace,
                graph=HBGraph(trace, compress_mem=False),
            )
        ),
        extra={"workers": 1},
    )
    full_chain = record(
        "full_chain",
        *_timed(
            lambda: detect_races(
                trace,
                graph=HBGraph(
                    trace, compress_mem=False, reach_backend="chain"
                ),
            )
        ),
        extra={"workers": 1},
    )

    # Chunked detection (the OOM fallback), serial vs process pool.
    # Geometry is derived from the trace size and worker count
    # (``derive_chunk_geometry``) instead of a fixed fan-out; both
    # modes share it so the equality check isolates parallelism.
    chunk_size, chunk_overlap = derive_chunk_geometry(len(trace), workers)
    chunked_serial, wall, cpu = _timed(
        lambda: detect_races_chunked(
            trace, chunk_size, chunk_overlap, compress_mem=False
        )
    )
    modes["chunked_serial"] = {
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "candidates": len(chunked_serial.candidates),
        "records_per_second": round(len(trace) / max(wall, 1e-9), 1),
        "rss_high_water_mb": round(process_rss_mb(), 1),
        "chunks": chunked_serial.chunks,
        "chunk_size": chunked_serial.chunk_size,
        "chunk_overlap": chunked_serial.overlap,
        "workers": 1,
    }
    chunked_parallel, wall, cpu = _timed(
        lambda: detect_races_chunked(
            trace,
            chunk_size,
            chunk_overlap,
            compress_mem=False,
            workers=workers,
        )
    )
    modes["chunked_parallel"] = {
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "candidates": len(chunked_parallel.candidates),
        "records_per_second": round(len(trace) / max(wall, 1e-9), 1),
        "rss_high_water_mb": round(process_rss_mb(), 1),
        "chunks": chunked_parallel.chunks,
        "chunk_size": chunked_parallel.chunk_size,
        "chunk_overlap": chunked_parallel.overlap,
        "workers": workers,
    }

    chunked_equal = {
        (c.first.seq, c.second.seq) for c in chunked_serial.candidates
    } == {(c.first.seq, c.second.seq) for c in chunked_parallel.candidates}
    equal = {
        "sharded_matches_serial": _candidate_set(sharded)
        == _candidate_set(serial),
        "sp_matches_serial": _candidate_set(sp) == _candidate_set(serial),
        "sp_subset_of_serial": sp.sp_pairs <= _candidate_set(serial),
        "auto_matches_serial": _candidate_set(auto) == _candidate_set(serial),
        "chain_matches_bitset": _candidate_set(full_chain)
        == _candidate_set(full_bitset),
        "full_graph_matches_compressed": _candidate_set(full_bitset)
        == _candidate_set(serial),
        "chunked_parallel_matches_chunked_serial": chunked_equal,
    }
    return {
        "bug_id": bug_id,
        "system": workload.info.system,
        "trace": {
            "records": len(trace),
            "backbone": len(serial.graph.backbone),
            "full_vertices": len(full_bitset.graph.backbone),
        },
        "modes": modes,
        "equal": equal,
        "speedup": {
            "chunked_parallel_vs_serial": round(
                modes["chunked_serial"]["wall_seconds"]
                / max(modes["chunked_parallel"]["wall_seconds"], 1e-9),
                3,
            ),
            "chain_memory_ratio": round(
                modes["full_bitset"]["reach"]["bytes"]
                / max(modes["full_chain"]["reach"]["bytes"], 1),
                3,
            ),
        },
    }


# -- generated-workload streaming benchmark ----------------------------------------


def _bench_stream_one(preset: str, workers: int) -> Dict[str, object]:
    """Streaming vs batch vs chunked on one generated workload.

    Streaming runs first (single WAL pass, before the batch modes
    inflate process RSS), then the whole-graph serial baseline, then
    the chunked modes.  Every mode is scored against the generator's
    planted-race ground truth.
    """
    import gc
    import shutil
    import tempfile

    from repro.analysis.governor import process_rss_mb
    from repro.detect.chunked import detect_races_chunked
    from repro.detect.streaming import detect_races_streaming
    from repro.trace.salvage import salvage_trace
    from repro.workload import generate_workload

    out_dir = tempfile.mkdtemp(prefix=f"dcatch-bench-stream-{preset}-")
    try:
        generated = generate_workload(
            STREAM_BENCH_SYSTEM, preset, STREAM_BENCH_SEED, out_dir
        )
        planted = {
            frozenset((race["first_seq"], race["second_seq"]))
            for race in generated.planted_races
        }

        def recall(seq_pairs) -> float:
            if not planted:
                return 1.0
            found = {frozenset(pair) for pair in seq_pairs}
            return round(len(planted & found) / len(planted), 4)

        modes: Dict[str, Dict[str, object]] = {}

        stream, wall, cpu = _timed(
            lambda: detect_races_streaming(
                wal_dir=generated.wal_dir,
                memory_budget_mb=STREAM_BENCH_MEMORY_BUDGET_MB,
            )
        )
        modes["streaming"] = {
            "wall_seconds": wall,
            "cpu_seconds": cpu,
            "memory_budget_mb": STREAM_BENCH_MEMORY_BUDGET_MB,
            "stopped_early": stream.stopped_early,
            "candidates": len(stream.candidates),
            "records_per_second": round(stream.records_per_second, 1),
            "rss_high_water_mb": round(stream.rss_high_water_mb, 1),
            "evictions": stream.evictions,
            "compactions": stream.compactions,
            "active_high_water": stream.active_high_water,
            "planted_recall": recall(stream.candidate_seq_pairs()),
            "workers": 1,
        }
        stream_pairs = stream.candidate_seq_pairs()
        del stream

        trace, _report = salvage_trace(generated.wal_dir)
        records = len(trace)

        def batch_entry(detection, wall, cpu, extra=None):
            entry = {
                "wall_seconds": wall,
                "cpu_seconds": cpu,
                "candidates": len(detection.candidates),
                "records_per_second": round(records / max(wall, 1e-9), 1),
                "rss_high_water_mb": round(process_rss_mb(), 1),
                "planted_recall": recall(
                    (c.first.seq, c.second.seq) for c in detection.candidates
                ),
            }
            entry.update(extra or {})
            return entry

        serial, wall, cpu = _timed(
            lambda: detect_races(trace, memory_budget=STREAM_SERIAL_BUDGET)
        )
        modes["serial"] = batch_entry(serial, wall, cpu, {"workers": 1})
        serial_pairs = {(c.first.seq, c.second.seq) for c in serial.candidates}
        # Free the whole-trace graph (GBs on xl) before the chunked modes.
        del serial
        gc.collect()

        chunked_serial, wall, cpu = _timed(
            lambda: detect_races_chunked(trace)
        )
        modes["chunked_serial"] = batch_entry(
            chunked_serial,
            wall,
            cpu,
            {
                "chunks": chunked_serial.chunks,
                "chunk_size": chunked_serial.chunk_size,
                "chunk_overlap": chunked_serial.overlap,
                "workers": 1,
            },
        )
        del chunked_serial
        gc.collect()

        chunked_parallel, wall, cpu = _timed(
            lambda: detect_races_chunked(trace, workers=workers)
        )
        modes["chunked_parallel"] = batch_entry(
            chunked_parallel,
            wall,
            cpu,
            {
                "chunks": chunked_parallel.chunks,
                "chunk_size": chunked_parallel.chunk_size,
                "chunk_overlap": chunked_parallel.overlap,
                "workers": workers,
            },
        )
        del chunked_parallel
        gc.collect()

        serial_wall = modes["serial"]["wall_seconds"]
        return {
            "preset": preset,
            "system": STREAM_BENCH_SYSTEM,
            "seed": STREAM_BENCH_SEED,
            "trace": {
                "records": records,
                "streams": generated.streams,
                "planted_races": len(planted),
            },
            "modes": modes,
            "equal": {
                "streaming_matches_serial": {
                    frozenset(p) for p in stream_pairs
                }
                == {frozenset(p) for p in serial_pairs},
            },
            "speedup": {
                name + "_vs_serial": round(
                    serial_wall / max(modes[name]["wall_seconds"], 1e-9), 3
                )
                for name in ("streaming", "chunked_serial", "chunked_parallel")
            },
        }
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)


def bench_detect_data(
    bug_ids=BENCH_REPRESENTATIVES,
    workers: Optional[int] = None,
    stream_presets=None,
) -> Dict[str, object]:
    """The ``BENCH_detect.json`` document."""
    import os
    import platform
    import sys

    if workers is None:
        workers = min(4, max(2, os.cpu_count() or 1))
    document = {
        "format": "repro-bench-detect",
        "version": 2,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "chunk_geometry": "derived",
        "benchmarks": [
            _guarded(
                bug_id,
                lambda bug_id=bug_id: _bench_detect_one(bug_id, workers),
            )
            for bug_id in bug_ids
        ],
    }
    if stream_presets:
        document["stream_benchmarks"] = [
            _guarded(
                f"stream-{preset}",
                lambda preset=preset: _bench_stream_one(preset, workers),
            )
            for preset in stream_presets
        ]
    return document


def write_bench_detect_json(
    path=BENCH_DETECT_JSON_PATH,
    bug_ids=BENCH_REPRESENTATIVES,
    workers: Optional[int] = None,
    stream_presets=None,
) -> Path:
    import json

    path = Path(path)
    document = bench_detect_data(bug_ids, workers, stream_presets)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.runner",
        description="run one pipeline per mini system and write "
        "BENCH_pipeline.json (or BENCH_detect.json with --detect)",
    )
    parser.add_argument("--out", default=None, help="output path")
    parser.add_argument(
        "--bugs",
        nargs="*",
        default=list(BENCH_REPRESENTATIVES),
        help="benchmark ids to time",
    )
    parser.add_argument(
        "--detect",
        action="store_true",
        help="benchmark serial/parallel/compressed detection instead of "
        "the end-to-end pipeline",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the detect bench's parallel modes "
        "(default: min(4, cpu_count))",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="also measure durable (write-ahead logged) tracing overhead, "
        "writing WALs under DIR (pipeline bench only)",
    )
    parser.add_argument(
        "--stream",
        nargs="+",
        default=None,
        choices=("small", "medium", "xl"),
        metavar="PRESET",
        help="also benchmark streaming vs batch vs chunked detection on "
        "generated workloads of these sizes (detect bench only)",
    )
    parser.add_argument(
        "--sampling",
        nargs="+",
        default=None,
        choices=("small", "medium", "xl"),
        metavar="PRESET",
        help="also benchmark sampled tracing (overhead + planted-race "
        "recall at rates 1.0/0.1/0.01) on generated workloads of these "
        "sizes (pipeline bench only)",
    )
    args = parser.parse_args(argv)
    if args.detect:
        path = write_bench_detect_json(
            args.out or BENCH_DETECT_JSON_PATH,
            args.bugs,
            args.workers,
            args.stream,
        )
    else:
        path = write_bench_json(
            args.out or BENCH_JSON_PATH,
            args.bugs,
            args.trace_dir,
            args.sampling,
        )
    print(f"bench results written to {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
