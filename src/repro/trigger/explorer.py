"""Ordering exploration and report validation (paper Section 5).

For each DCbug report the explorer re-runs the system once per ordering
permutation of the racing pair ("A before B", then "B before A"),
steering execution with the controller + gates.  The verdict follows the
paper's categories (Section 7.1):

* both orders enforceable, some enforced run fails  → **HARMFUL**
* both orders enforceable, no failures               → **BENIGN** (true
  race, tolerated by the system's fault-tolerance)
* the pair never co-occurs / only one order possible → **SERIAL** (the HB
  model missed custom synchronization: detector false positive)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.detect.report import BugReport, ReportSet, Verdict
from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.failures import FailureEvent, FailureKind, FailureLog
from repro.trigger.controller import OrderController
from repro.trigger.gates import GateSpec, TriggerInterceptor
from repro.trigger.placement import GatePlan

#: A factory that builds a fresh, ready-to-run cluster for one seed.
ClusterFactory = Callable[[int], Cluster]


def prioritize_reports(reports) -> List[BugReport]:
    """Trigger order: strongest soundness tier first.

    SP-sound reports carry a feasibility witness — a sync-preserving
    reordering that produces the race — so they are the likeliest to
    enforce and the first to spend re-execution budget on; under a
    stage deadline the reports left UNKNOWN are the weakest ones.
    Within a soundness tier, full-confidence reports go before partial
    and sampled ones (a sampled trace may have lost the evidence that
    would make the enforcement succeed).  Stable by report id within a
    tier, so pipelines without the SP tier keep their historical
    trigger order exactly."""
    from repro.detect.report import CONFIDENCE_RANK, SOUNDNESS_RANK

    return sorted(
        reports,
        key=lambda r: (
            -SOUNDNESS_RANK.get(r.soundness, 0),
            CONFIDENCE_RANK.get(getattr(r, "confidence", "full"), 0),
            r.report_id,
        ),
    )


def _confirm_soundness(report: BugReport, verdict: Verdict) -> None:
    """HARMFUL/BENIGN mean both orders really executed: the race is no
    longer predicted but observed.  SERIAL/UNKNOWN leave the detector's
    tier untouched (never downgrade — a later SERIAL plan variant must
    not erase an earlier confirmation)."""
    if verdict in (Verdict.HARMFUL, Verdict.BENIGN):
        if report.soundness != "trigger-confirmed":
            report.soundness = "trigger-confirmed"
            obs.counter(
                "detect_soundness_tier_total",
                "candidates per soundness tier",
            ).labels(tier="trigger-confirmed").inc()


@dataclass
class TriggerRun:
    """One controlled re-execution."""

    order: Tuple[str, str]
    seed: int
    enforced: bool
    co_occurred: bool
    result: RunResult
    #: Non-None when the re-execution itself blew up (factory error,
    #: substrate bug): the run is recorded, never propagated.
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.result.harmful

    def describe(self) -> str:
        status = "enforced" if self.enforced else (
            "co-occurred" if self.co_occurred else "no-overlap"
        )
        kinds = ",".join(sorted({k.value for k in self.result.failure_kinds()}))
        fail = f" FAILURES[{kinds}]" if kinds else ""
        err = f" ERROR[{self.error}]" if self.error else ""
        return f"{self.order[0]}->{self.order[1]} seed={self.seed}: {status}{fail}{err}"


@dataclass
class TriggerOutcome:
    """All runs for one report plus the final verdict."""

    report: BugReport
    plan: GatePlan
    runs: List[TriggerRun] = field(default_factory=list)
    verdict: Verdict = Verdict.UNKNOWN
    detail: str = ""

    def describe(self) -> str:
        lines = [f"report #{self.report.report_id}: {self.verdict.value}"]
        lines.append(self.plan.describe())
        lines.extend("  " + run.describe() for run in self.runs)
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


class TriggerModule:
    """End-to-end triggering: run both orders, classify the report."""

    def __init__(
        self,
        factory: ClusterFactory,
        seeds: Sequence[int] = (0, 1),
        max_wait: Optional[int] = None,
    ) -> None:
        """``max_wait`` arms the controller's watchdog: a gated party
        held longer than this many logical clock ticks is released (the
        run then counts as not enforced instead of hanging)."""
        self.factory = factory
        self.seeds = tuple(seeds)
        self.max_wait = max_wait

    def validate(self, report: BugReport, plan: GatePlan) -> TriggerOutcome:
        with obs.span("trigger.validate", report=report.report_id):
            outcome = self._validate(report, plan)
        obs.counter(
            "trigger_verdicts_total", "trigger verdicts reached"
        ).labels(verdict=outcome.verdict.value).inc()
        return outcome

    def _validate(self, report: BugReport, plan: GatePlan) -> TriggerOutcome:
        outcome = TriggerOutcome(report=report, plan=plan)
        orders = [("A", "B"), ("B", "A")]
        enforced_orders = set()
        failing_runs: List[TriggerRun] = []
        for order in orders:
            for seed in self.seeds:
                run = self._run_once(order, seed, plan.gates)
                outcome.runs.append(run)
                if run.enforced:
                    enforced_orders.add(order)
                    if run.failed:
                        failing_runs.append(run)
                    break  # this order is settled; try the other one

        if failing_runs and enforced_orders:
            outcome.verdict = Verdict.HARMFUL
            kinds = sorted(
                {
                    k.value
                    for run in failing_runs
                    for k in run.result.failure_kinds()
                }
            )
            outcome.detail = (
                f"failure ({', '.join(kinds)}) when enforcing "
                + ", ".join(f"{o[0]}->{o[1]}" for o in sorted(enforced_orders))
            )
        elif len(enforced_orders) == 2:
            outcome.verdict = Verdict.BENIGN
            outcome.detail = "both orders executed without failures"
        else:
            outcome.verdict = Verdict.SERIAL
            outcome.detail = (
                "orders could not be enforced: accesses appear ordered by "
                "synchronization the HB model did not capture"
            )
        report.verdict = outcome.verdict
        report.verdict_detail = outcome.detail
        _confirm_soundness(report, outcome.verdict)
        return outcome

    def validate_report(
        self,
        report: BugReport,
        placement: "object",
        max_candidates: int = 3,
    ) -> TriggerOutcome:
        """Validate a report, trying several dynamic candidates.

        The paper's prototype gates the first dynamic instance of each
        racing instruction and notes that failures tied to a *specific*
        instance may be missed.  We mitigate that: if the first
        candidate's plan only proves SERIAL, try the plans of later
        candidates (deduplicated) before settling.
        """
        from repro.detect.report import _SEVERITY as severity

        tried = set()
        best: Optional[TriggerOutcome] = None
        for candidate in report.candidates[:max_candidates]:
            for plan in placement.plan_variants(candidate):
                signature = tuple(
                    (party, spec.site, spec.kinds, spec.instance)
                    for party, spec in sorted(plan.gates.items())
                )
                if signature in tried:
                    continue
                tried.add(signature)
                outcome = self.validate(report, plan)
                if outcome.verdict is Verdict.HARMFUL:
                    return outcome
                if best is None or severity[outcome.verdict] > severity[best.verdict]:
                    best = outcome
                if outcome.verdict is Verdict.BENIGN:
                    break  # variants are fallbacks for SERIAL only
        if best is not None:
            # validate() mutated the report on every call; restore the
            # most severe outcome as the final word.
            report.verdict = best.verdict
            report.verdict_detail = best.detail
            _confirm_soundness(report, best.verdict)
        return best

    def validate_all(
        self, reports: ReportSet, plans: Dict[int, GatePlan]
    ) -> List[TriggerOutcome]:
        outcomes = []
        for report in reports:
            plan = plans.get(report.report_id)
            if plan is None:
                continue
            outcomes.append(self.validate(report, plan))
        return outcomes

    # -- internals ----------------------------------------------------------

    def _run_once(
        self, order: Tuple[str, str], seed: int, gates: Dict[str, GateSpec]
    ) -> TriggerRun:
        """One controlled re-execution, isolated from the caller.

        ``cluster.run()`` already converts modeled deadlocks and hangs
        into failure events on a normal ``RunResult``.  Anything else that
        escapes (a factory error, a substrate bug) is captured as this
        run's ``error`` — never propagated, so one broken re-execution
        cannot take down the whole validation pass.
        """
        obs.counter(
            "trigger_runs_total", "controlled trigger re-executions"
        ).inc()
        controller = OrderController(order, max_wait=self.max_wait)
        try:
            cluster = self.factory(seed)
            fresh_gates = {
                party: GateSpec(
                    site=spec.site,
                    kinds=spec.kinds,
                    instance=spec.instance,
                    note=spec.note,
                )
                for party, spec in gates.items()
            }
            TriggerInterceptor(controller, fresh_gates).bind(cluster)
            result = cluster.run()
        except Exception as exc:  # noqa: BLE001 - isolate the re-run
            failures = FailureLog()
            failures.record(
                FailureEvent(
                    kind=FailureKind.UNCAUGHT,
                    node="<trigger>",
                    thread="<explorer>",
                    message=f"{type(exc).__name__}: {exc}",
                    step=0,
                )
            )
            result = RunResult(
                name=f"trigger-{order[0]}{order[1]}-s{seed}",
                seed=seed,
                steps=0,
                clock=0,
                completed=False,
                failures=failures,
                wall_seconds=0.0,
                ops=0,
            )
            return TriggerRun(
                order=order,
                seed=seed,
                enforced=False,
                co_occurred=False,
                result=result,
                error=f"{type(exc).__name__}: {exc}",
            )
        return TriggerRun(
            order=order,
            seed=seed,
            enforced=controller.enforced,
            co_occurred=controller.co_occurred,
            result=result,
        )
