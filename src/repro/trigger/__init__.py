"""DCbug triggering and validation (paper Section 5)."""

from repro.trigger.controller import OrderController
from repro.trigger.explorer import (
    ClusterFactory,
    TriggerModule,
    TriggerOutcome,
    TriggerRun,
)
from repro.trigger.gates import GateSpec, TriggerInterceptor
from repro.trigger.naive import NaiveOutcome, NaiveSleepTrigger, SleepInjector
from repro.trigger.placement import (
    DEFAULT_INSTANCE_THRESHOLD,
    GatePlan,
    PlacementAnalyzer,
)

__all__ = [
    "OrderController",
    "GateSpec",
    "TriggerInterceptor",
    "GatePlan",
    "PlacementAnalyzer",
    "DEFAULT_INSTANCE_THRESHOLD",
    "TriggerModule",
    "TriggerOutcome",
    "TriggerRun",
    "ClusterFactory",
    "NaiveSleepTrigger",
    "NaiveOutcome",
    "SleepInjector",
]
