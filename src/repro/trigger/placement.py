"""Timing-manipulation strategy: where to put the request APIs.

Paper Section 5.2.  Gating right before the racing accesses can deadlock
the system or drown the controller in dynamic instances; DCatch analyzes
the trace to pick safer, rarer program points:

1. both accesses in event handlers of the same single-consumer queue →
   gate the corresponding *enqueue* operations;
2. both accesses in RPC handlers served by the same handler thread →
   gate the corresponding RPC *callers*;
3. both accesses inside critical sections of the same lock → gate right
   before the enclosing critical sections' acquire;
4. a racing site with many dynamic instances → walk the happens-before
   graph backward to a causally-preceding operation (in another node when
   possible) with few instances, and gate there;
5. otherwise → gate the access itself.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.detect.report import BugReport
from repro.hb.graph import HBGraph
from repro.ids import Site
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace
from repro.trigger.gates import GateSpec

#: Above this many dynamic instances of a site, rule 4 kicks in.
DEFAULT_INSTANCE_THRESHOLD = 8

_MEM_KINDS = frozenset({OpKind.MEM_READ, OpKind.MEM_WRITE})


@dataclass
class GatePlan:
    """Gates for the two parties plus the rules that shaped them."""

    gates: Dict[str, GateSpec]
    rules: List[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"  {party}: {spec.describe()}" for party, spec in self.gates.items()]
        if self.rules:
            lines.append("  rules: " + "; ".join(self.rules))
        return "\n".join(lines)


class PlacementAnalyzer:
    """Derives a ``GatePlan`` for a bug report from its trace."""

    def __init__(
        self,
        trace: Trace,
        graph: Optional[HBGraph] = None,
        instance_threshold: int = DEFAULT_INSTANCE_THRESHOLD,
        smart: bool = True,
    ) -> None:
        """``smart=False`` disables all placement rules (gates go right
        before the racing accesses) — the naive placement the paper's
        Section 7.2 reports failing for 23 of 35 true races."""
        self.trace = trace
        self.graph = graph
        self.instance_threshold = instance_threshold
        self.smart = smart
        self._site_counts: Counter = Counter(
            r.site for r in trace.records if r.site is not None
        )
        self._segment_opener: Dict[int, OpEvent] = {}
        for record in trace.records:
            self._segment_opener.setdefault(record.segment, record)
        self._event_creates: Dict[object, OpEvent] = {
            r.obj_id: r
            for r in trace.records
            if r.kind is OpKind.EVENT_CREATE
        }
        self._rpc_creates: Dict[object, OpEvent] = {
            r.obj_id: r for r in trace.records if r.kind is OpKind.RPC_CREATE
        }

    # -- public -----------------------------------------------------------

    def plan(self, report: BugReport) -> GatePlan:
        return self.plan_candidate(report.representative)

    def plan_candidate(self, candidate) -> GatePlan:
        a, b = candidate.accesses()
        rules: List[str] = []

        if not self.smart:
            return GatePlan(
                gates={
                    "A": self._gate_for(a, {a.kind}, "naive direct"),
                    "B": self._gate_for(b, {b.kind}, "naive direct"),
                },
                rules=["naive placement (no analysis)"],
            )

        pair_gates = self._same_queue_rule(a, b, rules)
        if pair_gates is None:
            pair_gates = self._same_rpc_thread_rule(a, b, rules)
        if pair_gates is None:
            pair_gates = self._same_lock_rule(a, b, rules)
        if pair_gates is not None:
            return GatePlan(gates={"A": pair_gates[0], "B": pair_gates[1]}, rules=rules)

        gates = {
            "A": self._per_access_gate(a, rules, "A"),
            "B": self._per_access_gate(b, rules, "B"),
        }
        return GatePlan(gates=gates, rules=rules)

    def plan_variants(self, candidate) -> List[GatePlan]:
        """Placement plans in preference order.

        The primary plan gates as close to the accesses as the pair
        rules allow.  If holding a gate inside an RPC handler starves
        the other party (the primary plan then fails to enforce an
        order), the fallback variant moves such gates to the RPC callers
        — the paper's "move request from inside RPC handlers into RPC
        callers" manoeuvre (Section 7.2).
        """
        primary = self.plan_candidate(candidate)
        plans = [primary]
        if not self.smart:
            return plans

        # Variant: gate the *first* dynamic instances instead of the
        # monitored run's indices.  Gating itself perturbs the schedule,
        # so the k-th instance of the monitored run may not be the k-th
        # instance of the replay; the first instance is stable (the
        # paper's prototype gates first instances for the same reason).
        first = self._first_instance_variant(primary)
        if first is not None:
            plans.append(first)

        rules: List[str] = []
        moved = {}
        any_moved = False
        for party, access in zip(("A", "B"), candidate.accesses()):
            gate = self._rpc_caller_gate(access, rules, party)
            if gate is not None:
                moved[party] = gate
                any_moved = True
            else:
                moved[party] = self._per_access_gate(access, rules, party)
        if any_moved:
            plans.append(GatePlan(gates=moved, rules=rules))
        return plans

    def _first_instance_variant(self, plan: GatePlan) -> Optional[GatePlan]:
        if all(spec.instance == 0 for spec in plan.gates.values()):
            return None
        gates = {}
        seen_specs = []
        for party, spec in sorted(plan.gates.items()):
            instance = 0
            for other in seen_specs:
                if other == (spec.site, spec.kinds):
                    instance += 1  # same-site gates disambiguate by arrival
            seen_specs.append((spec.site, spec.kinds))
            gates[party] = GateSpec(
                site=spec.site,
                kinds=spec.kinds,
                instance=instance,
                note=spec.note + " (first instance)",
            )
        return GatePlan(
            gates=gates,
            rules=plan.rules + ["variant: first dynamic instances"],
        )

    def _rpc_caller_gate(
        self, access: OpEvent, rules: List[str], party: str
    ) -> Optional[GateSpec]:
        opener = self._segment_opener.get(access.segment)
        if opener is None or opener.kind is not OpKind.RPC_BEGIN:
            return None
        create = self._rpc_creates.get(opener.obj_id)
        if create is None:
            return None
        rules.append(
            f"{party}: moved out of RPC handler "
            f"{opener.extra.get('method', '?')} to its caller"
        )
        return self._gate_for(create, {OpKind.RPC_CREATE}, "rule-2 rpc caller")

    # -- rule 1: single-consumer event queue ---------------------------------

    def _same_queue_rule(
        self, a: OpEvent, b: OpEvent, rules: List[str]
    ) -> Optional[Tuple[GateSpec, GateSpec]]:
        opener_a = self._segment_opener.get(a.segment)
        opener_b = self._segment_opener.get(b.segment)
        if (
            opener_a is None
            or opener_b is None
            or opener_a.kind is not OpKind.EVENT_BEGIN
            or opener_b.kind is not OpKind.EVENT_BEGIN
        ):
            return None
        if not (
            opener_a.extra.get("single_consumer")
            and opener_b.extra.get("single_consumer")
            and opener_a.extra.get("queue") == opener_b.extra.get("queue")
        ):
            return None
        create_a = self._event_creates.get(opener_a.obj_id)
        create_b = self._event_creates.get(opener_b.obj_id)
        if create_a is None or create_b is None:
            return None
        rules.append(
            "same single-consumer queue: gating the enqueue operations"
        )
        return (
            self._gate_for(create_a, {OpKind.EVENT_CREATE}, "rule-1 enqueue"),
            self._gate_for(create_b, {OpKind.EVENT_CREATE}, "rule-1 enqueue"),
        )

    # -- rule 2: same RPC handler thread ---------------------------------------

    def _same_rpc_thread_rule(
        self, a: OpEvent, b: OpEvent, rules: List[str]
    ) -> Optional[Tuple[GateSpec, GateSpec]]:
        opener_a = self._segment_opener.get(a.segment)
        opener_b = self._segment_opener.get(b.segment)
        if (
            opener_a is None
            or opener_b is None
            or opener_a.kind is not OpKind.RPC_BEGIN
            or opener_b.kind is not OpKind.RPC_BEGIN
        ):
            return None
        if opener_a.obj_id == opener_b.obj_id:
            return None  # same call, not two conflicting handlers
        if (
            opener_a.extra.get("handler_thread")
            != opener_b.extra.get("handler_thread")
        ):
            return None
        if opener_a.extra.get("handler_threads", 1) > 1:
            # A multi-threaded server can interleave the two handlers
            # even though this run served both on one thread; holding
            # inside the handlers is safe there, and gating the callers
            # would serialize away the very interleaving under test.
            return None
        create_a = self._rpc_creates.get(opener_a.obj_id)
        create_b = self._rpc_creates.get(opener_b.obj_id)
        if create_a is None or create_b is None:
            return None
        rules.append("same RPC handler thread: gating the RPC callers")
        return (
            self._gate_for(create_a, {OpKind.RPC_CREATE}, "rule-2 rpc caller"),
            self._gate_for(create_b, {OpKind.RPC_CREATE}, "rule-2 rpc caller"),
        )

    # -- rule 3: same lock -------------------------------------------------------

    def _same_lock_rule(
        self, a: OpEvent, b: OpEvent, rules: List[str]
    ) -> Optional[Tuple[GateSpec, GateSpec]]:
        locks_a = self._enclosing_lock_acquires(a)
        locks_b = self._enclosing_lock_acquires(b)
        shared = set(locks_a) & set(locks_b)
        if not shared:
            return None
        lock_id = sorted(shared, key=str)[0]
        rules.append(
            f"same lock {lock_id}: gating before the critical sections"
        )
        return (
            self._gate_for(
                locks_a[lock_id], {OpKind.LOCK_ACQUIRE}, "rule-3 critical section"
            ),
            self._gate_for(
                locks_b[lock_id], {OpKind.LOCK_ACQUIRE}, "rule-3 critical section"
            ),
        )

    def _enclosing_lock_acquires(self, access: OpEvent) -> Dict[object, OpEvent]:
        """Locks held at the access, mapped to their acquire records."""
        held: Dict[object, List[OpEvent]] = defaultdict(list)
        for record in self.trace.records:
            if record.tid != access.tid:
                continue
            if record.seq >= access.seq:
                break
            if record.kind is OpKind.LOCK_ACQUIRE:
                held[record.obj_id].append(record)
            elif record.kind is OpKind.LOCK_RELEASE and held[record.obj_id]:
                held[record.obj_id].pop()
        return {lock: acquires[-1] for lock, acquires in held.items() if acquires}

    # -- rule 4 / default: per-access gates ----------------------------------------

    def _per_access_gate(
        self, access: OpEvent, rules: List[str], party: str
    ) -> GateSpec:
        count = self._site_counts.get(access.site, 1)
        if self.smart and count > self.instance_threshold and self.graph is not None:
            moved = self._move_up_hb(access)
            if moved is not None:
                rules.append(
                    f"{party}: {count} dynamic instances at {access.site}; "
                    f"moved gate along HB graph to {moved.site}"
                )
                return self._gate_for(moved, None, "rule-4 hb hop")
        # Gate by the access's own kind: a read and a write on the same
        # source line are distinct instructions (like getfield/putfield
        # in the paper's bytecode), so e.g. a lost-update race can hold
        # the first write until the second read has confirmed.
        return self._gate_for(access, {access.kind}, "direct")

    def _move_up_hb(self, access: OpEvent) -> Optional[OpEvent]:
        """Walk HB predecessors for a rarer, causally-preceding op."""
        start = self.graph._prev_backbone(access)
        if start is None:
            return None
        preds: Dict[int, List[int]] = defaultdict(list)
        for i, succs in enumerate(self.graph._succ):
            for j in succs:
                preds[j].append(i)
        frontier = [start]
        visited = {start}
        best: Optional[OpEvent] = None
        while frontier:
            nxt = []
            for idx in frontier:
                record = self.graph.backbone[idx]
                if (
                    record.site is not None
                    and self._site_counts.get(record.site, 0)
                    <= self.instance_threshold
                ):
                    if record.node != access.node:
                        return record  # prefer a different node, stop early
                    if best is None:
                        best = record
                for p in preds.get(idx, []):
                    if p not in visited:
                        visited.add(p)
                        nxt.append(p)
            frontier = nxt
        return best

    def _gate_for(
        self, record: OpEvent, kinds: Optional[Set[OpKind]], note: str
    ) -> GateSpec:
        spec = GateSpec(
            site=record.site,
            kinds=frozenset(kinds) if kinds else None,
            instance=0,
            note=note,
        )
        # Which dynamic instance was this record, by the gate's own
        # matcher?  (The replay counts the same way.)
        index = 0
        for other in self.trace.records:
            if other.seq >= record.seq:
                break
            if spec.matches(other):
                index += 1
        spec.instance = index
        return spec
