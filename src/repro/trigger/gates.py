"""Gate specifications and the interceptor that enforces them.

A ``GateSpec`` identifies *where* a party's request/confirm APIs would be
inserted: a static site plus the operation kinds expected there, and which
dynamic instance to gate (the paper's prototype "focuses on the first
dynamic instance of every racing instruction").

``TriggerInterceptor`` is installed on the re-run cluster; it calls the
controller's ``request`` before the gated operation executes and
``confirm`` right after it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.ids import Site
from repro.runtime.ops import Interceptor, OpEvent, OpKind
from repro.runtime.scheduler import current_sim_thread
from repro.trigger.controller import OrderController


@dataclass
class GateSpec:
    """One instrumented program point."""

    site: Site
    kinds: Optional[FrozenSet[OpKind]] = None  # None = any kind at the site
    instance: int = 0  # which dynamic instance to gate
    note: str = ""  # which placement rule produced this gate

    def matches(self, event: OpEvent) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        return event.site == self.site

    def describe(self) -> str:
        kinds = (
            ",".join(sorted(k.value for k in self.kinds)) if self.kinds else "any"
        )
        note = f" ({self.note})" if self.note else ""
        return f"{self.site} [{kinds}] instance={self.instance}{note}"


class _GateState:
    __slots__ = ("spec", "seen", "active_event", "done")

    def __init__(self, spec: GateSpec) -> None:
        self.spec = spec
        self.seen = 0
        self.active_event: Optional[OpEvent] = None
        self.done = False


class TriggerInterceptor(Interceptor):
    """Applies a set of party gates during a run."""

    def __init__(self, controller: OrderController, gates: Dict[str, GateSpec]):
        self.controller = controller
        self._states = {party: _GateState(spec) for party, spec in gates.items()}

    def before(self, event: OpEvent) -> None:
        # Count first, block after: a request may park this thread for a
        # long time, and every gate's instance counter must have seen
        # this event before that happens (two gates can share a site).
        to_request = []
        for party, state in self._states.items():
            if state.done or not state.spec.matches(event):
                continue
            index = state.seen
            state.seen += 1
            if index == state.spec.instance:
                # Track by identity: the seq is only assigned when the
                # operation executes (after any gate-induced wait).
                state.active_event = event
                to_request.append(party)
        for party in to_request:
            self.controller.request(party, current_sim_thread())

    def after(self, event: OpEvent) -> None:
        for party, state in self._states.items():
            if state.active_event is event and not state.done:
                state.done = True
                self.controller.confirm(party)

    def bind(self, cluster: "object") -> "TriggerInterceptor":
        cluster.add_interceptor(self)
        cluster.scheduler.on_idle(self.controller.on_idle)
        self.controller.attach_scheduler(cluster.scheduler)
        return self
