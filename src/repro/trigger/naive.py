"""The naive sleep-injection triggering baseline (paper Section 5.1).

"Naively, we could perturb the execution timing by inserting sleep into
the program, like how LCbugs are triggered in some previous work.
However, this naive approach does not work for complicated bugs in
complicated systems, because it is hard to know how long the sleep needs
to be."

This module implements that baseline so the claim is measurable: to
explore "B before A", it injects a sleep right before A's access and
*hopes* B gets there first.  There is no coordination, no confirmation,
no placement analysis — success depends entirely on guessing a good
delay.  The placement-ablation bench compares its confirmation rate with
the controller-based module's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detect.report import BugReport, Verdict
from repro.ids import Site
from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.ops import Interceptor, MEM_KINDS, OpEvent
from repro.runtime.scheduler import current_sim_thread
from repro.trigger.explorer import ClusterFactory


class SleepInjector(Interceptor):
    """Delays the first dynamic access at one site; observes both sites."""

    def __init__(
        self,
        delay_site: Site,
        observe_sites: Tuple[Site, Site],
        delay: int,
    ) -> None:
        self.delay_site = delay_site
        self.observe_sites = observe_sites
        self.delay = delay
        self._delayed = False
        self.first_seq: Dict[Site, int] = {}

    def before(self, event: OpEvent) -> None:
        if event.kind not in MEM_KINDS or event.site is None:
            return
        if not self._delayed and event.site == self.delay_site:
            self._delayed = True
            thread = current_sim_thread()
            thread.sleep_until(thread.scheduler.clock + self.delay)

    def after(self, event: OpEvent) -> None:
        if event.kind not in MEM_KINDS or event.site is None:
            return
        if event.site in self.observe_sites and event.site not in self.first_seq:
            self.first_seq[event.site] = event.seq

    def achieved_order(self) -> Optional[Tuple[Site, Site]]:
        """Which observed site's first instance executed first, if both ran."""
        if len(self.first_seq) < 2:
            return None
        (s1, q1), (s2, q2) = sorted(self.first_seq.items(), key=lambda kv: kv[1])
        return (s1, s2)


@dataclass
class NaiveRun:
    delayed_site: Site
    delay: int
    seed: int
    achieved: Optional[Tuple[Site, Site]]
    result: RunResult


@dataclass
class NaiveOutcome:
    report: BugReport
    runs: List[NaiveRun] = field(default_factory=list)
    verdict: Verdict = Verdict.UNKNOWN
    orders_seen: set = field(default_factory=set)

    def describe(self) -> str:
        lines = [f"naive sleep-injection on report #{self.report.report_id}: "
                 f"{self.verdict.value}"]
        for run in self.runs:
            status = "->".join(str(s) for s in run.achieved) if run.achieved else "?"
            fail = (
                " FAIL" if run.result.harmful else ""
            )
            lines.append(
                f"  delay {run.delay} at {run.delayed_site}: {status}{fail}"
            )
        return "\n".join(lines)


class NaiveSleepTrigger:
    """Validate a report by sleep injection alone."""

    def __init__(
        self,
        factory: ClusterFactory,
        delays: Sequence[int] = (5, 20, 80),
        seeds: Sequence[int] = (0,),
    ) -> None:
        self.factory = factory
        self.delays = tuple(delays)
        self.seeds = tuple(seeds)

    def validate(self, report: BugReport) -> NaiveOutcome:
        a, b = report.representative.accesses()
        site_a, site_b = a.site, b.site
        outcome = NaiveOutcome(report=report)
        if site_a is None or site_b is None or site_a == site_b:
            outcome.verdict = Verdict.UNKNOWN
            return outcome
        failing_orders = set()
        for delay_site, want in (
            (site_a, (site_b, site_a)),  # delay A hoping B goes first
            (site_b, (site_a, site_b)),  # delay B hoping A goes first
        ):
            for delay in self.delays:
                for seed in self.seeds:
                    cluster = self.factory(seed)
                    injector = SleepInjector(delay_site, (site_a, site_b), delay)
                    cluster.add_interceptor(injector)
                    result = cluster.run()
                    achieved = injector.achieved_order()
                    run = NaiveRun(delay_site, delay, seed, achieved, result)
                    outcome.runs.append(run)
                    if achieved is not None:
                        outcome.orders_seen.add(achieved)
                        if result.harmful:
                            failing_orders.add(achieved)
                if want in outcome.orders_seen:
                    break  # this direction achieved; stop growing delays

        if failing_orders:
            outcome.verdict = Verdict.HARMFUL
        elif len(outcome.orders_seen) == 2:
            outcome.verdict = Verdict.BENIGN
        else:
            # Could not demonstrate both orders: inconclusive — the
            # paper's point about not knowing how long to sleep.
            outcome.verdict = Verdict.SERIAL
        report_verdict = outcome.verdict
        del report_verdict  # naive runs never overwrite the report verdict
        return outcome
