"""The message-controller server (paper Section 5.1).

Two parties ("A" and "B" — the two sides of a DCbug report) send
*request* messages before their gated operation and *confirm* messages
right after it.  The controller waits for both requests, grants the
desired first party, waits for its confirm, then grants the second —
thereby enforcing one of the two orders of the racing pair.

Two safety valves keep a bad gate placement (the Section 6 risks) from
wedging the run:

* **idle release** — if the whole simulation goes idle while a party is
  held (the other party can never arrive, e.g. it is blocked behind the
  held one), the scheduler's idle hook releases the held parties;
* **watchdog release** (``max_wait``) — a logical-clock deadline per
  held party.  If the rest of the system stays *busy* (a livelock the
  idle hook never sees) or simply outlasts the deadline, both held
  parties are released when the clock passes it.  The deadline is also
  registered as a scheduler wake hint, so a fully quiescent system
  jumps straight to it instead of waiting out the step budget.

A run where either valve fired did not enforce the order; the explorer
records ``enforced=False`` instead of deadlocking or hanging.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.runtime.scheduler import Scheduler, SimThread


class OrderController:
    """Enforces ``order[0]`` before ``order[1]`` across one run."""

    def __init__(
        self, order: Tuple[str, str], max_wait: Optional[int] = None
    ) -> None:
        if len(order) != 2 or order[0] == order[1]:
            raise ValueError("order must name two distinct parties")
        if max_wait is not None and max_wait <= 0:
            raise ValueError("max_wait must be a positive number of clock ticks")
        self.order = order
        self.max_wait = max_wait
        self.arrived: Dict[str, str] = {}
        self.granted: Set[str] = set()
        self.confirmed: List[str] = []
        self.released_by_idle: Set[str] = set()
        self.released_by_watchdog: Set[str] = set()
        self.log: List[str] = []
        self._scheduler: Optional[Scheduler] = None
        self._deadlines: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------

    def attach_scheduler(self, scheduler: Scheduler) -> None:
        """Give the controller a clock (and a wake hint for deadlines)."""
        self._scheduler = scheduler
        if self.max_wait is not None:
            scheduler.add_wake_hint(self._next_deadline)

    def _next_deadline(self) -> Optional[int]:
        pending = [
            deadline
            for party, deadline in self._deadlines.items()
            if party not in self.granted
        ]
        return min(pending) if pending else None

    # -- client-side APIs (called by the gate interceptor) -------------------

    def request(self, party: str, thread: SimThread) -> None:
        """Block ``thread`` until the controller grants ``party``."""
        self.arrived[party] = thread.name
        self.log.append(f"request {party} from {thread.name}")
        if self.max_wait is not None and self._scheduler is not None:
            self._deadlines[party] = self._scheduler.clock + self.max_wait
        self._maybe_grant()
        thread.block_until(
            lambda: party in self.granted or self._watchdog_release(party),
            f"gate:{party}",
        )
        self.log.append(f"resume {party}")

    def confirm(self, party: str) -> None:
        if party in self.granted and party not in self.confirmed:
            self.confirmed.append(party)
            self.log.append(f"confirm {party}")
            self._maybe_grant()

    # -- controller logic -----------------------------------------------------

    def _maybe_grant(self) -> None:
        first, second = self.order
        if (
            first in self.arrived
            and second in self.arrived
            and first not in self.granted
        ):
            self.granted.add(first)
            self.log.append(f"grant {first}")
        if (
            first in self.confirmed
            and second in self.arrived
            and second not in self.granted
        ):
            self.granted.add(second)
            self.log.append(f"grant {second}")

    def _watchdog_release(self, party: str) -> bool:
        """Deadline check, evaluated by the scheduler inside the gate's
        wait predicate.  Once any held party's deadline passes, *all*
        held parties are released — a half-released pair would just move
        the hang to the other gate."""
        if self.max_wait is None or self._scheduler is None:
            return False
        deadline = self._deadlines.get(party)
        if deadline is None or self._scheduler.clock < deadline:
            return False
        released = [p for p in self.arrived if p not in self.granted]
        for held in released:
            self.granted.add(held)
            self.released_by_watchdog.add(held)
            self.log.append(f"watchdog-release {held}")
        if released:
            obs.counter(
                "trigger_watchdog_releases_total",
                "gated parties released by the max_wait watchdog",
            ).inc(len(released))
            print(
                f"warning: trigger watchdog released "
                f"{', '.join(sorted(released))} after {self.max_wait} "
                f"clock ticks: order {self.order[0]}->{self.order[1]} "
                "not enforced",
                file=sys.stderr,
            )
        return True

    def on_idle(self) -> None:
        """Scheduler idle hook: release held parties to avoid stalls."""
        released = [p for p in self.arrived if p not in self.granted]
        for party in released:
            self.granted.add(party)
            self.released_by_idle.add(party)
            self.log.append(f"idle-release {party}")
        if released:
            obs.counter(
                "trigger_idle_releases_total",
                "gated parties released by the scheduler idle hook",
            ).inc(len(released))
            print(
                f"warning: trigger idle-released {', '.join(sorted(released))}: "
                f"order {self.order[0]}->{self.order[1]} not enforced",
                file=sys.stderr,
            )

    # -- outcome ---------------------------------------------------------------

    @property
    def enforced(self) -> bool:
        """Did the desired order actually happen, under control?"""
        return (
            self.confirmed == list(self.order)
            and not self.released_by_idle
            and not self.released_by_watchdog
        )

    @property
    def co_occurred(self) -> bool:
        """Did both parties reach their gates in this run at all?"""
        return len(self.arrived) == 2
