"""The message-controller server (paper Section 5.1).

Two parties ("A" and "B" — the two sides of a DCbug report) send
*request* messages before their gated operation and *confirm* messages
right after it.  The controller waits for both requests, grants the
desired first party, waits for its confirm, then grants the second —
thereby enforcing one of the two orders of the racing pair.

Safety valve: if the whole simulation goes idle while a party is held
(the other party can never arrive — e.g. it is blocked behind the held
one), the scheduler's idle hook releases the held parties.  A run where
that happened did not enforce the order; the explorer records it as such
instead of deadlocking the system.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.runtime.scheduler import SimThread


class OrderController:
    """Enforces ``order[0]`` before ``order[1]`` across one run."""

    def __init__(self, order: Tuple[str, str]) -> None:
        if len(order) != 2 or order[0] == order[1]:
            raise ValueError("order must name two distinct parties")
        self.order = order
        self.arrived: Dict[str, str] = {}
        self.granted: Set[str] = set()
        self.confirmed: List[str] = []
        self.released_by_idle: Set[str] = set()
        self.log: List[str] = []

    # -- client-side APIs (called by the gate interceptor) -------------------

    def request(self, party: str, thread: SimThread) -> None:
        """Block ``thread`` until the controller grants ``party``."""
        self.arrived[party] = thread.name
        self.log.append(f"request {party} from {thread.name}")
        self._maybe_grant()
        thread.block_until(lambda: party in self.granted, f"gate:{party}")
        self.log.append(f"resume {party}")

    def confirm(self, party: str) -> None:
        if party in self.granted and party not in self.confirmed:
            self.confirmed.append(party)
            self.log.append(f"confirm {party}")
            self._maybe_grant()

    # -- controller logic -----------------------------------------------------

    def _maybe_grant(self) -> None:
        first, second = self.order
        if (
            first in self.arrived
            and second in self.arrived
            and first not in self.granted
        ):
            self.granted.add(first)
            self.log.append(f"grant {first}")
        if (
            first in self.confirmed
            and second in self.arrived
            and second not in self.granted
        ):
            self.granted.add(second)
            self.log.append(f"grant {second}")

    def on_idle(self) -> None:
        """Scheduler idle hook: release held parties to avoid stalls."""
        for party in list(self.arrived):
            if party not in self.granted:
                self.granted.add(party)
                self.released_by_idle.add(party)
                self.log.append(f"idle-release {party}")

    # -- outcome ---------------------------------------------------------------

    @property
    def enforced(self) -> bool:
        """Did the desired order actually happen, under control?"""
        return (
            self.confirmed == list(self.order)
            and not self.released_by_idle
        )

    @property
    def co_occurred(self) -> bool:
        """Did both parties reach their gates in this run at all?"""
        return len(self.arrived) == 2
