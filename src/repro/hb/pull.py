"""Rule-Mpull: loop-based (pull) synchronization analysis.

Paper Section 3.2.1: a node keeps polling some status until it observes an
update; the update in the writer therefore happens before the loop exit in
the poller.  The paper detects candidate polling reads statically, re-runs
the software tracing only those reads and their writes, and uses the
observed last-writer to place the HB edge.  Our heap already versions
every location (reads record which write they observed), so the "focused
second run" is subsumed: the same evidence is in the primary trace.  The
inference logic is the same.

Two patterns are recognized, both from the paper:

* **Local / direct polling loop** — the same thread reads the same
  location from the same static site at least twice, and the final read
  observes a *different* write, from a different thread, than the earlier
  reads did.  The observed write then happens-before the final read (and
  hence the loop exit that follows it).  This also covers single-machine
  while-loop custom synchronization.

* **Distributed RPC polling loop** — a thread repeatedly issues the same
  RPC from the same call site (``while (!getTask(jID))`` in the paper's
  Figure 2); each execution of the RPC handler reads some location.  If
  the handler read under the *final* call observed a write that earlier
  calls did not, that write happens-before the final ``Join`` on the
  caller (the loop exit on the remote node).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ids import Site
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace


@dataclass(frozen=True)
class PullEdge:
    """An inferred Update => Pulled happens-before edge."""

    write_seq: int
    read_seq: int  # the final poll read, or the final RPC Join
    kind: str  # "local-loop" or "rpc-loop"

    def as_tuple(self) -> Tuple[int, int]:
        return (self.write_seq, self.read_seq)


def infer_pull_edges(trace: Trace) -> List[PullEdge]:
    """All Rule-Mpull edges supported by the trace."""
    edges = _local_loop_edges(trace)
    edges.extend(_rpc_loop_edges(trace))
    return edges


def _local_loop_edges(trace: Trace) -> List[PullEdge]:
    # Group reads by (thread, static site, location), preserving order.
    groups: Dict[Tuple[int, Optional[Site], tuple], List[OpEvent]] = defaultdict(list)
    for record in trace.records:
        if record.kind is OpKind.MEM_READ and record.location is not None:
            groups[(record.tid, record.site, record.location)].append(record)
    edges = []
    for (tid, site, _loc), reads in groups.items():
        if site is None or len(reads) < 2:
            continue
        last = reads[-1]
        earlier_writes = {r.observed_write for r in reads[:-1]}
        if last.observed_write is None:
            continue
        if last.observed_write in earlier_writes:
            continue  # the loop never waited on a fresh value
        writer = trace.by_seq(last.observed_write)
        if writer is None or writer.tid == tid:
            continue  # not cross-thread synchronization
        edges.append(PullEdge(last.observed_write, last.seq, "local-loop"))
    return edges


def _rpc_loop_edges(trace: Trace) -> List[PullEdge]:
    # Pair caller-side RPC records by tag, and index handler-side reads.
    joins_by_tag: Dict[str, OpEvent] = {}
    creates: Dict[str, OpEvent] = {}
    begin_segment: Dict[str, int] = {}
    for record in trace.records:
        if record.kind is OpKind.RPC_CREATE:
            creates[record.obj_id] = record
        elif record.kind is OpKind.RPC_JOIN:
            joins_by_tag[record.obj_id] = record
        elif record.kind is OpKind.RPC_BEGIN:
            begin_segment[record.obj_id] = record.segment

    # Reads executed inside each RPC handler invocation (by segment).
    reads_by_segment: Dict[int, List[OpEvent]] = defaultdict(list)
    for record in trace.records:
        if record.kind is OpKind.MEM_READ:
            reads_by_segment[record.segment].append(record)

    # Polling loops: repeated Create from the same (thread, site, method).
    loops: Dict[Tuple[int, Optional[Site], str], List[OpEvent]] = defaultdict(list)
    for tag, create in creates.items():
        method = create.extra.get("method", "?")
        loops[(create.tid, create.site, method)].append(create)

    edges = []
    for (tid, site, _method), call_creates in loops.items():
        if site is None or len(call_creates) < 2:
            continue
        call_creates.sort(key=lambda r: r.seq)
        observed: List[set] = []
        for create in call_creates:
            segment = begin_segment.get(create.obj_id)
            if segment is None:
                observed.append(set())
                continue
            observed.append(
                {
                    r.observed_write
                    for r in reads_by_segment.get(segment, [])
                    if r.observed_write is not None
                }
            )
        final = observed[-1]
        earlier = set().union(*observed[:-1]) if len(observed) > 1 else set()
        fresh = final - earlier
        last_join = joins_by_tag.get(call_creates[-1].obj_id)
        if last_join is None:
            continue
        for write_seq in sorted(fresh):
            writer = trace.by_seq(write_seq)
            if writer is None or writer.tid == tid:
                continue  # unknown writer, or the poller's own write
            edges.append(PullEdge(write_seq, last_join.seq, "rpc-loop"))
    return edges
