"""Happens-before chain explanation.

Section 2.3 of the paper walks the Figure 3 ordering as a chain:

    W  =P=>  Create(t)  =Tfork=>  Begin(t)  =P=>  Create(rpc)  =Mrpc=> ...

This module reconstructs such chains from an ``HBGraph``: given two
ordered records, ``explain(a, b)`` returns the hops of one happens-before
path, each labeled with the rule that contributed the edge.  Invaluable
for debugging the model, for reports ("why is this pair NOT a race?"),
and for the Figure 3 bench.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.hb.graph import HBGraph
from repro.runtime.ops import OpEvent


@dataclass
class Hop:
    """One edge of an HB chain."""

    source: OpEvent
    target: OpEvent
    rule: str  # "P" for intra-segment program order, else the rule name

    def __str__(self) -> str:
        return (
            f"{self.source.kind.value}@{self.source.site or self.source.node} "
            f"={self.rule}=> {self.target.kind.value}@"
            f"{self.target.site or self.target.node}"
        )


class ChainExplainer:
    """Finds labeled happens-before paths in an ``HBGraph``."""

    def __init__(self, graph: HBGraph) -> None:
        self.graph = graph
        self._edge_rules: Dict[Tuple[int, int], str] = {}
        self._rebuild_edge_rules()

    def _rebuild_edge_rules(self) -> None:
        """Recover rule labels by re-deriving which applier owns an edge.

        ``HBGraph`` counts edges per rule but does not store labels per
        edge; we reconstruct them from the endpoint kinds, which uniquely
        identify the rule for all non-program-order edges.
        """
        from repro.runtime.ops import OpKind

        kind_pairs = {
            (OpKind.THREAD_CREATE, OpKind.THREAD_BEGIN): "Tfork",
            (OpKind.THREAD_END, OpKind.THREAD_JOIN): "Tjoin",
            (OpKind.EVENT_CREATE, OpKind.EVENT_BEGIN): "Eenq",
            (OpKind.EVENT_END, OpKind.EVENT_BEGIN): "Eserial",
            (OpKind.RPC_CREATE, OpKind.RPC_BEGIN): "Mrpc",
            (OpKind.RPC_END, OpKind.RPC_JOIN): "Mrpc",
            (OpKind.SOCK_SEND, OpKind.SOCK_RECV): "Msoc",
            (OpKind.ZK_UPDATE, OpKind.ZK_PUSHED): "Mpush",
        }
        pull_pairs = {
            (edge.write_seq, edge.read_seq): f"Mpull:{edge.kind}"
            for edge in self.graph.pull_edges
        }
        for i, succs in enumerate(self.graph._succ):
            a = self.graph.backbone[i]
            for j in succs:
                b = self.graph.backbone[j]
                if (a.seq, b.seq) in pull_pairs:
                    rule = pull_pairs[(a.seq, b.seq)]
                elif (a.kind, b.kind) in kind_pairs and a.segment != b.segment:
                    rule = kind_pairs[(a.kind, b.kind)]
                else:
                    rule = "P" if a.segment == b.segment else "P?"
                self._edge_rules[(i, j)] = rule

    # -- public -------------------------------------------------------------

    def explain(self, a: OpEvent, b: OpEvent) -> Optional[List[Hop]]:
        """A labeled HB path from ``a`` to ``b``, or None if concurrent."""
        if not self.graph.happens_before(a, b):
            return None
        hops: List[Hop] = []
        seg_a, _pos_a = self.graph._position[a.seq]
        seg_b, _pos_b = self.graph._position[b.seq]
        if seg_a == seg_b:
            return [Hop(a, b, "P")]
        start = self.graph._next_backbone(a)
        goal = self.graph._prev_backbone(b)
        if start is None or goal is None:
            return None
        first_bb = self.graph.backbone[start]
        if first_bb.seq != a.seq:
            hops.append(Hop(a, first_bb, "P"))
        backbone_path = self._bfs(start, goal)
        if backbone_path is None:
            return None
        for i, j in zip(backbone_path, backbone_path[1:]):
            hops.append(
                Hop(
                    self.graph.backbone[i],
                    self.graph.backbone[j],
                    self._edge_rules.get((i, j), "?"),
                )
            )
        last_bb = self.graph.backbone[goal]
        if last_bb.seq != b.seq:
            hops.append(Hop(last_bb, b, "P"))
        return hops

    def render(self, a: OpEvent, b: OpEvent) -> str:
        hops = self.explain(a, b)
        if hops is None:
            return (
                f"{a.kind.value}@{a.site} and {b.kind.value}@{b.site} "
                "are CONCURRENT (no happens-before path)"
            )
        lines = [f"{a.kind.value}@{a.site}"]
        for hop in hops:
            lines.append(
                f"  ={hop.rule}=> {hop.target.kind.value}@"
                f"{hop.target.site or hop.target.node} "
                f"[{hop.target.node}/{hop.target.thread_name}]"
            )
        return "\n".join(lines)

    def rules_used(self, a: OpEvent, b: OpEvent) -> List[str]:
        """The distinct rule families along one path from a to b."""
        hops = self.explain(a, b)
        if hops is None:
            return []
        seen = []
        for hop in hops:
            if hop.rule not in seen:
                seen.append(hop.rule)
        return seen

    # -- internals -----------------------------------------------------------

    def _bfs(self, start: int, goal: int) -> Optional[List[int]]:
        if start == goal:
            return [start]
        parents: Dict[int, int] = {}
        frontier = deque([start])
        visited = {start}
        while frontier:
            i = frontier.popleft()
            for j in sorted(self.graph._succ[i]):
                if j in visited:
                    continue
                visited.add(j)
                parents[j] = i
                if j == goal:
                    path = [j]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append(j)
        return None
