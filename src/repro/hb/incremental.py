"""Incremental happens-before state for single-pass streaming analysis.

The batch pipeline builds a whole-trace :class:`repro.hb.graph.HBGraph`
plus a reachability closure before the detector asks a single query.
That is the memory cliff the ROADMAP's streaming item targets: the
closure grows quadratically with trace length.  This module keeps HB
state *per open segment* instead, in the style of Roemer & Bond's
online set-based engine:

* every segment carries a sparse vector clock ``{segment: count}`` —
  its knowledge of how far into each other segment it is ordered after;
* an HB *source* op (sock send, thread create/end, rpc create/end,
  zk update, event create) files a snapshot of its segment's clock
  under its pairing tag; the matching *sink* op (recv, begin, join,
  pushed) joins that snapshot into its own segment's clock;
* a *frontier* — the componentwise minimum over every live segment
  clock and every unconsumed snapshot — bounds what any future record
  can still be concurrent with.  Accesses at-or-below the frontier can
  be retired and clock entries at the frontier pruned, which is what
  keeps memory bounded on unbounded streams.

Two deliberate restrictions versus the batch graph (both recorded on
the state and surfaced by the streaming detector):

* pairing is **exactly-once**: a snapshot is consumed by its first
  matching sink.  Batch rules allow one send to order multiple
  recvs/joins; online, an unconsumed snapshot would pin the frontier
  forever.  Later sinks for a consumed tag count as ``unmatched``.
* the ``eserial`` and ``pull`` rule families are whole-trace
  inferences and are dropped (``model.without("eserial", "pull")``).

Within those restrictions the ordering relation is *exactly* the batch
graph's ``happens_before`` (the property test in
``tests/detect/test_streaming.py`` cross-checks them), and the
eviction cadence — the ``window`` — affects memory only, never the
candidate set.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.records import _jsonable, _untuple

__all__ = ["StreamingHBState", "STREAM_UNSUPPORTED_FAMILIES"]

#: Rule families the online engine cannot honor (whole-trace inference).
STREAM_UNSUPPORTED_FAMILIES = ("eserial", "pull")

#: Frontier value meaning "no live clock can still race with anything".
_NO_LIVE_CLOCKS = 1 << 62

#: source kind -> (pairing channel, model family)
_SOURCES = {
    OpKind.THREAD_CREATE: ("fork", "fork_join"),
    OpKind.THREAD_END: ("thread_join", "fork_join"),
    OpKind.EVENT_CREATE: ("event", "event"),
    OpKind.RPC_CREATE: ("rpc", "rpc"),
    OpKind.RPC_END: ("rpc_join", "rpc"),
    OpKind.SOCK_SEND: ("sock", "socket"),
    OpKind.ZK_UPDATE: ("zk", "push"),
}

#: sink kind -> (pairing channel, model family)
_SINKS = {
    OpKind.THREAD_BEGIN: ("fork", "fork_join"),
    OpKind.THREAD_JOIN: ("thread_join", "fork_join"),
    OpKind.EVENT_BEGIN: ("event", "event"),
    OpKind.RPC_BEGIN: ("rpc", "rpc"),
    OpKind.RPC_JOIN: ("rpc_join", "rpc"),
    OpKind.SOCK_RECV: ("sock", "socket"),
    OpKind.ZK_PUSHED: ("zk", "push"),
}

#: Kinds that end their segment (no further records will use its clock).
_SEGMENT_CLOSERS = frozenset(
    (OpKind.THREAD_END, OpKind.EVENT_END, OpKind.RPC_END)
)


class StreamingHBState:
    """Bounded-memory happens-before over a seq-ordered record stream."""

    def __init__(
        self,
        model: HBModel = FULL_MODEL,
        expected_streams: Optional[Iterable[int]] = None,
    ) -> None:
        if not model.program_order:
            raise ValueError(
                "StreamingHBState requires program_order=True (segment "
                "clocks assume in-segment ordering)"
            )
        self.model = model.without(*STREAM_UNSUPPORTED_FAMILIES)
        #: segment -> sparse clock {segment: count} (includes own count).
        self._clocks: Dict[int, Dict[int, int]] = {}
        #: (channel, tag) -> clock snapshot of the source, pending a sink.
        self._pending: Dict[Tuple[str, object], Dict[int, int]] = {}
        #: stream (tid) -> its currently open segments.
        self._open: Dict[int, Set[int]] = {}
        self._started: Set[int] = set()
        self._closed_streams: Set[int] = set()
        #: High-water frontier per segment (monotone; retirement floor).
        self._floor: Dict[int, int] = {}
        self._expected: Optional[Set[int]] = (
            set(expected_streams) if expected_streams is not None else None
        )
        self.unmatched: Counter = Counter()
        #: Segments that appeared mid-stream with no matched creating
        #: snapshot — retirement before their birth may have been unsound.
        self.rootless_segments = 0
        self.records_observed = 0
        self._retirement_begun = False

    # -- ingestion ---------------------------------------------------------

    def observe(self, event: OpEvent) -> Tuple[int, int]:
        """Fold one record (next in global seq order) into the state.

        Returns ``(segment, count)`` — the record's logical position,
        which the detector stores for retired-clock-free comparisons.
        """
        self.records_observed += 1
        seg = event.segment
        tid = event.tid
        started_prior = tid in self._started
        clock = self._clocks.get(seg)
        if clock is None:
            clock = {}
            self._clocks[seg] = clock
            self._open.setdefault(tid, set()).add(seg)
            fresh = True
        else:
            fresh = False
        self._started.add(tid)

        kind = event.kind
        sink = _SINKS.get(kind)
        joined = False
        if sink is not None and getattr(self.model, sink[1]):
            snapshot = self._pending.pop((sink[0], event.obj_id), None)
            if snapshot is None:
                self.unmatched[f"{kind.value}_without_source"] += 1
            else:
                joined = True
                for s, c in snapshot.items():
                    if clock.get(s, 0) < c:
                        clock[s] = c
        if (
            fresh
            and not joined
            and self._retirement_begun
            and (
                started_prior
                or self._expected is None
                or tid not in self._expected
            )
        ):
            # A segment born without an ordering root after retirement
            # has begun: earlier retirements assumed no such segment
            # could appear, so already-retired accesses may in fact be
            # concurrent with it.  Surfaced as reduced confidence.
            self.rootless_segments += 1

        count = clock.get(seg, 0) + 1
        clock[seg] = count

        source = _SOURCES.get(kind)
        if source is not None and getattr(self.model, source[1]):
            key = (source[0], event.obj_id)
            if key in self._pending:
                self.unmatched[f"{kind.value}_replaced_pending"] += 1
            self._pending[key] = dict(clock)

        if kind in _SEGMENT_CLOSERS:
            self._close_segment(tid, seg)
        return seg, count

    def _close_segment(self, tid: int, seg: int) -> None:
        open_segs = self._open.get(tid)
        if open_segs is not None:
            open_segs.discard(seg)
        # The clock is no longer a frontier constraint and no future
        # record will extend it; drop it.
        self._clocks.pop(seg, None)

    def close_stream(self, tid: int) -> None:
        """Mark a stream exhausted (its WAL reader hit end-of-stream):
        its segments stop constraining the frontier."""
        self._closed_streams.add(tid)
        self._started.add(tid)
        if self._expected is not None:
            self._expected.add(tid)
        for seg in self._open.pop(tid, set()):
            self._clocks.pop(seg, None)

    # -- queries -----------------------------------------------------------

    def ordered_before(self, a_seg: int, a_count: int, b_event_seg: int) -> bool:
        """Was position ``(a_seg, a_count)`` ordered before the record
        most recently observed in ``b_event_seg``?  Call immediately
        after ``observe`` for that record."""
        if a_seg == b_event_seg:
            return True  # program order: a_count < current count
        clock = self._clocks.get(b_event_seg)
        if clock is None:
            return False
        return clock.get(a_seg, 0) >= a_count

    def frontier(self, segments: Iterable[int]) -> Dict[int, int]:
        """Componentwise-minimum clock over everything still live, for
        the given segments.  Any position at-or-below the frontier is
        ordered before every future record; the floor is monotone."""
        segments = list(segments)
        if self._expected is not None and (self._expected - self._started):
            # A stream we know about has not produced its first record:
            # it could still be concurrent with everything.
            return {s: self._floor.get(s, 0) for s in segments}
        live: List[Dict[int, int]] = []
        for tid, open_segs in self._open.items():
            if tid in self._closed_streams:
                continue
            for seg in open_segs:
                clock = self._clocks.get(seg)
                if clock is not None:
                    live.append(clock)
        live.extend(self._pending.values())
        out: Dict[int, int] = {}
        for s in segments:
            floor = self._floor.get(s, 0)
            if live:
                m = min(c.get(s, floor) for c in live)
                if m < floor:
                    m = floor
            else:
                m = _NO_LIVE_CLOCKS
            self._floor[s] = m
            if m > 0:
                self._retirement_begun = True
            out[s] = m
        return out

    def prune(self, frontier: Dict[int, int]) -> int:
        """Drop clock entries at-or-below the frontier (only entries for
        segments the frontier was computed over).  Returns entries
        removed."""
        removed = 0
        for seg, clock in self._clocks.items():
            for s in [
                s
                for s, v in clock.items()
                if s != seg and s in frontier and v <= frontier[s]
            ]:
                del clock[s]
                removed += 1
        for snapshot in self._pending.values():
            for s in [
                s
                for s, v in snapshot.items()
                if s in frontier and v <= frontier[s]
            ]:
                del snapshot[s]
                removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "segments_live": len(self._clocks),
            "clock_entries": sum(len(c) for c in self._clocks.values()),
            "pending_snapshots": len(self._pending),
            "pending_entries": sum(len(c) for c in self._pending.values()),
            "streams_started": len(self._started),
            "streams_closed": len(self._closed_streams),
            "rootless_segments": self.rootless_segments,
            "records_observed": self.records_observed,
        }

    # -- checkpointing -----------------------------------------------------

    def to_snapshot(self) -> Dict[str, object]:
        return {
            "model": self.model.describe(),
            "clocks": {
                str(seg): {str(s): c for s, c in clock.items()}
                for seg, clock in self._clocks.items()
            },
            "pending": [
                [channel, _jsonable(tag), {str(s): c for s, c in snap.items()}]
                for (channel, tag), snap in self._pending.items()
            ],
            "open": {
                str(tid): sorted(segs) for tid, segs in self._open.items()
            },
            "started": sorted(self._started),
            "closed_streams": sorted(self._closed_streams),
            "floor": {str(s): v for s, v in self._floor.items()},
            "expected": (
                sorted(self._expected) if self._expected is not None else None
            ),
            "unmatched": dict(self.unmatched),
            "rootless_segments": self.rootless_segments,
            "records_observed": self.records_observed,
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: Dict[str, object], model: HBModel = FULL_MODEL
    ) -> "StreamingHBState":
        self = cls(model=model)
        self._clocks = {
            int(seg): {int(s): c for s, c in clock.items()}
            for seg, clock in snapshot["clocks"].items()
        }
        self._pending = {
            (channel, _untuple(tag)): {int(s): c for s, c in snap.items()}
            for channel, tag, snap in snapshot["pending"]
        }
        self._open = {
            int(tid): set(segs) for tid, segs in snapshot["open"].items()
        }
        self._started = set(snapshot["started"])
        self._closed_streams = set(snapshot["closed_streams"])
        self._floor = {int(s): v for s, v in snapshot["floor"].items()}
        expected = snapshot.get("expected")
        self._expected = set(expected) if expected is not None else None
        self.unmatched = Counter(snapshot.get("unmatched", {}))
        self.rootless_segments = int(snapshot.get("rootless_segments", 0))
        self.records_observed = int(snapshot.get("records_observed", 0))
        self._retirement_begun = any(v > 0 for v in self._floor.values())
        return self
