"""Trace-level HB ablation (paper Section 7.4, Table 9).

The paper evaluates the necessity of each rule family by *ignoring the
corresponding records in the trace* and re-running the analysis.  This is
stronger than just skipping edges: dropping event/RPC/socket handler
Begin/End records collapses handler segments into whole-thread program
order (Rule-Preg misapplied to handler threads), which causes the false
*negatives* the paper reports; the missing pairing edges cause the false
positives.

``ablate_trace`` reproduces both effects: it removes the family's records
and remaps the segments that those records opened onto the thread's base
segment.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Set

from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace

#: Ablatable families and the record kinds they drop.
FAMILY_KINDS = {
    "event": {OpKind.EVENT_CREATE, OpKind.EVENT_BEGIN, OpKind.EVENT_END},
    "rpc": {OpKind.RPC_CREATE, OpKind.RPC_BEGIN, OpKind.RPC_END, OpKind.RPC_JOIN},
    "socket": {OpKind.SOCK_SEND, OpKind.SOCK_RECV},
    "push": {OpKind.ZK_UPDATE, OpKind.ZK_PUSHED},
    "thread": {
        OpKind.THREAD_CREATE,
        OpKind.THREAD_BEGIN,
        OpKind.THREAD_END,
        OpKind.THREAD_JOIN,
    },
}

#: Record kinds that *open* a handler segment, per family.  When a family
#: is ignored, segments opened by its records collapse into the thread's
#: base segment.
_SEGMENT_OPENERS = {
    "event": OpKind.EVENT_BEGIN,
    "rpc": OpKind.RPC_BEGIN,
    "socket": OpKind.SOCK_RECV,
}


def ablate_trace(trace: Trace, ignore: Iterable[str]) -> Trace:
    """A copy of ``trace`` with the given rule families' records ignored."""
    families = set(ignore)
    unknown = families - set(FAMILY_KINDS)
    if unknown:
        raise ValueError(f"unknown ablation families: {sorted(unknown)}")

    dropped_kinds: Set[OpKind] = set()
    for family in families:
        dropped_kinds |= FAMILY_KINDS[family]

    # Which segments were opened by a dropped handler-begin record?
    collapsed_segments: Set[int] = set()
    opener_kinds = {
        _SEGMENT_OPENERS[f] for f in families if f in _SEGMENT_OPENERS
    }
    segment_opener: Dict[int, OpKind] = {}
    for record in trace.records:
        segment_opener.setdefault(record.segment, record.kind)
    for segment, opener in segment_opener.items():
        if opener in opener_kinds:
            collapsed_segments.add(segment)

    # Base segment per thread = the first segment seen for that tid.
    base_segment: Dict[int, int] = {}
    for record in trace.records:
        if record.segment not in collapsed_segments:
            base_segment.setdefault(record.tid, record.segment)
    for record in trace.records:  # threads with only handler records
        base_segment.setdefault(record.tid, record.segment)

    ablated = Trace(name=f"{trace.name}-ablate-{'+'.join(sorted(families))}")
    for record in trace.records:
        if record.kind in dropped_kinds:
            continue
        if record.segment in collapsed_segments:
            record = replace(record, segment=base_segment[record.tid])
        ablated.append(record)
    return ablated
