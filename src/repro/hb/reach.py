"""Pluggable reachability backends for the happens-before graph.

``HBGraph`` answers ``backbone_reaches(i, j)`` through one of two
engines, selected by its ``reach_backend`` option:

* ``"bitset"`` (default) — the paper's Section 3.2.2 design: one
  reachable-set bit vector per backbone vertex, computed in reverse
  topological order.  Queries are a single bit test; memory is
  O(n²/8) bytes, which is what Table 8's unselective traces blow up.

* ``"chain"`` — segment-chain compression.  Backbone vertices are
  decomposed into *chains* (paths in the graph: every element has an
  edge to the next).  Program-order edges make each segment's backbone
  a natural chain, and a greedy pass merges segments end-to-end across
  fork/enqueue/RPC edges, so the chain count is usually far below the
  segment count.  Each vertex then stores only the **earliest reachable
  position per chain** (an ``array('i')`` of chain minima): if vertex
  ``u`` reaches position ``p`` of chain ``c``, the chain's internal
  edges carry it to every later position, so one integer per chain
  captures the whole reachable set.  Memory is O(n · chains) at four
  bytes per entry — on unselective traces this fits budgets the bit
  matrix cannot (see ``tests/hb/test_reach_backends.py``).

Both backends enforce the graph's memory budget and raise
``TraceAnalysisOOM`` before allocating past it, so the Table 8
experiment exercises whichever backend is configured.
"""

from __future__ import annotations

from array import array
from typing import Dict, List

from repro.errors import TraceAnalysisOOM

#: Sentinel chain position meaning "reaches nothing in this chain".
#: Must fit a signed 32-bit array slot.
_UNREACHED = 2**31 - 1

#: Bytes per chain-vector entry (``array('i')`` item size).
CHAIN_ENTRY_BYTES = array("i").itemsize

REACH_BACKENDS = ("bitset", "chain")


def _check_budget(required: int, budget: int, backend: str, detail: str) -> None:
    if required > budget:
        raise TraceAnalysisOOM(
            f"{backend} reachability needs ~{required // (1024 * 1024)} MB "
            f"({detail}), budget is {budget // (1024 * 1024)} MB",
            required_bytes=required,
            budget_bytes=budget,
        )


class BitsetReachability:
    """Per-vertex reachable sets as big-int bit vectors (the paper's
    design).  Built eagerly; ``reaches`` is one shift-and-mask."""

    backend = "bitset"

    def __init__(self, graph: "object") -> None:
        n = len(graph.backbone)
        self.vertices = n
        self.required_bytes = (n * n) // 8
        _check_budget(
            self.required_bytes,
            graph.memory_budget,
            self.backend,
            f"{n} backbone vertices",
        )
        reach = [0] * n
        succ = graph._succ
        for i in range(n - 1, -1, -1):
            acc = 0
            for j in succ[i]:
                acc |= reach[j] | (1 << j)
            reach[i] = acc
        self._reach = reach

    def reaches(self, i: int, j: int) -> bool:
        return bool((self._reach[i] >> j) & 1)

    def stats(self) -> Dict[str, int]:
        return {
            "backend": self.backend,
            "bytes": self.required_bytes,
            "vertices": self.vertices,
        }

    # -- checkpointing --------------------------------------------------------

    def to_snapshot(self) -> Dict[str, object]:
        """JSON-serializable state (reachable sets as hex strings)."""
        return {
            "backend": self.backend,
            "vertices": self.vertices,
            "rows_hex": [format(row, "x") for row in self._reach],
        }

    @classmethod
    def from_snapshot(
        cls, graph: "object", snapshot: Dict[str, object]
    ) -> "BitsetReachability":
        self = cls.__new__(cls)
        self.vertices = int(snapshot["vertices"])
        self.required_bytes = (self.vertices * self.vertices) // 8
        self._reach = [int(row, 16) for row in snapshot["rows_hex"]]
        return self


class ChainReachability:
    """Chain-compressed reachable sets: one ``array('i')`` of per-chain
    minima per backbone vertex."""

    backend = "chain"

    def __init__(self, graph: "object") -> None:
        succ = graph._succ
        n = len(graph.backbone)
        self.vertices = n

        # -- greedy path cover -------------------------------------------------
        # Process vertices in sequence order (which is topological).  A
        # vertex extends a chain whose current tail has a direct edge to
        # it; otherwise it starts a new chain.  Program-order edges make
        # every segment's backbone one path, and cross-segment edges
        # (fork, enqueue, RPC, serial) splice those paths together.
        preds: List[List[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j in succ[i]:
                preds[j].append(i)
        chain_id = [0] * n
        chain_pos = [0] * n
        tail_chain: Dict[int, int] = {}  # current tail vertex -> chain
        chain_len: List[int] = []
        for v in range(n):
            chosen = -1
            for p in sorted(preds[v]):
                chain = tail_chain.get(p)
                if chain is not None:
                    chosen = chain
                    del tail_chain[p]
                    break
            if chosen < 0:
                chosen = len(chain_len)
                chain_len.append(0)
            chain_id[v] = chosen
            chain_pos[v] = chain_len[chosen]
            chain_len[chosen] += 1
            tail_chain[v] = chosen
        self.chains = len(chain_len)
        self._chain_id = chain_id
        self._chain_pos = chain_pos

        self.required_bytes = n * self.chains * CHAIN_ENTRY_BYTES
        _check_budget(
            self.required_bytes,
            graph.memory_budget,
            self.backend,
            f"{n} backbone vertices x {self.chains} chains",
        )

        # -- reverse-topological accumulation ---------------------------------
        # row[c] = earliest position in chain c strictly reachable from
        # this vertex (the chain's forward edges cover everything later).
        template = array("i", [_UNREACHED]) * max(1, self.chains)
        rows: List[array] = [template] * n  # placeholder; filled below
        for i in range(n - 1, -1, -1):
            row = template[:]
            for j in succ[i]:
                row = array("i", map(min, row, rows[j]))
                cj = chain_id[j]
                if chain_pos[j] < row[cj]:
                    row[cj] = chain_pos[j]
            rows[i] = row
        self._rows = rows

    def reaches(self, i: int, j: int) -> bool:
        return self._rows[i][self._chain_id[j]] <= self._chain_pos[j]

    def stats(self) -> Dict[str, int]:
        return {
            "backend": self.backend,
            "bytes": self.required_bytes,
            "vertices": self.vertices,
            "chains": self.chains,
        }

    # -- checkpointing --------------------------------------------------------

    def to_snapshot(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "vertices": self.vertices,
            "chains": self.chains,
            "chain_id": list(self._chain_id),
            "chain_pos": list(self._chain_pos),
            "rows": [list(row) for row in self._rows],
        }

    @classmethod
    def from_snapshot(
        cls, graph: "object", snapshot: Dict[str, object]
    ) -> "ChainReachability":
        self = cls.__new__(cls)
        self.vertices = int(snapshot["vertices"])
        self.chains = int(snapshot["chains"])
        self._chain_id = list(snapshot["chain_id"])
        self._chain_pos = list(snapshot["chain_pos"])
        self._rows = [array("i", row) for row in snapshot["rows"]]
        self.required_bytes = self.vertices * self.chains * CHAIN_ENTRY_BYTES
        return self


_BACKENDS = {
    "bitset": BitsetReachability,
    "chain": ChainReachability,
}


def build_reachability(graph: "object"):
    """Construct the backend named by ``graph.reach_backend``."""
    try:
        cls = _BACKENDS[graph.reach_backend]
    except KeyError:
        raise ValueError(
            f"unknown reach_backend {graph.reach_backend!r}; "
            f"expected one of {REACH_BACKENDS}"
        ) from None
    return cls(graph)


def restore_reachability(graph: "object", snapshot: Dict[str, object]):
    """Rebuild a backend from its checkpointed snapshot (no recompute)."""
    backend = snapshot.get("backend")
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown reachability snapshot backend {backend!r}; "
            f"expected one of {REACH_BACKENDS}"
        ) from None
    return cls.from_snapshot(graph, snapshot)
