"""The DCatch happens-before model (paper Section 2).

``HBModel`` is the configuration of which rule families are active.  The
full model (all rules on) is the paper's MTEP model:

* **M** — message rules: Rule-Mrpc, Rule-Msoc, Rule-Mpush, Rule-Mpull;
* **T** — thread rules: Rule-Tfork, Rule-Tjoin;
* **E** — event rules: Rule-Eenq, Rule-Eserial;
* **P** — program-order rules: Rule-Preg (regular threads) and Rule-Pnreg
  (within one handler invocation), realized through per-record *segments*.

Disabling a family reproduces the paper's Table 9 ablation — see
``repro.hb.ablation`` which additionally drops the corresponding records
from the trace (the paper ablates at the trace level, which is what makes
missing event Begin/End records collapse handler segments into whole-
thread program order and cause false negatives).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HBModel:
    """Which HB rule families the analysis applies."""

    rpc: bool = True  # Rule-Mrpc
    socket: bool = True  # Rule-Msoc
    push: bool = True  # Rule-Mpush
    pull: bool = True  # Rule-Mpull (loop-based synchronization analysis)
    fork_join: bool = True  # Rule-Tfork / Rule-Tjoin
    event: bool = True  # Rule-Eenq
    eserial: bool = True  # Rule-Eserial
    program_order: bool = True  # Rule-Preg / Rule-Pnreg

    def without(self, *families: str) -> "HBModel":
        """A copy with the given rule families disabled."""
        changes = {}
        for family in families:
            if not hasattr(self, family):
                raise ValueError(f"unknown HB rule family: {family}")
            changes[family] = False
        return replace(self, **changes)

    def describe(self) -> str:
        on = [
            name
            for name in (
                "rpc",
                "socket",
                "push",
                "pull",
                "fork_join",
                "event",
                "eserial",
                "program_order",
            )
            if getattr(self, name)
        ]
        return "HBModel(" + ",".join(on) + ")"


FULL_MODEL = HBModel()

#: The model without the loop-based pull analysis — "TA+SP" in Table 5.
NO_PULL_MODEL = HBModel(pull=False)
