"""Reference reachability engines for differential testing.

The production engine (``HBGraph``'s bit-sets, paper Section 3.2.2) is
checked against two independent implementations:

* ``NaiveReachability`` — memoized DFS over the backbone graph; the
  obviously-correct baseline.
* ``VectorClockEngine`` — classic vector clocks with one component per
  segment.  This is the design the paper *rejects* for performance
  ("each vector time-stamp will have a huge number of dimensions, with
  each event handler and RPC function contributing one dimension"); we
  keep it both to validate the bit-set engine and to measure the cost gap
  (ablation bench).  Note the vector-clock encoding is only exact when
  program-order edges are enabled, since it relies on per-segment chains.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional

from repro.hb.graph import HBGraph
from repro.runtime.ops import OpEvent


class NaiveReachability:
    """Memoized DFS over an ``HBGraph``'s backbone."""

    def __init__(self, graph: HBGraph) -> None:
        self.graph = graph
        self._memo: Dict[int, frozenset] = {}

    def _reachable_from(self, i: int) -> frozenset:
        cached = self._memo.get(i)
        if cached is not None:
            return cached
        # Iterative post-order DFS: program-order chains routinely exceed
        # Python's recursion limit (a few thousand backbone vertices in
        # one segment), so an explicit stack is required.
        succ = self.graph._succ
        stack = [(i, iter(succ[i]))]
        on_stack = {i}
        while stack:
            node, it = stack[-1]
            pushed = False
            for j in it:
                if j in self._memo or j in on_stack:
                    continue
                stack.append((j, iter(succ[j])))
                on_stack.add(j)
                pushed = True
                break
            if pushed:
                continue
            stack.pop()
            on_stack.discard(node)
            result = set()
            for j in succ[node]:
                result.add(j)
                result |= self._memo[j]
            self._memo[node] = frozenset(result)
        return self._memo[i]

    def backbone_reaches(self, i: int, j: int) -> bool:
        return j in self._reachable_from(i)

    def happens_before(self, a: OpEvent, b: OpEvent) -> bool:
        """Same query as ``HBGraph.happens_before`` but via DFS."""
        if a.seq == b.seq:
            return False
        seg_a, pos_a = self.graph._position[a.seq]
        seg_b, pos_b = self.graph._position[b.seq]
        if seg_a == seg_b:
            return self.graph.model.program_order and pos_a < pos_b
        na = self.graph._next_backbone(a)
        pb = self.graph._prev_backbone(b)
        if na is None or pb is None:
            return False
        if na == pb:
            return True
        return self.backbone_reaches(na, pb)

    def concurrent(self, a: OpEvent, b: OpEvent) -> bool:
        return not self.happens_before(a, b) and not self.happens_before(b, a)


class VectorClockEngine:
    """Vector clocks over backbone vertices, one component per segment.

    The encoding assumes each segment's backbone is a chain (later
    vertices inherit earlier ones' clocks), which only program-order
    edges guarantee.  Constructing the engine on a graph whose model
    disables program order is therefore rejected by default; pass
    ``strict=False`` to get the (possibly unsound) engine plus a
    ``UserWarning`` — the ablation benches do this deliberately.
    """

    def __init__(self, graph: HBGraph, strict: bool = True) -> None:
        if not graph.model.program_order:
            message = (
                "VectorClockEngine is only exact when program-order edges "
                "are enabled; this graph's model disables program_order"
            )
            if strict:
                raise ValueError(message)
            warnings.warn(message, UserWarning, stacklevel=2)
        self.graph = graph
        self._segment_ids = sorted(graph._seg_backbone_idx.keys())
        self._component = {seg: k for k, seg in enumerate(self._segment_ids)}
        self._clocks: List[Optional[Dict[int, int]]] = [None] * len(graph.backbone)
        self._preds: List[List[int]] = [[] for _ in graph.backbone]
        for i, succs in enumerate(graph._succ):
            for j in succs:
                self._preds[j].append(i)
        self._counters: Dict[int, int] = {}
        self._compute()

    @property
    def dimensions(self) -> int:
        """Number of vector components (paper: one per handler/segment)."""
        return len(self._segment_ids)

    def _compute(self) -> None:
        seg_counter: Dict[int, int] = {}
        for i, record in enumerate(self.graph.backbone):
            clock: Dict[int, int] = {}
            for p in self._preds[i]:
                for seg, val in self._clocks[p].items():
                    if clock.get(seg, 0) < val:
                        clock[seg] = val
            component = self._component[record.segment]
            seg_counter[component] = seg_counter.get(component, 0) + 1
            clock[component] = seg_counter[component]
            self._clocks[i] = clock
        self._counters = seg_counter

    def backbone_reaches(self, i: int, j: int) -> bool:
        if i == j:
            return False
        a = self.graph.backbone[i]
        comp = self._component[a.segment]
        own = self._clocks[i][comp]
        return self._clocks[j].get(comp, 0) >= own

    def happens_before(self, a: OpEvent, b: OpEvent) -> bool:
        if a.seq == b.seq:
            return False
        seg_a, pos_a = self.graph._position[a.seq]
        seg_b, pos_b = self.graph._position[b.seq]
        if seg_a == seg_b:
            return self.graph.model.program_order and pos_a < pos_b
        na = self.graph._next_backbone(a)
        pb = self.graph._prev_backbone(b)
        if na is None or pb is None:
            return False
        if na == pb:
            return True
        return self.backbone_reaches(na, pb)

    def concurrent(self, a: OpEvent, b: OpEvent) -> bool:
        return not self.happens_before(a, b) and not self.happens_before(b, a)
