"""The DCatch happens-before model and graph (paper Sections 2 and 3.2)."""

from repro.hb.ablation import FAMILY_KINDS, ablate_trace
from repro.hb.explain import ChainExplainer, Hop
from repro.hb.export import graph_to_dot
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, NO_PULL_MODEL, HBModel
from repro.hb.pull import PullEdge, infer_pull_edges
from repro.hb.reach import (
    REACH_BACKENDS,
    BitsetReachability,
    ChainReachability,
    build_reachability,
)
from repro.hb.reference import NaiveReachability, VectorClockEngine

__all__ = [
    "REACH_BACKENDS",
    "BitsetReachability",
    "ChainReachability",
    "build_reachability",
    "HBModel",
    "FULL_MODEL",
    "NO_PULL_MODEL",
    "HBGraph",
    "ChainExplainer",
    "Hop",
    "graph_to_dot",
    "DEFAULT_MEMORY_BUDGET",
    "PullEdge",
    "infer_pull_edges",
    "NaiveReachability",
    "VectorClockEngine",
    "ablate_trace",
    "FAMILY_KINDS",
]
