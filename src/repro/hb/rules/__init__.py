"""Rule appliers for the MTEP happens-before model (paper Section 2)."""
