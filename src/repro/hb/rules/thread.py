"""Thread rules (paper Section 2.2).

* Rule-Tfork: ``Create(t) => Begin(t)``
* Rule-Tjoin: ``End(t) => Join(t)``

Records are paired by the child thread's tid (the analogue of the paper's
thread-object hashcode ids).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.runtime.ops import OpKind


def apply_fork_join(graph: "object") -> int:
    creates: Dict[object, object] = {}
    begins: Dict[object, object] = {}
    ends: Dict[object, object] = {}
    joins: Dict[object, List[object]] = defaultdict(list)
    for record in graph.backbone:
        if record.kind is OpKind.THREAD_CREATE:
            creates[record.obj_id] = record
        elif record.kind is OpKind.THREAD_BEGIN:
            begins[record.obj_id] = record
        elif record.kind is OpKind.THREAD_END:
            ends[record.obj_id] = record
        elif record.kind is OpKind.THREAD_JOIN:
            joins[record.obj_id].append(record)

    added = 0
    for tid, create in creates.items():
        begin = begins.get(tid)
        if begin is None:
            # The child never ran (teardown raced the fork) — or its
            # trace stream was lost.  Either way no edge; warn only.
            graph.note_unmatched("thread_create_without_begin", create)
        elif graph.add_edge(create.seq, begin.seq, "Tfork"):
            added += 1
    for tid, begin in begins.items():
        if tid not in creates:
            # Normal for root threads forked from (uninstrumented)
            # build code, so not a damage signal by itself.
            graph.note_unmatched("thread_begin_without_create", begin)
    for tid, end in ends.items():
        if not joins.get(tid):
            graph.note_unmatched("thread_end_without_join", end)
        for join in joins.get(tid, []):
            if graph.add_edge(end.seq, join.seq, "Tjoin"):
                added += 1
    for tid, join_list in joins.items():
        if tid not in ends:
            # Joining a thread that recorded no End: normal when the
            # child failed (modeled aborts skip the End record), damage
            # when the child's trace tail was lost — indistinguishable
            # here, so warn without flipping to partial.
            for join in join_list:
                graph.note_unmatched("thread_join_without_end", join)
    return added
