"""Message rules (paper Section 2.1).

* Rule-Mrpc: ``Create(r,n1) => Begin(r,n2)`` and ``End(r,n2) => Join(r,n1)``
  — paired by the RPC tag injected at call time.
* Rule-Msoc: ``Send(m,n1) => Recv(m,n2)`` — paired by the message tag.
* Rule-Mpush: ``Update(s,n1) => Pushed(s,n2)`` — paired by
  ``(znode path, zxid)``; one update may notify many subscribers.

(Rule-Mpull lives in ``repro.hb.pull`` — it needs loop inference, not
just record pairing.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.runtime.ops import OpKind


def _index(graph: "object", kind: OpKind) -> Dict[object, object]:
    return {r.obj_id: r for r in graph.backbone if r.kind is kind}


def _index_multi(graph: "object", kind: OpKind) -> Dict[object, List[object]]:
    result: Dict[object, List[object]] = defaultdict(list)
    for record in graph.backbone:
        if record.kind is kind:
            result[record.obj_id].append(record)
    return result


def apply_rpc(graph: "object") -> int:
    creates = _index(graph, OpKind.RPC_CREATE)
    begins = _index(graph, OpKind.RPC_BEGIN)
    ends = _index(graph, OpKind.RPC_END)
    joins = _index(graph, OpKind.RPC_JOIN)
    added = 0
    for tag, create in creates.items():
        begin = begins.get(tag)
        if begin is None:
            # Server untraced, crashed before the handler began, or the
            # request never arrived — all normal, no edge to add.
            graph.note_unmatched("rpc_create_without_begin", create)
        elif graph.add_edge(create.seq, begin.seq, "Mrpc"):
            added += 1
    for tag, begin in begins.items():
        if tag not in creates:
            # The caller recorded a Join for this tag, so it also
            # recorded a Create before it — a missing Create means the
            # caller's trace lost records.  Without a Join the caller
            # may simply be untraced.
            graph.note_unmatched(
                "rpc_begin_without_create", begin, damage=tag in joins
            )
    for tag, end in ends.items():
        join = joins.get(tag)
        if join is None:
            # Timed-out or abandoned call: the caller never joined.
            graph.note_unmatched("rpc_end_without_join", end)
        elif graph.add_edge(end.seq, join.seq, "Mrpc"):
            added += 1
    for tag, join in joins.items():
        if tag not in ends:
            # A Join implies the caller saw a reply, and a traced server
            # records End before replying: Join + Begin with no End can
            # only mean the server's trace lost its tail.
            graph.note_unmatched(
                "rpc_join_without_end", join, damage=tag in begins
            )
    return added


def apply_socket(graph: "object") -> int:
    sends = _index(graph, OpKind.SOCK_SEND)
    recvs = _index_multi(graph, OpKind.SOCK_RECV)
    traced_nodes = {r.node for r in graph.backbone}
    added = 0
    for tag, send in sends.items():
        deliveries = recvs.get(tag, [])
        if not deliveries:
            # Dropped by the network or the receiver crashed: Rule-Msoc
            # only orders a send with deliveries that happened.
            graph.note_unmatched("sock_send_without_recv", send)
        for recv in deliveries:
            if graph.add_edge(send.seq, recv.seq, "Msoc"):
                added += 1
    for tag, recv_list in recvs.items():
        if tag not in sends:
            for recv in recv_list:
                # Messages from an untraced node (the coordination
                # service) legitimately have no recorded send; a send
                # missing from a node that *did* contribute records
                # means that node's trace lost it.
                src = recv.extra.get("src")
                graph.note_unmatched(
                    "sock_recv_without_send",
                    recv,
                    damage=src is not None and src in traced_nodes,
                )
    return added


def apply_push(graph: "object") -> int:
    updates = _index(graph, OpKind.ZK_UPDATE)
    pushes = _index_multi(graph, OpKind.ZK_PUSHED)
    added = 0
    for key, update in updates.items():
        deliveries = pushes.get(key, [])
        if not deliveries:
            graph.note_unmatched("zk_update_without_pushed", update)
        for pushed in deliveries:
            if graph.add_edge(update.seq, pushed.seq, "Mpush"):
                added += 1
    for key, pushed_list in pushes.items():
        if key not in updates:
            # Service-initiated changes (ephemeral deletes, untraced
            # writers) notify watchers without a traced Update.
            for pushed in pushed_list:
                graph.note_unmatched("zk_pushed_without_update", pushed)
    return added
