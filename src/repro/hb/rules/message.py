"""Message rules (paper Section 2.1).

* Rule-Mrpc: ``Create(r,n1) => Begin(r,n2)`` and ``End(r,n2) => Join(r,n1)``
  — paired by the RPC tag injected at call time.
* Rule-Msoc: ``Send(m,n1) => Recv(m,n2)`` — paired by the message tag.
* Rule-Mpush: ``Update(s,n1) => Pushed(s,n2)`` — paired by
  ``(znode path, zxid)``; one update may notify many subscribers.

(Rule-Mpull lives in ``repro.hb.pull`` — it needs loop inference, not
just record pairing.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.runtime.ops import OpKind


def _index(graph: "object", kind: OpKind) -> Dict[object, object]:
    return {r.obj_id: r for r in graph.backbone if r.kind is kind}


def _index_multi(graph: "object", kind: OpKind) -> Dict[object, List[object]]:
    result: Dict[object, List[object]] = defaultdict(list)
    for record in graph.backbone:
        if record.kind is kind:
            result[record.obj_id].append(record)
    return result


def apply_rpc(graph: "object") -> int:
    creates = _index(graph, OpKind.RPC_CREATE)
    begins = _index(graph, OpKind.RPC_BEGIN)
    ends = _index(graph, OpKind.RPC_END)
    joins = _index(graph, OpKind.RPC_JOIN)
    added = 0
    for tag, create in creates.items():
        begin = begins.get(tag)
        if begin is not None and graph.add_edge(create.seq, begin.seq, "Mrpc"):
            added += 1
    for tag, end in ends.items():
        join = joins.get(tag)
        if join is not None and graph.add_edge(end.seq, join.seq, "Mrpc"):
            added += 1
    return added


def apply_socket(graph: "object") -> int:
    sends = _index(graph, OpKind.SOCK_SEND)
    recvs = _index_multi(graph, OpKind.SOCK_RECV)
    added = 0
    for tag, send in sends.items():
        for recv in recvs.get(tag, []):
            if graph.add_edge(send.seq, recv.seq, "Msoc"):
                added += 1
    return added


def apply_push(graph: "object") -> int:
    updates = _index(graph, OpKind.ZK_UPDATE)
    pushes = _index_multi(graph, OpKind.ZK_PUSHED)
    added = 0
    for key, update in updates.items():
        for pushed in pushes.get(key, []):
            if graph.add_edge(update.seq, pushed.seq, "Mpush"):
                added += 1
    return added
