"""Program-order rules (paper Section 2.2).

* Rule-Preg: operations of a *regular* thread are totally ordered.
* Rule-Pnreg: operations inside an event/RPC/message handler are ordered
  only within the same handler invocation.

Both are realized by the runtime's *segments*: a regular thread has one
segment for its whole life; each handler invocation pushes a fresh one.
Chaining consecutive backbone records of a segment therefore implements
exactly Preg + Pnreg; (memory accesses are ordered inside segments by
position, see ``HBGraph.happens_before``).
"""

from __future__ import annotations


def apply_program_order(graph: "object") -> int:
    added = 0
    for segment, indices in graph._seg_backbone_idx.items():
        for k in range(len(indices) - 1):
            a = graph.backbone[indices[k]]
            b = graph.backbone[indices[k + 1]]
            if graph.add_edge(a.seq, b.seq, "P"):
                added += 1
    return added
