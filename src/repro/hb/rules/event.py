"""Event rules (paper Section 2.2).

* Rule-Eenq: ``Create(e) => Begin(e)`` — paired by event id.
* Rule-Eserial: for a single-consumer FIFO queue,
  ``End(e1) => Begin(e2)`` whenever ``Create(e1) => Create(e2)``.

Rule-Eserial is applied *last* and iterated to a fixpoint (paper Section
3.2.1): each added serialization edge can order more Create pairs, which
admits more serialization edges.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.runtime.ops import OpKind


def apply_enqueue(graph: "object") -> int:
    creates: Dict[object, object] = {}
    begins: Dict[object, List[object]] = defaultdict(list)
    for record in graph.backbone:
        if record.kind is OpKind.EVENT_CREATE:
            creates[record.obj_id] = record
        elif record.kind is OpKind.EVENT_BEGIN:
            begins[record.obj_id].append(record)
    added = 0
    for eid, create in creates.items():
        deliveries = begins.get(eid, [])
        if not deliveries:
            # Enqueued but never handled: the queue drained at teardown
            # or the consumer died — normal, just no edge.
            graph.note_unmatched("event_create_without_begin", create)
        for begin in deliveries:
            if graph.add_edge(create.seq, begin.seq, "Eenq"):
                added += 1
    for eid, begin_list in begins.items():
        if eid not in creates:
            # Handled without a recorded enqueue: normal when the
            # producer ran in uninstrumented build code, a damage signal
            # only alongside other evidence — warn, don't flip partial.
            for begin in begin_list:
                graph.note_unmatched("event_begin_without_create", begin)
    return added


def _collect_queue_events(graph: "object"):
    """Per single-consumer queue: [(create, begin, end)] sorted by begin."""
    creates: Dict[object, object] = {}
    begins: Dict[object, object] = {}
    ends: Dict[object, object] = {}
    for record in graph.backbone:
        if record.kind is OpKind.EVENT_CREATE:
            creates[record.obj_id] = record
        elif record.kind is OpKind.EVENT_BEGIN:
            begins[record.obj_id] = record
        elif record.kind is OpKind.EVENT_END:
            ends[record.obj_id] = record

    queues: Dict[object, List[Tuple[object, object, object]]] = defaultdict(list)
    for eid, begin in begins.items():
        if not begin.extra.get("single_consumer"):
            continue
        create = creates.get(eid)
        end = ends.get(eid)
        if create is None or end is None:
            continue
        queues[begin.extra.get("queue")].append((create, begin, end))
    for items in queues.values():
        items.sort(key=lambda t: t[1].seq)
    return queues


def apply_serial_fixpoint(graph: "object") -> int:
    queues = _collect_queue_events(graph)
    total_added = 0
    while True:
        additions = []
        for items in queues.values():
            for x in range(len(items)):
                create1, _begin1, end1 = items[x]
                for y in range(x + 1, len(items)):
                    create2, begin2, _end2 = items[y]
                    if end1.seq >= begin2.seq:
                        continue  # not serialized forward in this run
                    if graph.happens_before(create1, create2):
                        additions.append((end1.seq, begin2.seq))
        added_this_round = 0
        for seq_from, seq_to in additions:
            if graph.add_edge(seq_from, seq_to, "Eserial"):
                added_this_round += 1
        total_added += added_this_round
        if added_this_round == 0:
            return total_added
