"""The happens-before graph and its reachability engine.

Paper Section 3.2: every trace record is a vertex; edges realize the MTEP
rules; two memory accesses are concurrent iff neither reaches the other.

Two structural choices make this scale (both from the paper):

* **Bit-set reachability** (Raychev et al., adopted in Section 3.2.2):
  reachable sets are computed once in reverse topological order and HB
  queries become constant-time bit tests.  Because the scheduler
  serializes execution, every HB edge points forward in sequence order,
  so sequence order *is* a topological order.

* **Segment-position compression**: memory accesses never get their own
  bit-set.  Within one segment (a regular thread's lifetime, or one
  handler invocation) records are totally ordered by Rule-Preg/Pnreg, so
  a memory access is located by (segment, position) and cross-segment
  reachability is delegated to the nearest *backbone* vertices (HB-related
  operations, plus endpoints of Rule-Mpull edges).  This keeps the bit
  matrix at backbone size — the same reason the paper separates HB-related
  operations from the bulk of memory accesses.

The memory budget check reproduces Table 8: unselective traces make the
reachability matrix exceed the budget, and the analysis refuses to run.
"""

from __future__ import annotations

import bisect
import sys
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.hb.model import FULL_MODEL, HBModel
from repro.hb.pull import PullEdge, infer_pull_edges
from repro.hb.reach import REACH_BACKENDS, build_reachability
from repro.runtime.ops import HB_KINDS, OpEvent, OpKind
from repro.trace.store import Trace

#: Default trace-analysis memory budget (bytes) for the reachability
#: matrix; the analogue of the paper's 50 GB JVM heap, scaled to the
#: simulator.  Override per-call for the Table 8 experiment.
DEFAULT_MEMORY_BUDGET = 512 * 1024 * 1024


class HBGraph:
    """Happens-before graph over one trace."""

    def __init__(
        self,
        trace: Trace,
        model: HBModel = FULL_MODEL,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        compress_mem: bool = True,
        reach_backend: str = "bitset",
        extra_backbone: Optional[Set[int]] = None,
    ) -> None:
        """``compress_mem=False`` runs the paper's original algorithm —
        a reachability bit set for *every* vertex including memory
        accesses — which is what runs out of memory on unselective
        traces (Table 8).  The default compresses memory accesses to
        segment positions.

        ``reach_backend`` selects the reachability engine: ``"bitset"``
        (the paper's O(n²/8)-byte bit matrix) or ``"chain"`` (segment-
        chain compression, O(n·chains) — see ``repro.hb.reach``).

        ``extra_backbone`` promotes additional record seqs onto the
        backbone so edges can attach to them (used by the
        sync-preserving backend to thread lock acquire/release records,
        which are not HB operations, into the order)."""
        if reach_backend not in REACH_BACKENDS:
            raise ValueError(
                f"unknown reach_backend {reach_backend!r}; "
                f"expected one of {REACH_BACKENDS}"
            )
        self.trace = trace
        self.model = model
        self.memory_budget = memory_budget
        self.compress_mem = compress_mem
        self.reach_backend = reach_backend
        self.edge_counts: Dict[str, int] = defaultdict(int)
        #: Unmatched HB endpoints, counted per pattern (e.g. a
        #: ``thread_end_without_join``).  Many patterns are normal — an
        #: untraced node's messages arrive with no recorded send, a
        #: timed-out RPC has no Join — but *damage patterns* (an effect
        #: recorded without its cause on a traced stream) indicate the
        #: trace lost records, and mark the graph ``partial``.
        self.unmatched: Counter = Counter()
        self._damage_patterns: Set[str] = set()

        with obs.span("hb.build", records=len(trace)):
            # -- segment structure ---------------------------------------------
            self._segments: Dict[int, List[OpEvent]] = defaultdict(list)
            self._position: Dict[int, Tuple[int, int]] = {}  # seq -> (segment, pos)
            for record in trace.records:
                seg = self._segments[record.segment]
                self._position[record.seq] = (record.segment, len(seg))
                seg.append(record)

            # -- Rule-Mpull evidence (endpoints must become backbone) ----------
            with obs.span("hb.pull_inference"):
                self.pull_edges: List[PullEdge] = (
                    infer_pull_edges(trace) if model.pull else []
                )
            pull_endpoints: Set[int] = set()
            for edge in self.pull_edges:
                pull_endpoints.add(edge.write_seq)
                pull_endpoints.add(edge.read_seq)

            # -- backbone selection --------------------------------------------
            promoted = extra_backbone or frozenset()
            if compress_mem:
                self.backbone: List[OpEvent] = [
                    r
                    for r in trace.records
                    if r.kind in HB_KINDS
                    or r.seq in pull_endpoints
                    or r.seq in promoted
                ]
            else:
                self.backbone = list(trace.records)
            self._bidx: Dict[int, int] = {
                r.seq: i for i, r in enumerate(self.backbone)
            }
            self._succ: List[Set[int]] = [set() for _ in self.backbone]
            self._reach = None  # lazily built backend (repro.hb.reach)

            # Per-segment backbone positions, for nearest-backbone lookups.
            self._seg_backbone_pos: Dict[int, List[int]] = defaultdict(list)
            self._seg_backbone_idx: Dict[int, List[int]] = defaultdict(list)
            for record in self.backbone:
                segment, pos = self._position[record.seq]
                self._seg_backbone_pos[segment].append(pos)
                self._seg_backbone_idx[segment].append(self._bidx[record.seq])

            with obs.span("hb.edges"):
                self._build_edges()
                self._scan_lock_balance()
        self._publish_build_metrics()
        self._warn_if_partial()

    # -- checkpointing ----------------------------------------------------------

    def to_snapshot(self) -> Dict[str, object]:
        """JSON-serializable structure: backbone, edges, partiality.

        Everything a checkpointed resume needs to skip rule application
        (the expensive half of construction); segment structure is
        recomputed from the trace, which is cheap."""
        return {
            "compress_mem": self.compress_mem,
            "backbone": [r.seq for r in self.backbone],
            "succ": [sorted(s) for s in self._succ],
            "edge_counts": dict(self.edge_counts),
            "unmatched": dict(self.unmatched),
            "damage_patterns": sorted(self._damage_patterns),
            "pull_edges": [
                [e.write_seq, e.read_seq, e.kind] for e in self.pull_edges
            ],
        }

    @classmethod
    def from_snapshot(
        cls,
        trace: Trace,
        snapshot: Dict[str, object],
        model: HBModel = FULL_MODEL,
        memory_budget: int = DEFAULT_MEMORY_BUDGET,
        reach_backend: str = "bitset",
    ) -> "HBGraph":
        """Rebuild a graph from ``to_snapshot`` output without re-running
        pull inference or the HB rule modules."""
        if reach_backend not in REACH_BACKENDS:
            raise ValueError(
                f"unknown reach_backend {reach_backend!r}; "
                f"expected one of {REACH_BACKENDS}"
            )
        self = cls.__new__(cls)
        self.trace = trace
        self.model = model
        self.memory_budget = memory_budget
        self.compress_mem = bool(snapshot["compress_mem"])
        self.reach_backend = reach_backend
        self.edge_counts = defaultdict(int)
        self.edge_counts.update(snapshot.get("edge_counts", {}))
        self.unmatched = Counter(snapshot.get("unmatched", {}))
        self._damage_patterns = set(snapshot.get("damage_patterns", []))

        self._segments = defaultdict(list)
        self._position = {}
        for record in trace.records:
            seg = self._segments[record.segment]
            self._position[record.seq] = (record.segment, len(seg))
            seg.append(record)

        from repro.hb.pull import PullEdge

        self.pull_edges = [
            PullEdge(write_seq=w, read_seq=r, kind=k)
            for w, r, k in snapshot.get("pull_edges", [])
        ]

        by_seq = {r.seq: r for r in trace.records}
        try:
            self.backbone = [by_seq[seq] for seq in snapshot["backbone"]]
        except KeyError as exc:
            from repro.errors import CheckpointError

            raise CheckpointError(
                f"HB snapshot references seq {exc.args[0]} missing from "
                f"the trace; the checkpoint does not match this trace"
            ) from None
        self._bidx = {r.seq: i for i, r in enumerate(self.backbone)}
        self._succ = [set(s) for s in snapshot["succ"]]
        self._reach = None

        self._seg_backbone_pos = defaultdict(list)
        self._seg_backbone_idx = defaultdict(list)
        for record in self.backbone:
            segment, pos = self._position[record.seq]
            self._seg_backbone_pos[segment].append(pos)
            self._seg_backbone_idx[segment].append(self._bidx[record.seq])
        obs.counter(
            "hb_graphs_restored_total", "HB graphs rebuilt from checkpoints"
        ).inc()
        return self

    def reach_snapshot(self) -> Dict[str, object]:
        """Serializable state of the (built-on-demand) reachability."""
        return self._ensure_reach().to_snapshot()

    def restore_reach(self, snapshot: Dict[str, object]) -> None:
        """Install a checkpointed reachability structure, skipping the
        recompute.  Also aligns ``reach_backend`` with the snapshot so
        later rebuilds (if any) stay consistent."""
        from repro.hb.reach import restore_reachability

        self._reach = restore_reachability(self, snapshot)
        self.reach_backend = self._reach.backend

    # -- construction -----------------------------------------------------------

    def note_unmatched(self, pattern: str, record: OpEvent, damage: bool = False) -> None:
        """Count an HB endpoint whose counterpart is missing.

        ``damage=True`` marks patterns that cannot occur in a complete
        trace (effect without cause on a traced stream): they flip the
        graph to ``partial`` and downgrade downstream confidence."""
        self.unmatched[pattern] += 1
        if damage:
            self._damage_patterns.add(pattern)

    @property
    def partial(self) -> bool:
        """True when this graph was built from a demonstrably incomplete
        trace — either salvage reported lost records, or the rule modules
        found damage-indicating unmatched endpoints."""
        return bool(self._damage_patterns) or bool(
            getattr(self.trace, "partial", False)
        )

    @property
    def damage_patterns(self) -> Set[str]:
        return set(self._damage_patterns)

    def _scan_lock_balance(self) -> None:
        """Orphan lock endpoints.  A release without a prior acquire on
        the same thread can only come from a lost acquire record (locks
        exist only inside simulated threads); an acquire never released
        is normal (the holder crashed or the run ended)."""
        held: Dict[Tuple, int] = defaultdict(int)
        for record in self.trace.records:
            if record.kind is OpKind.LOCK_ACQUIRE:
                held[(record.obj_id, record.tid)] += 1
            elif record.kind is OpKind.LOCK_RELEASE:
                key = (record.obj_id, record.tid)
                if held[key] > 0:
                    held[key] -= 1
                else:
                    self.note_unmatched(
                        "lock_release_without_acquire", record, damage=True
                    )
        for (obj_id, tid), depth in held.items():
            if depth > 0:
                self.unmatched["lock_acquire_without_release"] += depth

    def _warn_if_partial(self) -> None:
        if not self._damage_patterns and not getattr(self.trace, "partial", False):
            return
        reasons = sorted(self._damage_patterns) or ["salvaged trace lost records"]
        print(
            f"warning: HB graph built from a partial trace "
            f"({', '.join(reasons)}); downstream candidates are "
            f'marked confidence="partial"',
            file=sys.stderr,
        )

    def _publish_build_metrics(self) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.counter("hb_graphs_built_total", "HB graphs constructed").inc()
        registry.gauge("hb_vertices", "trace records in the last graph").set(
            len(self.trace)
        )
        registry.gauge(
            "hb_backbone_vertices", "backbone size of the last graph"
        ).set(len(self.backbone))
        registry.gauge("hb_segments", "segments in the last graph").set(
            len(self._segments)
        )
        edges = registry.counter("hb_edges_total", "HB edges added, by rule")
        for rule, count in self.edge_counts.items():
            edges.labels(rule=rule).inc(count)
        if self.unmatched:
            orphans = registry.counter(
                "hb_unmatched_edges_total",
                "HB endpoints with no counterpart, by pattern",
            )
            for pattern, count in self.unmatched.items():
                orphans.labels(pattern=pattern).inc(count)

    def add_edge(self, seq_from: int, seq_to: int, rule: str) -> bool:
        """Add a backbone edge; both endpoints must be backbone records."""
        if seq_from >= seq_to:
            # Every HB edge must point forward in the executed order
            # (sequence order is the graph's topological order).  A
            # backward edge means a tracing-protocol bug — fail loudly
            # instead of silently corrupting reachability.
            from repro.errors import ReproError

            raise ReproError(
                f"backward HB edge {rule}: {seq_from} -> {seq_to}"
            )
        i = self._bidx.get(seq_from)
        j = self._bidx.get(seq_to)
        if i is None or j is None or i == j:
            return False
        if j in self._succ[i]:
            return False
        self._succ[i].add(j)
        self.edge_counts[rule] += 1
        self._reach = None
        return True

    def _build_edges(self) -> None:
        from repro.hb.rules import event as event_rules
        from repro.hb.rules import message as message_rules
        from repro.hb.rules import program as program_rules
        from repro.hb.rules import thread as thread_rules

        if self.model.program_order:
            program_rules.apply_program_order(self)
        if self.model.fork_join:
            thread_rules.apply_fork_join(self)
        if self.model.event:
            event_rules.apply_enqueue(self)
        if self.model.rpc:
            message_rules.apply_rpc(self)
        if self.model.socket:
            message_rules.apply_socket(self)
        if self.model.push:
            message_rules.apply_push(self)
        for edge in self.pull_edges:
            self.add_edge(edge.write_seq, edge.read_seq, f"Mpull:{edge.kind}")
        if self.model.eserial:
            event_rules.apply_serial_fixpoint(self)

    # -- reachability -------------------------------------------------------------

    def _ensure_reach(self):
        if self._reach is None:
            with obs.span(
                "hb.reach",
                backbone=len(self.backbone),
                backend=self.reach_backend,
            ):
                self._reach = build_reachability(self)
                stats = self._reach.stats()
                obs.gauge(
                    "hb_reach_matrix_bytes",
                    "reachability structure size (bytes)",
                ).set(stats["bytes"])
                if "chains" in stats:
                    obs.gauge(
                        "hb_reach_chains",
                        "chains in the compressed reachability structure",
                    ).set(stats["chains"])
        return self._reach

    def reach_stats(self) -> Dict[str, int]:
        """Size statistics of the (built-on-demand) reachability backend."""
        return self._ensure_reach().stats()

    def backbone_reaches(self, i: int, j: int) -> bool:
        """Strict reachability between backbone indices."""
        if i == j:
            return False
        return self._ensure_reach().reaches(i, j)

    # -- nearest-backbone lookups ----------------------------------------------

    def _next_backbone(self, record: OpEvent) -> Optional[int]:
        """Backbone index of ``record`` itself or the next one after it
        in its segment."""
        if record.seq in self._bidx:
            return self._bidx[record.seq]
        segment, pos = self._position[record.seq]
        positions = self._seg_backbone_pos[segment]
        k = bisect.bisect_left(positions, pos)
        if k >= len(positions):
            return None
        return self._seg_backbone_idx[segment][k]

    def _prev_backbone(self, record: OpEvent) -> Optional[int]:
        if record.seq in self._bidx:
            return self._bidx[record.seq]
        segment, pos = self._position[record.seq]
        positions = self._seg_backbone_pos[segment]
        k = bisect.bisect_right(positions, pos) - 1
        if k < 0:
            return None
        return self._seg_backbone_idx[segment][k]

    # -- public queries ------------------------------------------------------------

    def happens_before(self, a: OpEvent, b: OpEvent) -> bool:
        """Does ``a`` happen before ``b`` under the model's rules?"""
        if a.seq == b.seq:
            return False
        seg_a, pos_a = self._position[a.seq]
        seg_b, pos_b = self._position[b.seq]
        if seg_a == seg_b:
            return self.model.program_order and pos_a < pos_b
        na = self._next_backbone(a)
        pb = self._prev_backbone(b)
        if na is None or pb is None:
            return False
        if na == pb:
            # One backbone vertex lies between them (a <= v <= b): this can
            # only happen when a or b *is* that vertex in another segment,
            # which segment disjointness excludes — defensive anyway.
            return True
        return self.backbone_reaches(na, pb)

    def concurrent(self, a: OpEvent, b: OpEvent) -> bool:
        return not self.happens_before(a, b) and not self.happens_before(b, a)

    def ordered(self, a: OpEvent, b: OpEvent) -> bool:
        return not self.concurrent(a, b)

    # -- statistics -------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "vertices": len(self.trace),
            "backbone": len(self.backbone),
            "edges": sum(len(s) for s in self._succ),
            "segments": len(self._segments),
            "pull_edges": len(self.pull_edges),
            "unmatched": sum(self.unmatched.values()),
        }
