"""Graphviz export of the happens-before graph (debugging aid)."""

from __future__ import annotations

from typing import Optional

from repro.hb.explain import ChainExplainer
from repro.hb.graph import HBGraph

_RULE_COLORS = {
    "P": "gray",
    "Tfork": "blue",
    "Tjoin": "blue",
    "Eenq": "darkgreen",
    "Eserial": "green",
    "Mrpc": "red",
    "Msoc": "orange",
    "Mpush": "purple",
}


def graph_to_dot(
    graph: HBGraph,
    max_nodes: Optional[int] = 400,
    name: str = "hb",
) -> str:
    """Render the backbone graph as DOT, edges colored by rule."""
    explainer = ChainExplainer(graph)
    backbone = graph.backbone
    if max_nodes is not None and len(backbone) > max_nodes:
        backbone = backbone[:max_nodes]
    included = {record.seq for record in backbone}
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=box, fontsize=9];"]
    for record in backbone:
        label = f"{record.seq} {record.kind.value}\\n{record.node}/{record.thread_name}"
        lines.append(f'  n{record.seq} [label="{label}"];')
    for i, succs in enumerate(graph._succ):
        a = graph.backbone[i]
        if a.seq not in included:
            continue
        for j in succs:
            b = graph.backbone[j]
            if b.seq not in included:
                continue
            rule = explainer._edge_rules.get((i, j), "?")
            color = _RULE_COLORS.get(rule.split(":")[0], "black")
            lines.append(
                f'  n{a.seq} -> n{b.seq} [label="{rule}", color={color}, fontsize=8];'
            )
    lines.append("}")
    return "\n".join(lines)
