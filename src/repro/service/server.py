"""The always-on multi-tenant detection server.

One process, many tenants: each tenant ships WAL segments over TCP
(:mod:`repro.service.protocol`), the server spools them durably, a
per-tenant pump thread merges spooled segments into that tenant's
:class:`StreamingDetector` in global seq order, and a canonical report
is published when the tenant finalizes.  The moving parts:

* **admission control** — :class:`repro.analysis.governor.FleetBudget`
  decides whether a new ``hello`` fits (tenant count, RSS headroom);
  refusals are structured ``over_capacity`` errors with a
  ``retry_after_s`` the client honours;
* **credit-based backpressure** — every segment ACK carries the
  tenant's remaining queue credits (``queue_segments`` minus spooled-
  but-unpumped segments); at zero the next upload gets ``over_queue``
  + retry-after instead of unbounded buffering.  One carve-out keeps
  the scheme deadlock-free: a segment for a stream the merge is
  *starved* on is always admitted (even under ``paused``), because it
  is the only thing that lets the backlog drain;
* **overload ladder** — a monitor thread polls fleet pressure (RSS
  *and* aggregate queue depth) and walks every tenant along
  ``full -> sampled -> paused`` with hysteresis; ``sampled`` engages
  the PR-9 sampler (reports honestly say ``"sampled"``), ``paused``
  stops issuing credits until pressure drains;
* **circuit breaker** — per-tenant quarantine after a streak of
  torn/CRC-bad segment uploads, evidence preserved on disk;
* **crash recovery** — ingestion ACKs only after fsync+rename into the
  spool; the pump checkpoints its detector with a raw-merge watermark;
  on restart every tenant directory is recovered and resumed.  Because
  the merge order is deterministic, ``kill -9`` + restart loses no
  acknowledged segment and re-produces byte-identical reports.

The transport is real TCP on localhost rather than the simulated
``repro.runtime.sockets`` layer: crash recovery must survive an OS
``kill -9``, which requires the server to be a real process reachable
across process boundaries.  The *discipline* is inherited, though —
verb-tagged frames and WAL-grade CRC framing on every message.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import Dict, Optional, Tuple

from repro import obs
from repro.analysis.governor import (
    FleetBudget,
    OVERLOAD_LADDER,
    maybe_stall,
)
from repro.hb.model import FULL_MODEL, HBModel
from repro.obs.http import ObsHttpServer
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import protocol
from repro.service.protocol import error_frame, ok_frame
from repro.service.tenants import DEFAULT_CHECKPOINT_EVERY, Tenant
from repro.trace.wal import verify_segment_bytes

__all__ = ["DetectionServer", "SERVICE_FILE", "load_service_file"]

SERVICE_FILE = "service.json"

#: Suggested client sleep for each transient refusal, seconds.
RETRY_AFTER = {"over_capacity": 1.0, "over_queue": 0.1, "paused": 0.2,
               "not_ready": 0.1}

#: Raw records one pump() call may advance before yielding (keeps the
#: pump preemptible for checkpoints and, with ``pump_delay_s``, gives
#: the overload benchmark a way to make ingest outrun detection).
PUMP_BATCH = 4096


def load_service_file(data_dir: str) -> Dict[str, object]:
    with open(os.path.join(data_dir, SERVICE_FILE)) as fh:
        return json.load(fh)


class DetectionServer:
    """Long-running detection service over a data directory."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[FleetBudget] = None,
        model: HBModel = FULL_MODEL,
        window: Optional[int] = None,
        max_bad_segments: int = 3,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        overload_poll_s: float = 0.1,
        pump_delay_s: float = 0.0,
        http_port: Optional[int] = None,
    ) -> None:
        self.data_dir = os.path.abspath(data_dir)
        self.host = host
        self.port = port
        self.limits = limits if limits is not None else FleetBudget()
        self.model = model
        self.window = window
        self.max_bad_segments = max_bad_segments
        self.checkpoint_every = checkpoint_every
        self.overload_poll_s = overload_poll_s
        #: Artificial per-batch pump delay — the overload benchmark's
        #: "detection is slower than ingest" injection knob.
        self.pump_delay_s = pump_delay_s
        self.http_port = http_port
        self.overload_level = "full"
        self.tenants: Dict[str, Tenant] = {}
        self._pumps: Dict[str, threading.Thread] = {}
        self._lock = threading.RLock()
        self._stopping = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: list = []
        self.http: Optional[ObsHttpServer] = None
        self.registry = MetricsRegistry()

    # -- lifecycle ---------------------------------------------------------

    @property
    def tenants_dir(self) -> str:
        return os.path.join(self.data_dir, "tenants")

    def start(self) -> "DetectionServer":
        os.makedirs(self.tenants_dir, exist_ok=True)
        set_registry(self.registry)
        self._recover_tenants()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        if self.http_port is not None:
            self.http = ObsHttpServer(
                host=self.host,
                port=self.http_port,
                readiness=self._readiness,
                registry=self.registry,
            ).start()
        self._write_service_file()
        accept = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        accept.start()
        monitor = threading.Thread(
            target=self._overload_loop, name="service-overload", daemon=True
        )
        monitor.start()
        self._threads = [accept, monitor]
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        with self._lock:
            tenants = list(self.tenants.values())
            pumps = list(self._pumps.values())
        for tenant in tenants:
            tenant.wakeup.set()
        for pump in pumps:
            pump.join(timeout=10)
        for tenant in tenants:
            if not tenant.done:
                with tenant.lock:
                    tenant.maybe_checkpoint(force=True)
        if self.http is not None:
            self.http.stop()
            self.http = None
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (used by the CLI ``serve``)."""
        while not self._stopping.is_set():
            time.sleep(0.2)

    def _write_service_file(self) -> None:
        doc = {
            "format": "repro-service",
            "version": protocol.PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "http_port": self.http.port if self.http is not None else None,
            "data_dir": self.data_dir,
        }
        path = os.path.join(self.data_dir, SERVICE_FILE)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        os.replace(tmp, path)

    # -- recovery ----------------------------------------------------------

    def _recover_tenants(self) -> None:
        """Rebuild every tenant found under the data directory and
        restart pumps for the unfinished ones.  The spool (durable,
        ACK-ordered) is the source of truth; see ``Tenant.recover``."""
        for entry in sorted(os.listdir(self.tenants_dir)):
            root = os.path.join(self.tenants_dir, entry)
            if not os.path.isfile(os.path.join(root, "state.json")):
                continue
            try:
                tenant = Tenant.recover(
                    entry,
                    root,
                    model=self.model,
                    window=self.window,
                    max_bad_segments=self.max_bad_segments,
                    checkpoint_every=self.checkpoint_every,
                )
            except (OSError, ValueError, KeyError) as exc:
                obs.counter(
                    "service_recover_failures_total",
                    "tenant directories that failed recovery",
                ).labels(tenant=entry).inc()
                # Leave the directory for the operator; do not serve it.
                print(f"service: tenant {entry} failed recovery: {exc}")
                continue
            self.tenants[entry] = tenant
            obs.counter(
                "service_tenants_recovered_total",
                "tenants rebuilt from disk at startup",
            ).inc()
            if not tenant.done and not tenant.breaker.quarantined:
                self._start_pump(tenant)

    # -- pumps -------------------------------------------------------------

    def _start_pump(self, tenant: Tenant) -> None:
        thread = threading.Thread(
            target=self._pump_loop,
            args=(tenant,),
            name=f"pump-{tenant.tenant_id}",
            daemon=True,
        )
        self._pumps[tenant.tenant_id] = thread
        thread.start()

    def _pump_loop(self, tenant: Tenant) -> None:
        while not self._stopping.is_set():
            if tenant.breaker.quarantined:
                return
            with tenant.lock:
                advanced = tenant.pump(limit=PUMP_BATCH)
                tenant.maybe_checkpoint()
                drained = tenant.drained
            maybe_stall("service_pump")
            if self.pump_delay_s and advanced:
                time.sleep(self.pump_delay_s)
            if drained:
                with tenant.lock:
                    tenant.write_report()
                return
            if advanced == 0:
                tenant.wakeup.wait(0.05)
                tenant.wakeup.clear()

    # -- overload ladder ---------------------------------------------------

    def _active_tenants(self) -> list:
        return [
            t
            for t in self.tenants.values()
            if not t.done and not t.breaker.quarantined
        ]

    def _overload_loop(self) -> None:
        gauge = obs.gauge(
            "service_overload_level",
            "fleet overload ladder rung (0=full 1=sampled 2=paused)",
        )
        pending_gauge = obs.gauge(
            "service_pending_segments",
            "spooled-but-unpumped segments across the fleet",
        )
        while not self._stopping.is_set():
            with self._lock:
                active = self._active_tenants()
            pending = sum(t.pending_segments() for t in active)
            pending_gauge.set(pending)
            level = self.limits.overload_level(
                self.overload_level,
                pending_segments=pending,
                active_tenants=max(1, len(active)),
            )
            if level != self.overload_level:
                self.overload_level = level
                gauge.set(OVERLOAD_LADDER.index(level))
                for tenant in active:
                    tenant.set_mode(level)
            else:
                # Late joiners inherit the current rung.
                for tenant in active:
                    if tenant.mode != level:
                        tenant.set_mode(level)
            self._stopping.wait(self.overload_poll_s)

    def _readiness(self) -> Tuple[bool, str]:
        if self._stopping.is_set():
            return False, "shutting down"
        if self.overload_level == "paused":
            return False, "overload ladder: paused"
        with self._lock:
            refusal = self.limits.admit_tenant(len(self._active_tenants()))
        if refusal:
            return False, refusal
        return True, ""

    # -- connections -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.settimeout(60.0)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while not self._stopping.is_set():
                try:
                    frame = protocol.recv_frame(rfile)
                except protocol.ProtocolError as exc:
                    try:
                        protocol.send_frame(
                            wfile, error_frame("protocol", str(exc))
                        )
                    except OSError:
                        pass
                    return
                except (OSError, socket.timeout):
                    return
                if frame is None:
                    return
                doc, body = frame
                started = time.perf_counter()
                response = self._dispatch(doc, body)
                obs.histogram(
                    "service_request_seconds",
                    "server-side request handling latency",
                ).labels(verb=str(doc.get("verb", "?"))).observe(
                    time.perf_counter() - started
                )
                try:
                    protocol.send_frame(wfile, response)
                except (OSError, socket.timeout):
                    return
                if doc.get("verb") == "shutdown" and response.get("ok"):
                    self._stopping.set()
                    if self._listener is not None:
                        try:
                            self._listener.close()
                        except OSError:
                            pass
                    return
        finally:
            for closer in (rfile.close, wfile.close, conn.close):
                try:
                    closer()
                except OSError:
                    pass

    # -- verb handlers -----------------------------------------------------

    def _dispatch(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        verb = doc.get("verb")
        handler = {
            "hello": self._handle_hello,
            "segment": self._handle_segment,
            "finalize": self._handle_finalize,
            "report": self._handle_report,
            "status": self._handle_status,
            "shutdown": lambda d, b: ok_frame(stopping=True),
        }.get(verb)  # type: ignore[arg-type]
        if handler is None:
            return error_frame("bad_request", f"unknown verb {verb!r}")
        try:
            return handler(doc, body)
        except Exception as exc:  # never kill the connection loop
            obs.counter(
                "service_handler_errors_total",
                "unexpected exceptions inside verb handlers",
            ).labels(verb=str(verb)).inc()
            return error_frame("internal", f"{type(exc).__name__}: {exc}")

    def _tenant_or_error(
        self, doc: Dict[str, object]
    ) -> Tuple[Optional[Tenant], Optional[Dict[str, object]]]:
        tenant_id = doc.get("tenant")
        if not isinstance(tenant_id, str) or not protocol.valid_tenant_id(
            tenant_id
        ):
            return None, error_frame("bad_request", "bad tenant id")
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            return None, error_frame(
                "bad_request", f"unknown tenant {tenant_id!r}; hello first"
            )
        return tenant, None

    def _credits(self, tenant: Tenant) -> int:
        if tenant.mode == "paused":
            return 0
        return max(
            0, self.limits.queue_segments - tenant.pending_segments()
        )

    def _session_fields(self, tenant: Tenant) -> Dict[str, object]:
        return {
            "credits": self._credits(tenant),
            "mode": tenant.mode,
            "overload_level": self.overload_level,
        }

    def _handle_hello(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        tenant_id = doc.get("tenant")
        if not isinstance(tenant_id, str) or not protocol.valid_tenant_id(
            tenant_id
        ):
            return error_frame("bad_request", "bad tenant id")
        raw_streams = doc.get("streams")
        if not isinstance(raw_streams, list) or not raw_streams:
            return error_frame(
                "bad_request", "hello must declare streams=[[node, tid], ...]"
            )
        try:
            streams = sorted((str(n), int(t)) for n, t in raw_streams)
        except (TypeError, ValueError):
            return error_frame("bad_request", "malformed stream declaration")
        raw_totals = doc.get("totals") or {}
        if not isinstance(raw_totals, dict):
            return error_frame("bad_request", "malformed totals declaration")
        try:
            totals = {str(k): int(v) for k, v in raw_totals.items()}
        except (TypeError, ValueError):
            return error_frame("bad_request", "malformed totals declaration")
        with self._lock:
            tenant = self.tenants.get(tenant_id)
            if tenant is not None:
                if tenant.breaker.quarantined:
                    return error_frame(
                        "quarantined",
                        f"tenant {tenant_id} is quarantined "
                        f"(evidence under {tenant.breaker.quarantine_dir})",
                    )
                if streams != tenant.stream_keys():
                    return error_frame(
                        "bad_request",
                        "hello stream set does not match the existing "
                        "session (sessions are immutable once declared)",
                    )
                problem = tenant.declare_totals(totals)
                if problem is not None:
                    return error_frame("bad_request", problem)
                if totals:
                    tenant.save_state()
                    tenant.wakeup.set()
                return ok_frame(
                    resumed=True,
                    report_ready=tenant.done,
                    **self._session_fields(tenant),
                )
            refusal = self.limits.admit_tenant(len(self._active_tenants()))
            if refusal:
                obs.counter(
                    "service_admission_refusals_total",
                    "hello attempts refused by admission control",
                ).inc()
                return error_frame(
                    "over_capacity",
                    refusal,
                    retry_after_s=RETRY_AFTER["over_capacity"],
                )
            root = os.path.join(self.tenants_dir, tenant_id)
            os.makedirs(root, exist_ok=True)
            tenant = Tenant(
                tenant_id,
                root,
                model=self.model,
                window=self.window,
                max_bad_segments=self.max_bad_segments,
                checkpoint_every=self.checkpoint_every,
            )
            tenant.declare_streams(streams)
            tenant.declare_totals(totals)
            tenant.set_mode(self.overload_level)
            tenant.save_state()
            self.tenants[tenant_id] = tenant
            self._start_pump(tenant)
            obs.gauge(
                "service_tenants_active", "admitted, unfinished tenants"
            ).set(len(self._active_tenants()))
        return ok_frame(resumed=False, **self._session_fields(tenant))

    def _handle_segment(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        tenant, err = self._tenant_or_error(doc)
        if err is not None:
            return err
        if tenant.breaker.quarantined:
            return error_frame(
                "quarantined", f"tenant {tenant.tenant_id} is quarantined"
            )
        try:
            node = str(doc["node"])
            tid = int(doc["tid"])
            index = int(doc["index"])
        except (KeyError, TypeError, ValueError):
            return error_frame(
                "bad_request", "segment needs node, tid, index"
            )
        stream = tenant.streams.get((node, tid))
        if stream is None:
            return error_frame(
                "unknown_stream",
                f"stream {node}/{tid} was not declared in hello",
            )
        with tenant.lock:
            if index < stream.received:
                # Duplicate of a durably-spooled segment (client retried
                # across a lost ACK or a server restart): idempotent ok
                # even after finalize, so a full re-ship is always safe.
                return ok_frame(
                    duplicate=True, **self._session_fields(tenant)
                )
            if tenant.finalized:
                return error_frame(
                    "bad_request",
                    "tenant already finalized; no new segments",
                )
            if index > stream.received:
                return error_frame(
                    "out_of_order",
                    f"expected segment {stream.received} for "
                    f"{node}/{tid}, got {index}",
                    expected=stream.received,
                )
            if stream.declared is not None and index >= stream.declared:
                return error_frame(
                    "bad_request",
                    f"stream {node}/{tid} declared {stream.declared} "
                    f"segments; segment {index} is beyond that",
                )
            # Starvation relief bypasses backpressure AND the paused
            # rung: a segment the merge is starved on is the only way
            # the backlog can drain, so refusing it would deadlock the
            # tenant (the ladder would never recover).
            hungry = stream.hungry
        if not hungry:
            if tenant.mode == "paused":
                return error_frame(
                    "paused",
                    "ingestion paused by the overload ladder",
                    retry_after_s=RETRY_AFTER["paused"],
                )
            if tenant.pending_segments() >= self.limits.queue_segments:
                obs.counter(
                    "service_backpressure_total",
                    "segment uploads deferred by queue backpressure",
                ).labels(tenant=tenant.tenant_id).inc()
                return error_frame(
                    "over_queue",
                    "tenant ingest queue is full; wait for credits",
                    retry_after_s=RETRY_AFTER["over_queue"],
                )
        _count, sealed, reason = verify_segment_bytes(body)
        if reason is not None or not sealed:
            reason = reason or "unsealed segment on the wire"
            tripped = tenant.breaker.record_bad(
                f"{node}-{tid}-{index:04d}.wal", body, reason
            )
            if tripped:
                tenant.save_state()
                tenant.wakeup.set()
                return error_frame(
                    "quarantined",
                    f"tenant {tenant.tenant_id} quarantined after "
                    f"{tenant.breaker.bad_streak} damaged segments "
                    f"({reason})",
                )
            return error_frame("bad_segment", reason)
        tenant.breaker.record_good()
        started = time.perf_counter()
        with tenant.lock:
            if index < stream.received:  # raced with a duplicate
                return ok_frame(duplicate=True, **self._session_fields(tenant))
            os.makedirs(stream.directory, exist_ok=True)
            path = stream.segment_path(index)
            tmp = path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(body)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            stream.received = index + 1
        tenant.wakeup.set()
        obs.counter(
            "service_segments_ingested_total",
            "WAL segments durably spooled",
        ).labels(tenant=tenant.tenant_id).inc()
        obs.histogram(
            "service_ingest_seconds",
            "durable spool latency per segment (server side)",
        ).labels(tenant=tenant.tenant_id).observe(
            time.perf_counter() - started
        )
        return ok_frame(**self._session_fields(tenant))

    def _handle_finalize(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        tenant, err = self._tenant_or_error(doc)
        if err is not None:
            return err
        if tenant.breaker.quarantined:
            return error_frame(
                "quarantined", f"tenant {tenant.tenant_id} is quarantined"
            )
        counts = doc.get("counts")
        if not isinstance(counts, dict):
            return error_frame(
                "bad_request", 'finalize needs counts={"node/tid": n}'
            )
        with tenant.lock:
            problem = tenant.finalize(
                {str(k): int(v) for k, v in counts.items()}
            )
        if problem is not None:
            return error_frame("incomplete", problem)
        tenant.wakeup.set()
        return ok_frame(**self._session_fields(tenant))

    def _handle_report(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        tenant, err = self._tenant_or_error(doc)
        if err is not None:
            return err
        if tenant.breaker.quarantined:
            return error_frame(
                "quarantined",
                f"tenant {tenant.tenant_id} is quarantined; no report",
            )
        if not tenant.done:
            return error_frame(
                "not_ready",
                "detection still running",
                retry_after_s=RETRY_AFTER["not_ready"],
            )
        with open(tenant.report_path) as fh:
            report = json.load(fh)
        return ok_frame(report=report)

    def _handle_status(
        self, doc: Dict[str, object], body: bytes
    ) -> Dict[str, object]:
        with self._lock:
            tenants = {
                t.tenant_id: {
                    "mode": t.mode,
                    "done": t.done,
                    "quarantined": t.breaker.quarantined,
                    "finalized": t.finalized,
                    "pending_segments": t.pending_segments(),
                    "received_segments": sum(
                        s.received for s in t.streams.values()
                    ),
                    "records_consumed": (
                        t.detector.records_consumed
                        if t.detector is not None
                        else 0
                    ),
                }
                for t in self.tenants.values()
            }
        return ok_frame(
            overload_level=self.overload_level,
            pid=os.getpid(),
            tenants=tenants,
        )
