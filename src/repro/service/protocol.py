"""Wire protocol for the always-on detection service.

The service speaks length+CRC framed JSON over a byte stream — the same
self-verifying framing discipline the WAL uses on disk (PR-4), applied
to the socket.  One frame::

    F <len:08x> <crc:08x> <json>\n[body bytes]

``len`` covers the JSON payload, ``crc`` is ``zlib.crc32`` of it; when
the JSON carries a ``"body"`` byte count, exactly that many raw bytes
follow the newline (used to ship WAL segment bytes verbatim — the
segment's own record CRCs then make end-to-end verification free).

Verbs (client -> server), mirroring the verb-tagged ``Message``
discipline of ``repro.runtime.sockets``:

* ``hello``    — open/resume a tenant session; declares the stream set
  (``streams: [[node, tid], ...]``) upfront so the server's k-way merge
  knows when it may pop (admission control answers here).  May also
  carry ``totals: {"node/tid": n}`` — final per-stream segment counts —
  so the merge can close a fully-shipped stream *mid-session* instead
  of starving on it until finalize (without totals, a short stream
  that finishes early would stall the merge, and with it the queue
  drain, until every other stream finished shipping);
* ``segment``  — one WAL segment for a declared stream, bytes in the
  frame body; ACKed only after the bytes are durably spooled;
* ``finalize`` — the tenant is done shipping; declares the per-stream
  segment counts so the server can verify completeness;
* ``report``   — poll for the tenant's finished detection report;
* ``status``   — server-wide snapshot (tenants, overload level);
* ``shutdown`` — ask the server to stop (operator use).

Every response is ``{"ok": true, ...}`` or a **structured error**
``{"ok": false, "error": <code>, "message": ..., "retry_after_s": ...}``.
Transient codes (``over_capacity``, ``over_queue``, ``paused``,
``not_ready``) carry ``retry_after_s`` and are retried by the client's
full-jitter backoff; terminal codes (``quarantined``, ``bad_segment``,
``out_of_order``, ``unknown_stream``, ``bad_request``) propagate as
:class:`repro.errors.ServiceError`.
"""

from __future__ import annotations

import json
import re
import socket
import zlib
from typing import BinaryIO, Dict, Optional, Tuple

from repro.errors import ServiceError

__all__ = [
    "PROTOCOL_VERSION",
    "RETRYABLE_ERRORS",
    "ProtocolError",
    "error_frame",
    "ok_frame",
    "raise_for_error",
    "recv_frame",
    "send_frame",
    "valid_tenant_id",
]

PROTOCOL_VERSION = 1

#: Error codes the client treats as transient (retry with backoff).
RETRYABLE_ERRORS = frozenset(
    {"over_capacity", "over_queue", "paused", "not_ready", "busy"}
)

_MAX_FRAME_JSON = 1 << 20  # 1 MiB of JSON is already a malformed peer
_MAX_FRAME_BODY = 64 << 20  # segments are ~100s of KB; 64 MiB is a cap
_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ProtocolError(ServiceError):
    """The byte stream violated the framing (torn frame, CRC mismatch,
    oversized payload).  Fatal for the connection, not the tenant."""

    def __init__(self, message: str):
        super().__init__(message, code="protocol")


def valid_tenant_id(tenant: str) -> bool:
    """Tenant ids become path components; keep them boring."""
    return bool(_TENANT_ID_RE.match(tenant))


def send_frame(
    wfile: BinaryIO, doc: Dict[str, object], body: bytes = b""
) -> None:
    """Write one frame (and flush).  ``body`` bytes ride after the
    JSON line; the receiver learns their length from ``doc["body"]``."""
    if body:
        doc = dict(doc)
        doc["body"] = len(body)
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    wfile.write(b"F %08x %08x %s\n" % (len(payload), crc, payload))
    if body:
        wfile.write(body)
    wfile.flush()


def recv_frame(
    rfile: BinaryIO,
) -> Optional[Tuple[Dict[str, object], bytes]]:
    """Read one frame; ``None`` on clean EOF (peer closed between
    frames).  Raises :class:`ProtocolError` on torn/corrupt framing."""
    header = rfile.read(20)  # b"F " + 8 hex + b" " + 8 hex + b" "
    if not header:
        return None
    if len(header) < 20 or not header.startswith(b"F "):
        raise ProtocolError("torn or unrecognized frame header")
    try:
        length = int(header[2:10], 16)
        crc = int(header[11:19], 16)
    except ValueError:
        raise ProtocolError("unparseable frame header")
    if length > _MAX_FRAME_JSON:
        raise ProtocolError(f"frame JSON too large ({length} bytes)")
    payload = rfile.read(length + 1)  # + trailing newline
    if len(payload) < length + 1 or payload[length:] != b"\n":
        raise ProtocolError("torn frame payload")
    payload = payload[:length]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise ProtocolError("frame CRC mismatch")
    try:
        doc = json.loads(payload)
    except ValueError:
        raise ProtocolError("frame payload is not JSON")
    if not isinstance(doc, dict):
        raise ProtocolError("frame payload is not an object")
    body = b""
    body_len = doc.get("body")
    if body_len:
        if not isinstance(body_len, int) or body_len < 0:
            raise ProtocolError("bad frame body length")
        if body_len > _MAX_FRAME_BODY:
            raise ProtocolError(f"frame body too large ({body_len} bytes)")
        body = rfile.read(body_len)
        if len(body) < body_len:
            raise ProtocolError("torn frame body")
    return doc, body


def ok_frame(**fields: object) -> Dict[str, object]:
    doc: Dict[str, object] = {"ok": True}
    doc.update(fields)
    return doc


def error_frame(
    code: str,
    message: str,
    retry_after_s: Optional[float] = None,
    **fields: object,
) -> Dict[str, object]:
    doc: Dict[str, object] = {"ok": False, "error": code, "message": message}
    if retry_after_s is not None:
        doc["retry_after_s"] = retry_after_s
    doc.update(fields)
    return doc


def raise_for_error(doc: Dict[str, object]) -> Dict[str, object]:
    """Turn an error response into a :class:`ServiceError`; pass an
    ``ok`` response through."""
    if doc.get("ok"):
        return doc
    code = str(doc.get("error", "error"))
    message = str(doc.get("message", code))
    retry = doc.get("retry_after_s")
    raise ServiceError(
        message,
        code=code,
        retry_after_s=float(retry) if retry is not None else None,
    )


def connect(host: str, port: int, timeout: float = 10.0) -> socket.socket:
    """TCP connect with TCP_NODELAY (frames are small and latency
    matters for the credit loop)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform quirk
        pass
    return sock
