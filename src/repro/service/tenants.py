"""Per-tenant state for the detection service.

Each admitted tenant owns a directory under ``<data_dir>/tenants/<id>``::

    state.json            durable session state (streams, finalize, mode)
    spool/<node>/thread-<tid>/seg-NNNN.wal    ingested segment bytes
    stream.ckpt           CRC-framed detector checkpoint (PR-7 format)
    report.json           canonical detection report, written once
    quarantine/           evidence bytes kept by the circuit breaker

The **spool is the WAL directory layout** — byte-for-byte the segments
the tenant's tracer wrote.  That is what makes the acceptance check
cheap: an offline ``repro stream <tenant>/spool`` pass over the spool
must produce the same canonical report the service did.

Ingestion is crash-ordered: a segment is ACKed only after its bytes are
durably in the spool (write-fsync-rename), and everything else —
``state.json``, the detector checkpoint — is reconstructible from the
spool plus the deterministic merge.  ``kill -9`` therefore loses
nothing that was ever acknowledged.

The merge is the correctness heart: :class:`StreamingDetector` requires
records in global ``seq`` order, but segments arrive interleaved across
streams.  :meth:`Tenant.pump` pops the min-``seq`` lookahead **only
when every open stream has one buffered** — so the pop order is the
total ``seq`` order regardless of arrival timing, which makes the
consumed prefix deterministic, which is what lets a raw-record-count
watermark in the checkpoint resume byte-identically after a crash.
"""

from __future__ import annotations

import json
import os
import threading
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro import obs
from repro.detect.streaming import (
    StreamingDetector,
    load_stream_checkpoint,
    save_stream_checkpoint,
    stream_fingerprint,
)
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.ops import OpEvent
from repro.service.breaker import CircuitBreaker
from repro.service.report import build_report_doc, render_report
from repro.trace.records import record_from_dict
from repro.trace.sampling import Sampler, build_sampler
from repro.trace.wal import iter_segment_records, list_stream_segments

__all__ = ["Tenant", "StreamKey", "TENANT_STATE_FORMAT"]

StreamKey = Tuple[str, int]  # (node, tid)

TENANT_STATE_FORMAT = "repro-service-tenant"
TENANT_STATE_VERSION = 1

#: Sampling spec the overload ladder's ``sampled`` rung engages
#: (PR-9's budget+rate composite: cold locations whole, hot thinned).
OVERLOAD_SAMPLING_SPEC = "budget:8+rate:0.1"

#: Raw merged records between detector checkpoint saves.
DEFAULT_CHECKPOINT_EVERY = 20_000


def stream_key_str(key: StreamKey) -> str:
    return f"{key[0]}/{key[1]}"


class _SpoolStream:
    """One (node, tid) stream: spooled segment files plus the parse
    cursor feeding the merge."""

    def __init__(self, node: str, tid: int, directory: str) -> None:
        self.node = node
        self.tid = tid
        self.directory = directory
        #: Segments durably spooled (next expected upload index).
        self.received = 0
        #: Segments fully parsed into the merge buffer.
        self.consumed_segments = 0
        #: Final segment count, set by ``finalize``.
        self.declared: Optional[int] = None
        self.pending: Deque[OpEvent] = deque()
        self.closed = False  # close_stream() delivered to the detector

    @property
    def key(self) -> StreamKey:
        return (self.node, self.tid)

    def segment_path(self, index: int) -> str:
        return os.path.join(self.directory, f"seg-{index:04d}.wal")

    def refill(self, damage: Counter) -> None:
        """Parse spooled segments into the merge buffer until a record
        is available (or the spool cursor catches up)."""
        while not self.pending and self.consumed_segments < self.received:
            path = self.segment_path(self.consumed_segments)
            with open(path, "rb") as fh:
                data = fh.read()
            for raw in iter_segment_records(data):
                try:
                    self.pending.append(record_from_dict(raw))
                except (ValueError, KeyError, TypeError):
                    # Segment CRC passed at ingest, so this is a schema
                    # problem, not corruption; count and continue.
                    damage["damaged_records"] += 1
            self.consumed_segments += 1

    @property
    def unparsed(self) -> int:
        """Spooled segments not yet parsed into the merge buffer."""
        return self.received - self.consumed_segments

    @property
    def hungry(self) -> bool:
        """Nothing buffered and nothing spooled to parse: the k-way
        merge may be starved on this stream, so backpressure must
        *never* refuse its next segment.  Without this carve-out a
        tenant with more streams than queue credits deadlocks — the
        credits fill with segments parked behind non-empty buffers
        while the merge starves on streams that were never allowed to
        ship, and the backlog can then never drain."""
        return not self.pending and self.unparsed == 0 and not self.closed

    @property
    def exhausted(self) -> bool:
        """All declared segments parsed and drained."""
        return (
            self.declared is not None
            and self.consumed_segments >= self.declared
            and not self.pending
        )

    @property
    def starved(self) -> bool:
        """Open (more data may come) but nothing buffered — the merge
        must stall rather than pop out of seq order."""
        return not self.pending and not self.exhausted


class Tenant:
    """One tenant's full lifecycle: ingest -> merge -> detect -> report."""

    def __init__(
        self,
        tenant_id: str,
        root: str,
        model: HBModel = FULL_MODEL,
        window: Optional[int] = None,
        max_bad_segments: int = 3,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        sampling_seed: int = 0,
    ) -> None:
        from repro.detect.streaming import DEFAULT_WINDOW

        self.tenant_id = tenant_id
        self.root = root
        self.model = model
        self.window = window if window is not None else DEFAULT_WINDOW
        self.checkpoint_every = checkpoint_every
        self.sampling_seed = sampling_seed
        self.streams: Dict[StreamKey, _SpoolStream] = {}
        self.finalized = False
        self.done = False
        #: Ingestion rung for this tenant ("full" | "sampled" | "paused").
        self.mode = "full"
        #: Sticky: the tenant's report must say "sampled" if the ladder
        #: ever thinned its stream, even if pressure later recovered.
        self.ever_sampled = False
        self.sampler: Optional[Sampler] = None
        self.damage: Counter = Counter()
        #: Raw merged records popped (kept *and* sampled-away) — the
        #: checkpoint watermark the deterministic merge resumes from.
        self.consumed_raw = 0
        self._skip_raw = 0
        self._last_checkpoint_raw = 0
        self.detector: Optional[StreamingDetector] = None
        self.breaker = CircuitBreaker(
            tenant=tenant_id,
            quarantine_dir=os.path.join(root, "quarantine"),
            max_bad_segments=max_bad_segments,
        )
        self.lock = threading.RLock()
        #: Pump wakeup: set on new segments / finalize / shutdown.
        self.wakeup = threading.Event()

    # -- paths -------------------------------------------------------------

    @property
    def spool_dir(self) -> str:
        return os.path.join(self.root, "spool")

    @property
    def state_path(self) -> str:
        return os.path.join(self.root, "state.json")

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.root, "stream.ckpt")

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, "report.json")

    def _fingerprint(self) -> str:
        return stream_fingerprint(
            self.model, self.window, f"service:{self.tenant_id}"
        )

    # -- durable state -----------------------------------------------------

    def save_state(self) -> None:
        doc = {
            "format": TENANT_STATE_FORMAT,
            "version": TENANT_STATE_VERSION,
            "tenant": self.tenant_id,
            "streams": [[node, tid] for node, tid in sorted(self.streams)],
            "finalized": self.finalized,
            "declared": {
                stream_key_str(s.key): s.declared
                for s in self.streams.values()
                if s.declared is not None
            },
            "ever_sampled": self.ever_sampled,
            "quarantined": self.breaker.quarantined,
            "bad_total": self.breaker.bad_total,
            "window": self.window,
        }
        tmp = self.state_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.state_path)

    @classmethod
    def recover(cls, tenant_id: str, root: str, **kwargs: object) -> "Tenant":
        """Rebuild a tenant from its directory after a restart.

        ``state.json`` restores the session (streams, finalize,
        quarantine, sampling history); the **spool is the source of
        truth** for what was durably ingested — received counts are
        re-derived by listing it, never trusted from state.  The
        detector checkpoint, when present and fingerprint-matched, is
        loaded so resume skips already-retired work."""
        with open(os.path.join(root, "state.json")) as fh:
            doc = json.load(fh)
        if doc.get("format") != TENANT_STATE_FORMAT:
            raise ValueError(f"{root}: not a tenant state file")
        kwargs.setdefault("window", doc.get("window"))
        self = cls(tenant_id, root, **kwargs)  # type: ignore[arg-type]
        self.declare_streams(
            [(str(n), int(t)) for n, t in doc.get("streams", [])]
        )
        self.ever_sampled = bool(doc.get("ever_sampled"))
        if self.ever_sampled:
            self._engage_sampler()
        self.breaker.quarantined = bool(doc.get("quarantined"))
        self.breaker.bad_total = int(doc.get("bad_total", 0))
        spooled = (
            list_stream_segments(self.spool_dir)
            if os.path.isdir(self.spool_dir)
            else {}
        )
        for key, paths in spooled.items():
            stream = self.streams.get(key)
            if stream is not None:
                stream.received = len(paths)
        declared = {
            key: int(count)
            for key, count in (doc.get("declared") or {}).items()
        }
        # Totals may have been declared at hello, before finalize; they
        # gate mid-session stream closes, so restore them either way.
        self.declare_totals(declared)
        if doc.get("finalized"):
            self.finalize(
                {
                    stream_key_str(s.key): declared.get(
                        stream_key_str(s.key), s.received
                    )
                    for s in self.streams.values()
                },
                persist=False,
            )
        if os.path.exists(self.report_path):
            self.done = True
        elif os.path.exists(self.checkpoint_path):
            ckpt = load_stream_checkpoint(self.checkpoint_path)
            if ckpt.get("fingerprint") == self._fingerprint():
                self.detector = StreamingDetector.from_snapshot(
                    ckpt["snapshot"], self.model
                )
                extra = ckpt.get("extra") or {}
                self.consumed_raw = 0
                self._skip_raw = int(
                    extra.get("consumed_raw", self.detector.records_consumed)
                )
                self._last_checkpoint_raw = self._skip_raw
                self.damage.update(
                    {
                        str(k): int(v)
                        for k, v in (extra.get("damage") or {}).items()
                    }
                )
                if self.sampler is not None:
                    for k, v in (extra.get("sampled_dropped") or {}).items():
                        self.sampler.dropped[str(k)] = int(v)
        return self

    # -- session -----------------------------------------------------------

    def declare_streams(self, keys: List[StreamKey]) -> None:
        for node, tid in keys:
            key = (node, tid)
            if key in self.streams:
                continue
            directory = os.path.join(
                self.spool_dir, node, f"thread-{tid}"
            )
            self.streams[key] = _SpoolStream(node, tid, directory)

    def stream_keys(self) -> List[StreamKey]:
        return sorted(self.streams)

    def pending_segments(self) -> int:
        """Spooled-but-unparsed segments across all streams (the
        tenant's queue depth, governing credits)."""
        return sum(
            s.received - s.consumed_segments for s in self.streams.values()
        )

    def declare_totals(self, totals: Dict[str, int]) -> Optional[str]:
        """Record final per-stream segment counts announced at hello.

        Lets the merge close a fully-shipped stream without waiting
        for finalize — otherwise a short stream starves the merge (and
        freezes the queue drain) until every other stream finishes.
        Returns an error message on a conflicting re-declaration."""
        with self.lock:
            for stream in self.streams.values():
                total = totals.get(stream_key_str(stream.key))
                if total is None:
                    continue
                if total < 0:
                    return "negative segment total"
                if stream.declared is not None and stream.declared != total:
                    return (
                        f"stream {stream_key_str(stream.key)} total changed "
                        f"({stream.declared} -> {total}); sessions are "
                        "immutable once declared"
                    )
                stream.declared = total
        return None

    def finalize(
        self, counts: Dict[str, int], persist: bool = True
    ) -> Optional[str]:
        """Record the tenant's declared final segment counts.  Returns
        an error message when a declared stream is still missing
        segments (the client should re-ship and retry)."""
        for stream in self.streams.values():
            declared = counts.get(stream_key_str(stream.key))
            if declared is None:
                return f"finalize missing stream {stream_key_str(stream.key)}"
            if stream.received < declared:
                return (
                    f"stream {stream_key_str(stream.key)} has "
                    f"{stream.received}/{declared} segments; re-ship"
                )
        for stream in self.streams.values():
            stream.declared = counts[stream_key_str(stream.key)]
        self.finalized = True
        if persist:
            self.save_state()
        return None

    # -- overload ladder ---------------------------------------------------

    def _engage_sampler(self) -> None:
        if self.sampler is None:
            self.sampler = build_sampler(
                OVERLOAD_SAMPLING_SPEC, seed=self.sampling_seed
            )
        self.ever_sampled = True

    def set_mode(self, mode: str) -> bool:
        """Apply an overload-ladder rung; returns True on a change."""
        with self.lock:
            if mode == self.mode:
                return False
            previous = self.mode
            self.mode = mode
            if mode != "full" and not self.ever_sampled:
                self._engage_sampler()
                self.save_state()  # ever_sampled is report-affecting
            obs.counter(
                "service_overload_transitions_total",
                "per-tenant overload ladder transitions",
            ).labels(tenant=self.tenant_id, to=mode).inc()
            if previous == "paused":
                self.wakeup.set()
            return True

    # -- the pump ----------------------------------------------------------

    def _ensure_detector(self) -> StreamingDetector:
        if self.detector is None:
            self.detector = StreamingDetector(
                model=self.model,
                window=self.window,
                expected_streams=[tid for _, tid in self.streams],
            )
        return self.detector

    def pump(self, limit: Optional[int] = None) -> int:
        """Drain the merge into the detector as far as seq order
        allows, up to ``limit`` raw records (keeps the pump
        preemptible).  Returns the number of raw records advanced
        (0 means the merge is starved — waiting on more segments)."""
        detector = self._ensure_detector()
        advanced = 0
        while limit is None or advanced < limit:
            best: Optional[_SpoolStream] = None
            for stream in self.streams.values():
                if stream.closed:
                    continue
                stream.refill(self.damage)
                if stream.exhausted:
                    # Deliver close exactly once, and never during the
                    # resume replay (pre-watermark closes are already
                    # in the checkpoint snapshot).
                    if self.consumed_raw >= self._skip_raw:
                        detector.close_stream(stream.tid)
                    stream.closed = True
                    continue
                if stream.starved:
                    return advanced  # cannot pop without risking order
                head = stream.pending[0]
                if best is None or head.seq < best.pending[0].seq:
                    best = stream
            if best is None:
                return advanced
            event = best.pending.popleft()
            self.consumed_raw += 1
            advanced += 1
            if self.consumed_raw <= self._skip_raw:
                # Resume replay: advance sampler state only; the
                # detector already holds this prefix.
                if self.sampler is not None:
                    self.sampler.observe(event)
                continue
            # "paused" is a superset of "sampled": the ladder is
            # monotone, so anything above the soft rung keeps the
            # detector on the sampler while it drains the backlog.
            if self.mode != "full" and self.sampler is not None:
                keep, _evictions = self.sampler.observe(event)
                if not keep:
                    continue
            detector.feed(event)

    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Save the detector checkpoint (with the raw watermark) when
        the cadence says so."""
        if self.detector is None:
            return False
        raw = max(self.consumed_raw, self._skip_raw)
        if not force and raw - self._last_checkpoint_raw < self.checkpoint_every:
            return False
        extra: Dict[str, object] = {
            "consumed_raw": raw,
            "damage": dict(self.damage),
        }
        if self.sampler is not None:
            extra["sampled_dropped"] = dict(self.sampler.dropped)
        save_stream_checkpoint(
            self.checkpoint_path,
            self.detector,
            self._fingerprint(),
            extra=extra,
        )
        self._last_checkpoint_raw = raw
        obs.counter(
            "service_checkpoints_total", "per-tenant detector checkpoints"
        ).labels(tenant=self.tenant_id).inc()
        return True

    @property
    def drained(self) -> bool:
        """Every declared stream parsed, merged, and closed."""
        return self.finalized and all(
            s.closed for s in self.streams.values()
        )

    def write_report(self) -> Dict[str, object]:
        """Finish the detector and atomically publish the canonical
        report.  Idempotent: an existing report is returned as-is."""
        if os.path.exists(self.report_path):
            with open(self.report_path) as fh:
                return json.load(fh)
        detector = self._ensure_detector()
        for stream in self.streams.values():
            if stream.closed:
                # Idempotent: re-deliver closes the resume replay may
                # have skipped (they were already in the snapshot).
                detector.close_stream(stream.tid)
        detector.finish()
        self.maybe_checkpoint(force=True)
        confidence = "full"
        if self.damage or detector.state.rootless_segments:
            confidence = "partial"
        # Honesty cuts both ways: "sampled" iff records were actually
        # dropped.  A transient ladder flap that engaged the sampler
        # but thinned nothing must not taint a complete report.
        if self.sampler is not None and sum(self.sampler.dropped.values()):
            confidence = "sampled"
        doc = build_report_doc(
            tenant=self.tenant_id,
            model=detector.state.model.describe(),
            window=detector.window,
            records=detector.records_consumed,
            streams=detector.state.stats()["streams_started"],
            pairs=[
                (c.first.seq, c.second.seq) for c in detector.candidates
            ],
            confidence=confidence,
            damage=dict(self.damage),
            sampled_dropped=(
                dict(self.sampler.dropped) if self.sampler is not None else {}
            ),
        )
        tmp = self.report_path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(render_report(doc))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.report_path)
        self.done = True
        obs.counter(
            "service_reports_total", "tenant reports published"
        ).labels(tenant=self.tenant_id, confidence=confidence).inc()
        return doc
