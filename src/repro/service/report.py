"""Canonical per-tenant detection reports.

The crash-recovery acceptance bar is **byte-identical** reports: a
tenant's report after ``kill -9`` + restart must equal the report an
uninterrupted run (or the offline ``stream`` pass over the same WAL)
would have produced.  That only works if the report contains nothing
nondeterministic — so the canonical doc carries the *detection outcome*
(candidate seq pairs, record counts, confidence, model, window) and
deliberately omits timings, RSS, and throughput.  Those live in metrics
and ``BENCH_service.json`` instead.

Both producers — the service's per-tenant pump and the offline
``stream --report-out`` pass — funnel through :func:`build_report_doc`
so the field set cannot drift.  Serialization is
``json.dumps(..., sort_keys=True, indent=2)`` + one trailing newline;
two equal docs are equal bytes.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Tuple

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "build_report_doc",
    "report_from_stream_result",
    "render_report",
]

REPORT_FORMAT = "repro-service-report"
REPORT_VERSION = 1


def build_report_doc(
    tenant: str,
    model: str,
    window: int,
    records: int,
    streams: int,
    pairs: Iterable[Tuple[int, int]],
    confidence: str,
    damage: Dict[str, int],
    sampled_dropped: Dict[str, int],
) -> Dict[str, object]:
    """The canonical (deterministic-fields-only) report document."""
    ordered = sorted((int(a), int(b)) for a, b in pairs)
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "tenant": tenant,
        "model": model,
        "window": window,
        "records": records,
        "streams": streams,
        "candidate_count": len(ordered),
        "candidates": [list(pair) for pair in ordered],
        "confidence": confidence,
        "damage": {k: int(damage[k]) for k in sorted(damage)},
        "sampled_dropped": {
            k: int(sampled_dropped[k]) for k in sorted(sampled_dropped)
        },
    }


def report_from_stream_result(tenant: str, result) -> Dict[str, object]:
    """Build the canonical doc from an offline
    :class:`repro.detect.streaming.StreamResult` (the ``stream
    --report-out`` path)."""
    return build_report_doc(
        tenant=tenant,
        model=result.model,
        window=result.window,
        records=result.records_consumed,
        streams=result.streams_seen,
        pairs=result.candidate_seq_pairs(),
        confidence=result.confidence,
        damage=result.damage,
        sampled_dropped=result.sampled_dropped,
    )


def render_report(doc: Dict[str, object]) -> bytes:
    """Canonical bytes for a report doc (stable across processes)."""
    return (json.dumps(doc, sort_keys=True, indent=2) + "\n").encode("utf-8")
