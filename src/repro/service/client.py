"""Client for the detection service: ship a WAL directory, get a report.

The client owns the *robustness* half of the contract:

* **reconnect + re-hello** across server restarts — every transport
  error tears down the socket and the next request redials and
  re-declares the session (the server answers ``resumed=True``);
* **full-jitter backoff** on transient refusals (``over_queue``,
  ``paused``, ``over_capacity``) and transport errors, reusing
  :func:`repro.runtime.rpc.backoff_delay` scaled to wall-clock — the
  server suggests ``retry_after_s`` and the jitter disperses a fleet
  of tenants retrying at once;
* **idempotent shipping** — segments are sent in per-stream index
  order; a retransmit after a lost ACK is answered ``duplicate: true``
  and costs nothing, which is what makes "retry on any doubt" safe.

``ship_wal_dir`` round-robins across the WAL's streams (so the server's
k-way merge is never starved by one stream running far ahead) and
records a per-segment ingest latency sample for the benchmark.
Transient refusals (``over_queue``/``paused``) skip to the next stream
rather than blocking the round-robin — paired with the server's
starvation-relief carve-out, that is what makes credit backpressure
deadlock-free even when a tenant has more streams than queue credits.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.runtime.rpc import backoff_delay
from repro.service import protocol
from repro.trace.wal import list_stream_segments, verify_segment_bytes

__all__ = ["ServiceClient", "ShipResult"]

#: Wall-clock seconds per backoff_delay step for client retries.
_BACKOFF_STEP_S = 0.05


class ShipResult:
    """Outcome of ``ship_wal_dir``: what went over the wire, how fast,
    and how often the server pushed back."""

    def __init__(self) -> None:
        self.segments_shipped = 0
        self.segments_duplicate = 0
        self.records_shipped = 0
        self.bytes_shipped = 0
        self.backpressure_waits = 0
        self.paused_waits = 0
        self.reconnects = 0
        self.ingest_latencies_s: List[float] = []
        self.elapsed_s = 0.0

    def latency_quantile(self, q: float) -> float:
        if not self.ingest_latencies_s:
            return 0.0
        ordered = sorted(self.ingest_latencies_s)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_dict(self) -> Dict[str, object]:
        return {
            "segments_shipped": self.segments_shipped,
            "segments_duplicate": self.segments_duplicate,
            "records_shipped": self.records_shipped,
            "bytes_shipped": self.bytes_shipped,
            "backpressure_waits": self.backpressure_waits,
            "paused_waits": self.paused_waits,
            "reconnects": self.reconnects,
            "elapsed_s": round(self.elapsed_s, 3),
            "ingest_p50_s": round(self.latency_quantile(0.50), 6),
            "ingest_p99_s": round(self.latency_quantile(0.99), 6),
        }


class ServiceClient:
    """One tenant's connection to a :class:`DetectionServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        timeout: float = 30.0,
        retry_deadline_s: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retry_deadline_s = retry_deadline_s
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._streams: Optional[List[Tuple[str, int]]] = None
        self._totals: Optional[Dict[str, int]] = None
        self.reconnects = 0
        self.backpressure_waits = 0
        self.paused_waits = 0

    # -- transport ---------------------------------------------------------

    def close(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _dial(self) -> None:
        self.close()
        self._sock = protocol.connect(self.host, self.port, self.timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        if self._streams is not None:
            # Re-establish the session on the (possibly restarted)
            # server before replaying the interrupted request.
            self._roundtrip(self._hello_doc())

    def _roundtrip(
        self, doc: Dict[str, object], body: bytes = b""
    ) -> Dict[str, object]:
        protocol.send_frame(self._wfile, doc, body)
        frame = protocol.recv_frame(self._rfile)
        if frame is None:
            raise ConnectionError("server closed the connection")
        return protocol.raise_for_error(frame[0])

    def request(
        self,
        doc: Dict[str, object],
        body: bytes = b"",
        retry_transient: bool = True,
    ) -> Dict[str, object]:
        """One verb round-trip with reconnect + full-jitter retry.

        Transport errors redial (surviving server restarts); transient
        structured errors honour the server's ``retry_after_s`` plus a
        jittered spread.  Gives up after ``retry_deadline_s``.  With
        ``retry_transient=False`` transient refusals raise immediately
        (transport errors still redial) — the shipping loop uses this
        to move on to another stream instead of blocking on one."""
        deadline = time.monotonic() + self.retry_deadline_s
        attempt = 0
        while True:
            try:
                if self._sock is None:
                    self._dial()
                return self._roundtrip(doc, body)
            except ServiceError as exc:
                if exc.code not in protocol.RETRYABLE_ERRORS:
                    raise
                if not retry_transient:
                    raise
                if time.monotonic() >= deadline:
                    raise
                if exc.code == "over_queue":
                    self.backpressure_waits += 1
                elif exc.code == "paused":
                    self.paused_waits += 1
                pause = exc.retry_after_s or 0.1
            except (ConnectionError, socket.timeout, OSError):
                self.close()
                self.reconnects += 1
                if time.monotonic() >= deadline:
                    raise
                pause = 0.0
            pause += _BACKOFF_STEP_S * backoff_delay(
                min(attempt, 6),
                key=f"{self.tenant}:{os.getpid()}:{doc.get('verb')}",
            )
            attempt += 1
            time.sleep(min(pause, max(0.0, deadline - time.monotonic())))

    # -- session verbs -----------------------------------------------------

    def _hello_doc(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "verb": "hello",
            "tenant": self.tenant,
            "streams": [list(k) for k in (self._streams or [])],
        }
        if self._totals:
            doc["totals"] = dict(self._totals)
        return doc

    def hello(
        self,
        streams: List[Tuple[str, int]],
        totals: Optional[Dict[Tuple[str, int], int]] = None,
    ) -> Dict[str, object]:
        """Open/resume the session.  ``totals`` (final per-stream
        segment counts, keyed by ``(node, tid)``) lets the server close
        fully-shipped streams mid-session — see the protocol docs."""
        self._streams = sorted((str(n), int(t)) for n, t in streams)
        self._totals = (
            {f"{n}/{t}": int(c) for (n, t), c in totals.items()}
            if totals
            else None
        )
        return self.request(self._hello_doc())

    def send_segment(
        self,
        node: str,
        tid: int,
        index: int,
        data: bytes,
        retry_transient: bool = True,
    ) -> Dict[str, object]:
        return self.request(
            {
                "verb": "segment",
                "tenant": self.tenant,
                "node": node,
                "tid": tid,
                "index": index,
            },
            body=data,
            retry_transient=retry_transient,
        )

    def finalize(self, counts: Dict[str, int]) -> Dict[str, object]:
        return self.request(
            {"verb": "finalize", "tenant": self.tenant, "counts": counts}
        )

    def status(self) -> Dict[str, object]:
        return self.request({"verb": "status"})

    def shutdown_server(self) -> Dict[str, object]:
        return self.request({"verb": "shutdown"})

    def wait_report(self, timeout_s: float = 120.0) -> Dict[str, object]:
        """Poll ``report`` until the tenant's detection finishes."""
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                response = self.request(
                    {"verb": "report", "tenant": self.tenant}
                )
                return response["report"]  # type: ignore[return-value]
            except ServiceError as exc:
                if exc.code != "not_ready" or time.monotonic() >= deadline:
                    raise
                time.sleep(exc.retry_after_s or 0.1)

    # -- shipping ----------------------------------------------------------

    def ship_wal_dir(self, wal_dir: str) -> ShipResult:
        """Ship every sealed segment of a WAL directory, round-robin
        across streams, then finalize.  Safe to re-run after any
        failure: already-spooled segments ACK as duplicates."""
        segments = list_stream_segments(wal_dir)
        if not segments:
            raise ServiceError(f"no WAL streams under {wal_dir}", code="empty")
        # Declaring totals upfront is the third leg of deadlock
        # freedom: without it the merge starves on a fully-shipped
        # short stream until finalize, which may be unreachable while
        # longer streams are queue-blocked.
        self.hello(
            sorted(segments),
            totals={key: len(paths) for key, paths in segments.items()},
        )
        result = ShipResult()
        started = time.monotonic()
        cursors = {key: 0 for key in segments}
        # Backpressure must never block the round-robin on a single
        # refused stream: the server always admits the segment its
        # merge is starved on, but only if we get around to offering
        # it.  So transient refusals skip to the next stream, and only
        # a full pass with zero progress sleeps (jittered, honouring
        # the server's retry_after_s).
        stalled_since: Optional[float] = None
        stall_pass = 0
        remaining = True
        while remaining:
            remaining = False
            progressed = False
            retry_after = 0.0
            last_refusal: Optional[ServiceError] = None
            for key in sorted(segments):
                index = cursors[key]
                paths = segments[key]
                if index >= len(paths):
                    continue
                remaining = True
                with open(paths[index], "rb") as fh:
                    data = fh.read()
                node, tid = key
                count, _sealed, _reason = verify_segment_bytes(data)
                sent_at = time.monotonic()
                try:
                    response = self.send_segment(
                        node, tid, index, data, retry_transient=False
                    )
                except ServiceError as exc:
                    if exc.code not in protocol.RETRYABLE_ERRORS:
                        raise
                    if exc.code == "over_queue":
                        self.backpressure_waits += 1
                    elif exc.code == "paused":
                        self.paused_waits += 1
                    retry_after = max(retry_after, exc.retry_after_s or 0.1)
                    last_refusal = exc
                    continue
                result.ingest_latencies_s.append(
                    time.monotonic() - sent_at
                )
                cursors[key] = index + 1
                result.segments_shipped += 1
                result.records_shipped += count
                result.bytes_shipped += len(data)
                if response.get("duplicate"):
                    result.segments_duplicate += 1
                progressed = True
            if not remaining or progressed:
                stalled_since = None
                stall_pass = 0
                continue
            now = time.monotonic()
            if stalled_since is None:
                stalled_since = now
            elif now - stalled_since > self.retry_deadline_s:
                raise last_refusal  # zero progress for the whole window
            time.sleep(
                retry_after
                + _BACKOFF_STEP_S
                * backoff_delay(
                    min(stall_pass, 6),
                    key=f"{self.tenant}:{os.getpid()}:ship",
                )
            )
            stall_pass += 1
        self.finalize(
            {f"{node}/{tid}": len(paths)
             for (node, tid), paths in segments.items()}
        )
        result.reconnects = self.reconnects
        result.backpressure_waits = self.backpressure_waits
        result.paused_waits = self.paused_waits
        result.elapsed_s = time.monotonic() - started
        return result
