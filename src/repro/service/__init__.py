"""Always-on multi-tenant detection service.

The deployment shape the whole repo has been building toward (see
ROADMAP.md): instead of one offline pass per trace, a long-running
server ingests WAL segment streams from many tenants concurrently and
publishes a canonical detection report per tenant.  The pieces:

* :mod:`repro.service.protocol` — CRC-framed verb protocol on TCP;
* :mod:`repro.service.server`   — :class:`DetectionServer`: admission
  control, credit backpressure, the overload ladder, circuit-breaker
  quarantine, and crash recovery from the durable spool;
* :mod:`repro.service.tenants`  — per-tenant spool + deterministic
  k-way merge + streaming detector + checkpoints;
* :mod:`repro.service.client`   — :class:`ServiceClient`: reconnect,
  full-jitter retries, idempotent shipping;
* :mod:`repro.service.report`   — the canonical, byte-stable report.

``repro serve`` / ``repro ship`` are the CLI faces; see
``docs/service.md`` for the operational story.
"""

from __future__ import annotations

from repro.service.client import ServiceClient, ShipResult
from repro.service.report import (
    REPORT_FORMAT,
    build_report_doc,
    render_report,
    report_from_stream_result,
)
from repro.service.server import DetectionServer, load_service_file

__all__ = [
    "DetectionServer",
    "REPORT_FORMAT",
    "ServiceClient",
    "ShipResult",
    "build_report_doc",
    "load_service_file",
    "render_report",
    "report_from_stream_result",
]
