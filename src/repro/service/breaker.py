"""Per-tenant circuit breaker for damaged segment uploads.

A tenant whose tracer (or network path) keeps producing torn or
CRC-damaged segments should not get to spend server CPU on every retry.
Each bad segment trips the breaker one notch; at ``max_bad_segments``
the tenant is **quarantined**: further requests get a terminal
``quarantined`` error and the offending bytes are preserved under the
tenant's ``quarantine/`` directory as evidence for the operator (the
same philosophy as salvage: never silently discard, always leave an
audit trail).

A valid segment closes the window on transient flakiness by resetting
the consecutive-failure count — the breaker trips on *streaks*, not
lifetime totals, so one glitchy retransmit does not doom a tenant.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro import obs

__all__ = ["CircuitBreaker", "DEFAULT_MAX_BAD_SEGMENTS"]

DEFAULT_MAX_BAD_SEGMENTS = 3


@dataclass
class CircuitBreaker:
    """Trips to ``quarantined`` after a streak of bad segments."""

    tenant: str
    quarantine_dir: str
    max_bad_segments: int = DEFAULT_MAX_BAD_SEGMENTS
    bad_streak: int = 0
    bad_total: int = 0
    quarantined: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_good(self) -> None:
        with self._lock:
            self.bad_streak = 0

    def record_bad(self, name: str, data: bytes, reason: str) -> bool:
        """Count one damaged segment, preserving its bytes as evidence.
        Returns True when this trip quarantined the tenant."""
        with self._lock:
            self.bad_streak += 1
            self.bad_total += 1
            tripped = (
                not self.quarantined
                and self.bad_streak >= self.max_bad_segments
            )
            if tripped:
                self.quarantined = True
        os.makedirs(self.quarantine_dir, exist_ok=True)
        evidence = os.path.join(
            self.quarantine_dir, f"{self.bad_total:04d}-{name}"
        )
        with open(evidence, "wb") as fh:
            fh.write(data)
        with open(evidence + ".reason", "w") as fh:
            fh.write(reason + "\n")
        obs.counter(
            "service_bad_segments_total",
            "damaged segment uploads rejected at ingest",
        ).labels(tenant=self.tenant).inc()
        if tripped:
            obs.counter(
                "service_quarantines_total",
                "tenants quarantined by the circuit breaker",
            ).labels(tenant=self.tenant).inc()
        return tripped
