"""Shared-memory heap objects.

DCbugs ultimately race on intra-node shared memory (paper Section 1.2:
"DCbugs have fundamentally similar root causes as LCbugs").  In the mini
systems every piece of state that could be shared between threads or
handlers lives in one of these wrappers; each access is

* a scheduling point (so interleavings can differ between seeds),
* an interceptable operation (so the trigger module can gate it), and
* a traceable ``MEM_READ`` / ``MEM_WRITE`` with a location id.

Location ids follow the paper's scheme (object identity + field): keyed
containers use ``(uid, key)`` per entry plus a synthetic ``(uid,
"#struct")`` location for size/emptiness structure, so that e.g.
``regionsToOpen.isEmpty()`` conflicts with ``regionsToOpen.add(region)``
(the HB-4539 pattern) while entries under different keys do not conflict.

Each location remembers the sequence number of its last write; reads
record which write they observed.  That feeds the Rule-Mpull loop
analysis (paper Section 3.2.1): the write that satisfied the final poll
of a synchronization loop happens-before the loop exit.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.runtime.ops import Location, OpKind

_STRUCT = "#struct"
_VALUE = "value"


class _WriteInfo:
    """Last-writer metadata for one location."""

    __slots__ = ("seq", "tid", "node")

    def __init__(self, seq: int, tid: int, node: str) -> None:
        self.seq = seq
        self.tid = tid
        self.node = node


class SharedObject:
    """Base class: owns a uid and the read/write emission protocol."""

    def __init__(self, cluster: "object", name: str, node: Optional["object"] = None):
        self.cluster = cluster
        self.name = name
        self.node = node
        self.uid = cluster.ids.next("heap-object")
        self._writers: Dict[Location, _WriteInfo] = {}
        cluster.register_heap_object(self)

    # -- emission protocol -------------------------------------------------

    def _loc(self, field: str) -> Location:
        return (self.uid, field)

    def _read(self, field: str) -> None:
        loc = self._loc(field)
        evt = self.cluster.pre_op(OpKind.MEM_READ, self.name, location=loc)
        if evt is None:
            return
        writer = self._writers.get(loc)
        evt.observed_write = writer.seq if writer else None
        if writer is not None:
            evt.extra["writer_tid"] = writer.tid
            evt.extra["writer_node"] = writer.node
        self.cluster.post_op(evt)

    def _write(self, field: str) -> None:
        loc = self._loc(field)
        evt = self.cluster.pre_op(OpKind.MEM_WRITE, self.name, location=loc)
        if evt is None:
            return
        self._writers[loc] = _WriteInfo(evt.seq, evt.tid, evt.node)
        self.cluster.post_op(evt)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}#{self.uid}>"


class SharedVar(SharedObject):
    """A single shared scalar slot."""

    def __init__(self, cluster, name, initial: Any = None, node=None):
        super().__init__(cluster, name, node)
        self._value = initial

    def get(self) -> Any:
        self._read(_VALUE)
        return self._value

    def set(self, value: Any) -> None:
        self._write(_VALUE)
        self._value = value

    def compare_and_set(self, expect: Any, value: Any) -> bool:
        """Atomic compare-and-swap (one scheduling point, like a CAS)."""
        self._write(_VALUE)
        if self._value == expect:
            self._value = value
            return True
        return False

    def peek(self) -> Any:
        """Untraced read, for assertions in tests — never use in systems."""
        return self._value


class SharedCounter(SharedObject):
    """A shared integer with read-modify-write increments."""

    def __init__(self, cluster, name, initial: int = 0, node=None):
        super().__init__(cluster, name, node)
        self._value = int(initial)

    def get(self) -> int:
        self._read(_VALUE)
        return self._value

    def increment(self, by: int = 1) -> int:
        # Deliberately read-then-write with a scheduling point between, so
        # unsynchronized increments can race (a classic LCbug pattern).
        self._read(_VALUE)
        current = self._value
        self._write(_VALUE)
        self._value = current + by
        return self._value

    def peek(self) -> int:
        return self._value


class SharedDict(SharedObject):
    """A shared map; the jMap of the paper's Figure 2 is one of these."""

    def __init__(self, cluster, name, node=None):
        super().__init__(cluster, name, node)
        self._data: Dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        self._read(str(key))
        return self._data.get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._write(str(key))
        self._write(_STRUCT)
        self._data[key] = value

    def remove(self, key: Any) -> Any:
        self._write(str(key))
        self._write(_STRUCT)
        return self._data.pop(key, None)

    def clear(self) -> None:
        for key in list(self._data):
            self._write(str(key))
        self._write(_STRUCT)
        self._data.clear()

    def contains(self, key: Any) -> bool:
        self._read(str(key))
        return key in self._data

    def size(self) -> int:
        self._read(_STRUCT)
        return len(self._data)

    def is_empty(self) -> bool:
        self._read(_STRUCT)
        return not self._data

    def keys(self) -> List[Any]:
        self._read(_STRUCT)
        return list(self._data.keys())

    def items(self) -> List[Tuple[Any, Any]]:
        self._read(_STRUCT)
        return list(self._data.items())

    def peek(self, key: Any, default: Any = None) -> Any:
        return self._data.get(key, default)

    def peek_len(self) -> int:
        return len(self._data)


class SharedList(SharedObject):
    """A shared list; the regionsToOpen of the paper's Figure 3."""

    def __init__(self, cluster, name, node=None):
        super().__init__(cluster, name, node)
        self._data: List[Any] = []

    def append(self, value: Any) -> None:
        self._write(_STRUCT)
        self._data.append(value)

    def remove(self, value: Any) -> bool:
        self._write(_STRUCT)
        if value in self._data:
            self._data.remove(value)
            return True
        return False

    def pop_first(self) -> Any:
        self._write(_STRUCT)
        return self._data.pop(0) if self._data else None

    def contains(self, value: Any) -> bool:
        self._read(_STRUCT)
        return value in self._data

    def is_empty(self) -> bool:
        self._read(_STRUCT)
        return not self._data

    def size(self) -> int:
        self._read(_STRUCT)
        return len(self._data)

    def snapshot(self) -> List[Any]:
        self._read(_STRUCT)
        return list(self._data)

    def peek(self) -> List[Any]:
        return list(self._data)


class SharedSet(SharedObject):
    """A shared set with per-element and structural locations."""

    def __init__(self, cluster, name, node=None):
        super().__init__(cluster, name, node)
        self._data: set = set()

    def add(self, value: Any) -> None:
        self._write(str(value))
        self._write(_STRUCT)
        self._data.add(value)

    def discard(self, value: Any) -> bool:
        self._write(str(value))
        self._write(_STRUCT)
        if value in self._data:
            self._data.discard(value)
            return True
        return False

    def contains(self, value: Any) -> bool:
        self._read(str(value))
        return value in self._data

    def is_empty(self) -> bool:
        self._read(_STRUCT)
        return not self._data

    def size(self) -> int:
        self._read(_STRUCT)
        return len(self._data)

    def snapshot(self) -> List[Any]:
        self._read(_STRUCT)
        return sorted(self._data, key=repr)

    def peek(self) -> set:
        return set(self._data)
