"""Schedule recording and exact replay.

Determinism by seed already makes every run reproducible *given the same
strategy*; recording goes further: it captures the exact sequence of
scheduling decisions so a run can be replayed under a different harness
(e.g. re-running a failure the trigger module produced, without the
gates installed, to watch it in isolation).

Usage::

    recorder = RecordingStrategy(RandomStrategy(seed))
    cluster = Cluster(strategy=recorder, ...)
    cluster.run()
    schedule = recorder.schedule          # list of thread names

    replayed = Cluster(strategy=ReplayStrategy(schedule), ...)
    replayed.run()                        # identical interleaving
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReproError
from repro.runtime.scheduler import RandomStrategy, SchedulingStrategy, SimThread


class RecordingStrategy(SchedulingStrategy):
    """Wraps another strategy and records every pick (by thread name)."""

    def __init__(self, inner: Optional[SchedulingStrategy] = None) -> None:
        self.inner = inner or RandomStrategy(0)
        self.schedule: List[str] = []

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        choice = self.inner.pick(runnable, step)
        self.schedule.append(choice.name)
        return choice


class ReplayStrategy(SchedulingStrategy):
    """Replays a recorded schedule, by thread name.

    Replay only works against the same workload build (same thread
    names, same program).  If the recorded thread is not runnable at
    some step — the workload diverged — a ``ReproError`` pinpoints the
    divergence instead of silently drifting.
    """

    def __init__(
        self,
        schedule: List[str],
        fallback: Optional[SchedulingStrategy] = None,
    ) -> None:
        self.schedule = list(schedule)
        self.fallback = fallback
        self._cursor = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.schedule)

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        if self.exhausted:
            if self.fallback is not None:
                return self.fallback.pick(runnable, step)
            raise ReproError(
                f"replay schedule exhausted at step {step}; the run is "
                "longer than the recording (pass a fallback strategy)"
            )
        wanted = self.schedule[self._cursor]
        self._cursor += 1
        for thread in runnable:
            if thread.name == wanted:
                return thread
        names = [t.name for t in runnable]
        raise ReproError(
            f"replay diverged at step {step}: recorded {wanted!r} is not "
            f"runnable (runnable: {names})"
        )
