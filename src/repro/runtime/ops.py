"""Operation model: every traced action in a simulated run is an ``OpEvent``.

This is the shared vocabulary between the runtime substrate (which emits
operations), the tracer (which records them — paper Table 2), the HB
analysis (which turns them into graph vertices) and the trigger module
(which gates them).

Operations carry:

* a ``kind`` — one of the paper's HB-related operation types, a memory
  access, or a lock operation;
* an ``obj_id`` — the grouping id (thread tid, event id, RPC tag, message
  tag, (znode path, version), memory location, lock id) that lets the
  analyzer pair related records (paper Section 3.1.2);
* a global sequence number ``seq`` — the position in the executed total
  order (the scheduler serializes everything, so this is well defined and
  every HB edge points forward in ``seq``);
* the emitting node / thread / segment, and the application call stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.ids import CallStack, Site


class OpKind(Enum):
    # Thread rules (T-fork / T-join)
    THREAD_CREATE = "thread_create"
    THREAD_BEGIN = "thread_begin"
    THREAD_END = "thread_end"
    THREAD_JOIN = "thread_join"
    # Event rules (E-enq / E-serial)
    EVENT_CREATE = "event_create"
    EVENT_BEGIN = "event_begin"
    EVENT_END = "event_end"
    # RPC rule (M-rpc)
    RPC_CREATE = "rpc_create"
    RPC_BEGIN = "rpc_begin"
    RPC_END = "rpc_end"
    RPC_JOIN = "rpc_join"
    # Socket rule (M-soc)
    SOCK_SEND = "sock_send"
    SOCK_RECV = "sock_recv"
    # Coordination-service rule (M-push)
    ZK_UPDATE = "zk_update"
    ZK_PUSHED = "zk_pushed"
    # Memory accesses
    MEM_READ = "mem_read"
    MEM_WRITE = "mem_write"
    # Lock operations (not HB edges; used by the trigger module)
    LOCK_ACQUIRE = "lock_acquire"
    LOCK_RELEASE = "lock_release"


#: Kinds that contribute happens-before edges (everything but memory/locks).
HB_KINDS = frozenset(
    k
    for k in OpKind
    if k
    not in (OpKind.MEM_READ, OpKind.MEM_WRITE, OpKind.LOCK_ACQUIRE, OpKind.LOCK_RELEASE)
)

MEM_KINDS = frozenset((OpKind.MEM_READ, OpKind.MEM_WRITE))
LOCK_KINDS = frozenset((OpKind.LOCK_ACQUIRE, OpKind.LOCK_RELEASE))

#: A memory location: (heap object uid, field).  Keyed containers use the
#: key as field; structural reads/writes use the synthetic field "#struct".
Location = Tuple[int, str]


@dataclass
class OpEvent:
    """One dynamic operation, in executed order."""

    seq: int
    kind: OpKind
    obj_id: Any
    node: str
    tid: int
    thread_name: str
    segment: int
    callstack: CallStack
    location: Optional[Location] = None
    observed_write: Optional[int] = None  # seq of the write a read saw
    in_handler: bool = False  # inside an event/RPC/message handler body
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.MEM_WRITE

    @property
    def is_mem(self) -> bool:
        return self.kind in MEM_KINDS

    @property
    def site(self) -> Optional[Site]:
        return self.callstack.site

    def __repr__(self) -> str:
        loc = f" loc={self.location}" if self.location else ""
        return (
            f"<Op {self.seq} {self.kind.value} {self.obj_id!r} "
            f"{self.node}/{self.thread_name}{loc}>"
        )


class Interceptor:
    """Hook interface for observing/gating operations.

    ``before`` runs before the operation takes effect and may block the
    current simulated thread (the trigger module's request API).
    ``after`` runs once the operation has executed with its final record
    (the tracer's append).  ``on_node_crash`` fires when a node is
    marked crashed (fault injection): the tracer uses it to abandon the
    node's durable trace streams mid-write, the way a real crash would.
    """

    def before(self, event: OpEvent) -> None:  # pragma: no cover - default
        pass

    def after(self, event: OpEvent) -> None:  # pragma: no cover - default
        pass

    def on_node_crash(self, node: "object") -> None:  # pragma: no cover
        pass
