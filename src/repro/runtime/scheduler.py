"""Deterministic cooperative scheduler for simulated distributed systems.

The paper instruments real JVM systems whose nondeterminism comes from OS
scheduling and the network.  Our substitute is a CHESS-style cooperative
scheduler: simulated threads are real Python threads, but exactly one runs
at a time and control transfers only at *yield points* — every runtime API
call and every shared-memory access.  A seeded strategy picks the next
runnable thread at each step, so:

* a run is fully deterministic given its seed,
* different seeds explore different interleavings (DCbugs manifest only
  under some schedules, as in the real systems), and
* the trigger module can steer the schedule by blocking threads on
  controller-owned predicates.

Time is logical: the clock is the step counter, and ``sleep`` blocks until
the clock passes a deadline.  When every thread is sleeping, the clock
jumps forward discrete-event style.
"""

from __future__ import annotations

import random
import threading
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.errors import (
    DeadlockError,
    HangError,
    SchedulerError,
    SimFailure,
    ThreadKilled,
)

# How long (real seconds) the scheduler waits for a simulated thread to
# reach its next yield point before declaring the simulation wedged.  This
# only fires on bugs in the substrate itself, never on modeled deadlocks.
_WATCHDOG_SECONDS = 60.0


class ThreadState(Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    DONE = "done"
    FAILED = "failed"


_current = threading.local()


def current_sim_thread() -> "SimThread":
    """The simulated thread executing the caller, or raise."""
    t = getattr(_current, "thread", None)
    if t is None:
        raise SchedulerError("not running inside a simulated thread")
    return t


def maybe_current_sim_thread() -> Optional["SimThread"]:
    return getattr(_current, "thread", None)


class SimThread:
    """A simulated thread: a real Python thread gated by the scheduler."""

    def __init__(
        self,
        scheduler: "Scheduler",
        target: Callable[[], None],
        name: str,
        node: Optional[object] = None,
        daemon: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.target = target
        self.name = name
        self.node = node
        self.daemon = daemon
        self.tid = scheduler._allocate_tid()
        self.state = ThreadState.NEW
        self.wait_pred: Optional[Callable[[], bool]] = None
        self.wait_reason: str = ""
        self.wake_at: Optional[int] = None
        self.exc: Optional[BaseException] = None
        # Stack of handler contexts; each entry is a fresh segment id.
        # Used for Rule-Pnreg: program order holds only within a segment.
        self.segment_stack: List[int] = [scheduler._allocate_segment()]
        self._go = threading.Event()
        self._stop = False
        self._os_thread = threading.Thread(
            target=self._bootstrap, name=f"sim-{name}", daemon=True
        )

    # -- identity ---------------------------------------------------------

    @property
    def segment(self) -> int:
        return self.segment_stack[-1]

    @property
    def in_handler(self) -> bool:
        """True while executing an event/RPC/message handler body."""
        return len(self.segment_stack) > 1

    def push_segment(self) -> int:
        seg = self.scheduler._allocate_segment()
        self.segment_stack.append(seg)
        return seg

    def pop_segment(self) -> None:
        if len(self.segment_stack) <= 1:
            raise SchedulerError(f"segment underflow on {self.name}")
        self.segment_stack.pop()

    def __repr__(self) -> str:
        return f"<SimThread {self.tid}:{self.name} {self.state.value}>"

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self.state = ThreadState.RUNNABLE
        self._os_thread.start()

    def _bootstrap(self) -> None:
        _current.thread = self
        self._await_grant()
        try:
            self.target()
            self.state = ThreadState.DONE
        except ThreadKilled:
            self.state = ThreadState.DONE
        except SimFailure as exc:
            self.state = ThreadState.FAILED
            self.exc = exc
            self.scheduler._on_thread_failure(self, exc)
        except BaseException as exc:  # noqa: BLE001 - report, don't lose it
            self.state = ThreadState.FAILED
            self.exc = exc
            self.scheduler._on_thread_failure(self, exc)
        finally:
            self.scheduler._on_thread_exit(self)
            self.scheduler._done.set()

    def _await_grant(self) -> None:
        # During teardown the scheduler wakes each thread exactly once;
        # a thread may yield *again* while unwinding (finally blocks that
        # emit operations) — it must not wait for a grant that will never
        # come.
        if self._stop:
            raise ThreadKilled()
        self._go.wait()
        self._go.clear()
        if self._stop:
            raise ThreadKilled()

    # -- yielding (called from within the simulated thread) ---------------

    def yield_control(self) -> None:
        """Return control to the scheduler; stay runnable."""
        self.state = ThreadState.RUNNABLE
        self.scheduler._done.set()
        self._await_grant()

    def block_until(self, pred: Callable[[], bool], reason: str) -> None:
        """Block until ``pred()`` is true (evaluated by the scheduler)."""
        if pred():
            self.yield_control()
            return
        self.wait_pred = pred
        self.wait_reason = reason
        self.state = ThreadState.BLOCKED
        self.scheduler._done.set()
        self._await_grant()

    def sleep_until(self, deadline: int) -> None:
        self.wake_at = deadline
        self.state = ThreadState.SLEEPING
        self.scheduler._done.set()
        self._await_grant()


class SchedulingStrategy:
    """Chooses which runnable thread runs next."""

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        raise NotImplementedError


class RandomStrategy(SchedulingStrategy):
    """Seeded uniform choice — the default exploration strategy."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        return runnable[self._rng.randrange(len(runnable))]


class RoundRobinStrategy(SchedulingStrategy):
    """Deterministic round-robin; useful for reproducible examples."""

    def __init__(self) -> None:
        self._last_tid = -1

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        for t in runnable:
            if t.tid > self._last_tid:
                self._last_tid = t.tid
                return t
        self._last_tid = runnable[0].tid
        return runnable[0]


class PreferredThreadStrategy(SchedulingStrategy):
    """Run a preferred thread whenever runnable; else fall back.

    Used by tests and by the trigger explorer to bias schedules.
    """

    def __init__(self, preferred: List[str], fallback: SchedulingStrategy):
        self.preferred = list(preferred)
        self.fallback = fallback

    def pick(self, runnable: List[SimThread], step: int) -> SimThread:
        for name in self.preferred:
            for t in runnable:
                if t.name == name:
                    return t
        return self.fallback.pick(runnable, step)


class Scheduler:
    """Owns all simulated threads of one cluster run."""

    def __init__(
        self,
        strategy: Optional[SchedulingStrategy] = None,
        seed: int = 0,
        max_steps: int = 200_000,
    ) -> None:
        self.strategy = strategy or RandomStrategy(seed)
        self.max_steps = max_steps
        self.clock = 0
        self.steps = 0
        self.threads: Dict[int, SimThread] = {}
        self.current: Optional[SimThread] = None
        self._next_tid = 0
        self._next_segment = 0
        self._done = threading.Event()
        self._failure_handlers: List[Callable[[SimThread, BaseException], None]] = []
        self._exit_handlers: List[Callable[[SimThread], None]] = []
        self._idle_handlers: List[Callable[[], None]] = []
        self._wake_hints: List[Callable[[], Optional[int]]] = []
        self._finished = False

    # -- registration ------------------------------------------------------

    def _allocate_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def _allocate_segment(self) -> int:
        seg = self._next_segment
        self._next_segment += 1
        return seg

    def spawn(
        self,
        target: Callable[[], None],
        name: str,
        node: Optional[object] = None,
        daemon: bool = False,
        start: bool = True,
    ) -> SimThread:
        """Create (and by default start) a simulated thread.

        ``start=False`` registers the thread without making it runnable —
        the caller emits its fork record first, so ``Create(t)`` always
        precedes ``Begin(t)`` in execution order.
        """
        t = SimThread(self, target, name, node=node, daemon=daemon)
        self.threads[t.tid] = t
        from repro import obs

        obs.counter(
            "scheduler_threads_spawned_total", "simulated threads created"
        ).inc()
        if start:
            t.start()
        return t

    def on_thread_failure(
        self, handler: Callable[[SimThread, BaseException], None]
    ) -> None:
        self._failure_handlers.append(handler)

    def on_thread_exit(self, handler: Callable[[SimThread], None]) -> None:
        self._exit_handlers.append(handler)

    def on_idle(self, handler: Callable[[], None]) -> None:
        """Called when only blocked threads remain, before deadlock checks.

        The trigger controller uses this to release gates that would
        otherwise stall the whole system.
        """
        self._idle_handlers.append(handler)

    def add_wake_hint(self, hint: Callable[[], Optional[int]]) -> None:
        """Register a source of future wake times (e.g. delayed message
        deliveries), consulted when all threads are blocked or asleep."""
        self._wake_hints.append(hint)

    def _on_thread_failure(self, thread: SimThread, exc: BaseException) -> None:
        for h in self._failure_handlers:
            h(thread, exc)

    def _on_thread_exit(self, thread: SimThread) -> None:
        for h in self._exit_handlers:
            h(thread)

    # -- the main loop ------------------------------------------------------

    def run(self) -> None:
        """Drive the simulation until all non-daemon threads finish.

        Raises ``DeadlockError`` or ``HangError`` for modeled failures;
        the cluster converts those into failure events.
        """
        if self._finished:
            raise SchedulerError("scheduler cannot be reused")
        try:
            self._loop()
        finally:
            self._finished = True
            self._teardown()
            # Aggregate accounting only — nothing per-step, so the hot
            # loop costs the same whether observability is on or off.
            from repro import obs

            obs.counter(
                "scheduler_steps_total", "scheduling decisions executed"
            ).inc(self.steps)
            obs.counter(
                "scheduler_clock_ticks_total", "logical clock advancement"
            ).inc(self.clock)

    def _loop(self) -> None:
        while True:
            self._wake_sleepers()
            self._unblock_ready()
            runnable = self._runnable()
            if not runnable:
                # Let time pass first: sleeping threads and pending
                # delayed deliveries (wake hints) still count as work.
                if self._advance_clock_to_next_wake():
                    continue
                # Truly quiescent: non-daemon work finished and the
                # daemons (queue consumers, servers) drained and blocked.
                if self._all_work_done():
                    return
                for h in self._idle_handlers:
                    h()
                self._unblock_ready()
                runnable = self._runnable()
                if not runnable:
                    blocked = self._blocked_non_daemon()
                    raise DeadlockError(
                        "deadlock: blocked threads "
                        + ", ".join(f"{t.name}[{t.wait_reason}]" for t in blocked),
                        blocked,
                    )
            thread = self.strategy.pick(runnable, self.steps)
            self._step(thread)
            self.steps += 1
            self.clock += 1
            if self.steps > self.max_steps:
                live = [
                    t.name
                    for t in self.threads.values()
                    if not t.daemon
                    and t.state not in (ThreadState.DONE, ThreadState.FAILED)
                ]
                raise HangError(
                    f"hang: step budget exceeded; live threads: {live}", self.steps
                )

    def _step(self, thread: SimThread) -> None:
        self._done.clear()
        self.current = thread
        thread._go.set()
        if not self._done.wait(timeout=_WATCHDOG_SECONDS):
            raise SchedulerError(
                f"watchdog: thread {thread.name} did not reach a yield point"
            )
        self.current = None

    def _runnable(self) -> List[SimThread]:
        return sorted(
            (t for t in self.threads.values() if t.state == ThreadState.RUNNABLE),
            key=lambda t: t.tid,
        )

    def _blocked_non_daemon(self) -> List[SimThread]:
        return [
            t
            for t in self.threads.values()
            if not t.daemon and t.state == ThreadState.BLOCKED
        ]

    def _all_work_done(self) -> bool:
        return all(
            t.state in (ThreadState.DONE, ThreadState.FAILED)
            for t in self.threads.values()
            if not t.daemon
        )

    def _unblock_ready(self) -> None:
        for t in self.threads.values():
            if t.state == ThreadState.BLOCKED and t.wait_pred is not None:
                if t.wait_pred():
                    t.wait_pred = None
                    t.wait_reason = ""
                    t.state = ThreadState.RUNNABLE

    def _wake_sleepers(self) -> None:
        for t in self.threads.values():
            if t.state == ThreadState.SLEEPING and t.wake_at is not None:
                if t.wake_at <= self.clock:
                    t.wake_at = None
                    t.state = ThreadState.RUNNABLE

    def _advance_clock_to_next_wake(self) -> bool:
        """Discrete-event jump: if threads are sleeping, skip to first wake."""
        wakes = [
            t.wake_at
            for t in self.threads.values()
            if t.state == ThreadState.SLEEPING and t.wake_at is not None
        ]
        for hint in self._wake_hints:
            value = hint()
            if value is not None and value > self.clock:
                wakes.append(value)
        if not wakes:
            return False
        self.clock = max(self.clock, min(wakes))
        self._wake_sleepers()
        return True

    def _teardown(self) -> None:
        """Kill any still-live threads (daemons and stragglers)."""
        for t in self.threads.values():
            if t.state in (ThreadState.DONE, ThreadState.FAILED):
                continue
            t._stop = True
            t._go.set()
        for t in self.threads.values():
            if t._os_thread.is_alive():
                t._os_thread.join(timeout=5.0)
