"""Asynchronous event queues (paper Section 2.2, Rules E-enq / E-serial).

Each queue is FIFO with one dispatching side (any thread may post) and one
or more consumer threads running pre-registered handlers, matching what
the paper observed in Hadoop/HBase/Cassandra/ZooKeeper: "all the queues
are FIFO and every queue has ... one or multiple handling threads".

* ``Create(e)`` is recorded at ``post`` time (Rule-Eenq's left side).
* ``Begin(e)`` / ``End(e)`` are recorded in the consumer thread around the
  handler invocation, inside a fresh *segment* so that Rule-Pnreg holds:
  two handlers on the same consumer thread get no program-order edge.
* ``single_consumer`` queues additionally admit Rule-Eserial edges, which
  the trace analyzer adds as a fixpoint.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ReproError
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import current_sim_thread

Handler = Callable[["Event"], None]


class Event:
    """A queued event: a type tag plus an arbitrary payload."""

    def __init__(self, etype: str, payload: Any = None) -> None:
        self.etype = etype
        self.payload = payload
        self.eid: Optional[int] = None  # assigned on post
        self.queue: Optional["EventQueue"] = None

    def __repr__(self) -> str:
        return f"<Event {self.etype} eid={self.eid}>"


class EventQueue:
    """A FIFO event queue with ``consumers`` handler threads."""

    def __init__(
        self,
        node: "object",
        name: str,
        consumers: int = 1,
    ) -> None:
        if consumers < 1:
            raise ReproError("an event queue needs at least one consumer")
        self.node = node
        self.cluster = node.cluster
        self.name = name
        self.qid = self.cluster.ids.next("event-queue")
        self.consumers = consumers
        self._handlers: Dict[str, Handler] = {}
        self._default_handler: Optional[Handler] = None
        self._queue: Deque[Event] = deque()
        self._consumer_threads: List[object] = []
        for i in range(consumers):
            suffix = f"-{i}" if consumers > 1 else ""
            t = node.spawn(
                self._consume_loop,
                name=f"{node.name}.eq.{name}{suffix}",
                daemon=True,
            )
            self._consumer_threads.append(t)

    @property
    def single_consumer(self) -> bool:
        return self.consumers == 1

    def register(self, etype: str, handler: Handler) -> None:
        self._handlers[etype] = handler

    def set_default_handler(self, handler: Handler) -> None:
        self._default_handler = handler

    def post(self, event_or_type, payload: Any = None) -> Event:
        """Enqueue an event; records ``Create(e)`` (Rule-Eenq left side)."""
        event = (
            event_or_type
            if isinstance(event_or_type, Event)
            else Event(event_or_type, payload)
        )
        event.eid = self.cluster.ids.next("event")
        event.queue = self
        self.cluster.op(
            OpKind.EVENT_CREATE,
            event.eid,
            extra={
                "queue": self.qid,
                "queue_name": self.name,
                "etype": event.etype,
                "single_consumer": self.single_consumer,
            },
        )
        self._queue.append(event)
        return event

    def _consume_loop(self) -> None:
        me = current_sim_thread()
        while True:
            me.block_until(lambda: bool(self._queue), f"eq:{self.name}")
            if not self._queue:
                continue
            event = self._queue.popleft()
            self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        handler = self._handlers.get(event.etype, self._default_handler)
        thread = current_sim_thread()
        thread.push_segment()
        meta = {
            "queue": self.qid,
            "queue_name": self.name,
            "etype": event.etype,
            "single_consumer": self.single_consumer,
            "handler": getattr(handler, "__qualname__", str(handler)),
        }
        self.cluster.op(OpKind.EVENT_BEGIN, event.eid, extra=dict(meta))
        try:
            if handler is None:
                self.node.log.warn(
                    f"queue {self.name}: no handler for event {event.etype}"
                )
            else:
                handler(event)
        finally:
            self.cluster.op(OpKind.EVENT_END, event.eid, extra=dict(meta))
            thread.pop_segment()

    def pending(self) -> int:
        return len(self._queue)
