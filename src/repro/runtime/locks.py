"""Reentrant locks for simulated threads.

Locks are *not* part of the DCatch HB model (they provide mutual
exclusion, not ordering — paper Section 2.3), but lock/unlock operations
are traced anyway because the trigger module needs critical-section
extents to place its request/confirm APIs without deadlocking the system
(paper Sections 3.1.1 "Other tracing" and 5.2).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.errors import SchedulerError  # noqa: F401  (raised on misuse below)
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import SimThread, current_sim_thread


class SimLock:
    """A reentrant lock, acquired only at scheduling points."""

    def __init__(self, cluster: "object", name: str) -> None:
        self.cluster = cluster
        self.name = name
        self.uid = cluster.ids.next("lock")
        self._owner: Optional[SimThread] = None
        self._depth = 0

    def acquire(self) -> None:
        me = current_sim_thread()
        if self._owner is me:
            self._depth += 1
            return
        # Recheck loop: between our wake-up and being scheduled, another
        # waiter may have taken the lock.
        while True:
            me.block_until(lambda: self._owner is None, f"lock:{self.name}")
            if self._owner is None:
                break
        self._owner = me
        self._depth = 1
        self.cluster.op(OpKind.LOCK_ACQUIRE, self.uid, extra={"lock": self.name})

    def release(self) -> None:
        me = current_sim_thread()
        if self._owner is not me:
            raise SchedulerError(f"lock {self.name} released by non-owner {me.name}")
        if self._depth > 1:
            self._depth -= 1
            return
        self.cluster.op(OpKind.LOCK_RELEASE, self.uid, extra={"lock": self.name})
        self._depth = 0
        self._owner = None

    def held_by_me(self) -> bool:
        return self._owner is current_sim_thread()

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextmanager
def synchronized(lock: SimLock):
    """Java-style ``synchronized (lock) { ... }`` block."""
    lock.acquire()
    try:
        yield lock
    finally:
        lock.release()


class SimCondition:
    """A condition variable bound to a ``SimLock``.

    Note the modeling choice from the paper (Section 2.3): DCatch's HB
    model deliberately ignores notify/wait causality because it is
    "almost never used in the inter-node communication and computation
    part" of the studied systems.  We provide the primitive for intra-
    node code, and — exactly like the paper — the tracer records nothing
    for it, so waits/notifies contribute no HB edges.
    """

    def __init__(self, lock: SimLock) -> None:
        self.lock = lock
        self._generation = 0

    def wait(self) -> None:
        """Release the lock, wait for a notify, reacquire."""
        me = current_sim_thread()
        if self.lock._owner is not me:
            raise SchedulerError("condition wait without holding the lock")
        my_generation = self._generation
        depth = self.lock._depth
        self.lock._depth = 1
        self.lock.release()
        me.block_until(
            lambda: self._generation > my_generation,
            f"cond:{self.lock.name}",
        )
        self.lock.acquire()
        self.lock._depth = depth

    def wait_for(self, predicate) -> None:
        while not predicate():
            self.wait()

    def notify_all(self) -> None:
        me = current_sim_thread()
        if self.lock._owner is not me:
            raise SchedulerError("condition notify without holding the lock")
        self._generation += 1


class SimSemaphore:
    """A counting semaphore built on scheduler-level blocking."""

    def __init__(self, cluster: "object", name: str, permits: int = 1) -> None:
        if permits < 0:
            raise ValueError("permits must be non-negative")
        self.cluster = cluster
        self.name = name
        self._permits = permits

    def acquire(self) -> None:
        me = current_sim_thread()
        while True:
            me.block_until(lambda: self._permits > 0, f"sem:{self.name}")
            if self._permits > 0:
                self._permits -= 1
                return

    def release(self) -> None:
        self._permits += 1

    def __enter__(self) -> "SimSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
