"""Network fault injection: message delays, drops, and partitions.

Distributed systems are defined by what the network does to them.  The
default policy delivers every message immediately (in send order); the
``FlakyNetwork`` policy injects seeded, deterministic faults:

* per-message delivery *delay* (messages to one node can reorder —
  exactly the nondeterminism DCbugs feed on),
* probabilistic *drops* (exercises the systems' retry loops),
* named *partitions* (everything between two groups is dropped).

Faults never weaken the HB model: Rule-Msoc only orders a ``Send`` with
the ``Recv`` that actually happened; dropped sends simply contribute no
edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple


@dataclass
class Delivery:
    """What the policy decided for one message."""

    deliver: bool
    delay: int = 0  # logical clock ticks
    copies: int = 1  # > 1: the network duplicated the message


class NetworkPolicy:
    """Decides the fate of every socket message."""

    def plan(self, src: str, dst: str, verb: str) -> Delivery:
        raise NotImplementedError


class ReliableNetwork(NetworkPolicy):
    """The default: instant, ordered, lossless."""

    def plan(self, src: str, dst: str, verb: str) -> Delivery:
        return Delivery(deliver=True, delay=0)


class FlakyNetwork(NetworkPolicy):
    """Seeded faults: delay ranges, drop probability, partitions."""

    def __init__(
        self,
        seed: int = 0,
        max_delay: int = 0,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        protected_verbs: Iterable[str] = ("zk-notify",),
    ) -> None:
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be within [0, 1]")
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError("duplicate_probability must be within [0, 1]")
        self._rng = random.Random(seed)
        self.max_delay = max_delay
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        #: Verbs that are never dropped (coordination-service traffic —
        #: real ZooKeeper sessions resend internally).
        self.protected_verbs = set(protected_verbs)
        self._partitions: Set[Tuple[str, str]] = set()

    # -- partitions -----------------------------------------------------------

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Cut all links between two node groups (both directions)."""
        for a in group_a:
            for b in group_b:
                self._partitions.add((a, b))
                self._partitions.add((b, a))

    def partition_one_way(
        self, src_group: Iterable[str], dst_group: Iterable[str]
    ) -> None:
        """Cut links *from* ``src_group`` *to* ``dst_group`` only — the
        asymmetric half-open partition real networks produce (a node that
        can receive but whose replies are black-holed)."""
        for a in src_group:
            for b in dst_group:
                self._partitions.add((a, b))

    def heal(
        self,
        group_a: Optional[Iterable[str]] = None,
        group_b: Optional[Iterable[str]] = None,
    ) -> None:
        """Restore connectivity.

        With no arguments every cut link heals.  With two groups only the
        links between them heal (both directions), leaving other
        partitions in place."""
        if group_a is None and group_b is None:
            self._partitions.clear()
            return
        if group_a is None or group_b is None:
            raise ValueError("selective heal needs both groups (or neither)")
        for a in group_a:
            for b in group_b:
                self._partitions.discard((a, b))
                self._partitions.discard((b, a))

    def is_partitioned(self, src: str, dst: str) -> bool:
        return (src, dst) in self._partitions

    # -- policy ------------------------------------------------------------------

    def plan(self, src: str, dst: str, verb: str) -> Delivery:
        if self.is_partitioned(src, dst):
            return Delivery(deliver=False)
        if (
            verb not in self.protected_verbs
            and self.drop_probability > 0.0
            and self._rng.random() < self.drop_probability
        ):
            return Delivery(deliver=False)
        delay = self._rng.randint(0, self.max_delay) if self.max_delay else 0
        copies = 1
        if (
            verb not in self.protected_verbs
            and self.duplicate_probability > 0.0
            and self._rng.random() < self.duplicate_probability
        ):
            copies = 2
        return Delivery(deliver=True, delay=delay, copies=copies)
