"""Convenience API used from inside simulated threads."""

from __future__ import annotations

from repro.runtime.scheduler import current_sim_thread


def sleep(ticks: int) -> None:
    """Sleep for ``ticks`` logical clock units (discrete-event semantics)."""
    thread = current_sim_thread()
    thread.sleep_until(thread.scheduler.clock + max(1, int(ticks)))


def yield_now() -> None:
    """Explicit scheduling point (rarely needed; runtime ops all yield)."""
    current_sim_thread().yield_control()


def me() -> str:
    """Name of the current simulated thread."""
    return current_sim_thread().name
