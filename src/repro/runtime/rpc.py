"""Synchronous RPC (paper Section 2.1, Rule-Mrpc).

A thread on node ``n1`` calls an RPC method implemented by node ``n2`` and
blocks until the result comes back.  The four HB-relevant operations are
recorded with a shared per-call tag (the analogue of the paper's run-time
random tagging, Section 6):

* ``RPC_CREATE`` on the caller thread (``Create(r, n1)``),
* ``RPC_BEGIN`` / ``RPC_END`` on the server handler thread (``Begin``/
  ``End (r, n2)``) inside a fresh segment (Rule-Pnreg),
* ``RPC_JOIN`` on the caller thread after unblocking (``Join(r, n1)``).

Incoming calls sit in a FIFO request queue served by one or more handler
threads; the queue itself is abstracted away from the HB model exactly as
the paper's Rule-Mrpc abstracts away the RPC library internals.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro import obs
from repro.errors import ReproError, RpcError, RpcTimeout, SimFailure
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import current_sim_thread

#: Latency buckets in scheduler steps (logical time, not seconds).
_LATENCY_STEP_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)


class RpcRequest:
    """One in-flight RPC call."""

    def __init__(
        self, tag: str, method: str, args: tuple, kwargs: dict, caller: str
    ) -> None:
        self.tag = tag
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.caller = caller
        self.result: Any = None
        self.error: Optional[SimFailure] = None
        self.done = False
        #: The caller timed out and gave up; the server skips it unstarted.
        self.abandoned = False


class RpcServer:
    """Per-node RPC endpoint: registered methods + handler threads."""

    def __init__(self, node: "object", handler_threads: int = 1) -> None:
        self.node = node
        self.cluster = node.cluster
        self._methods: Dict[str, Callable] = {}
        self._queue: Deque[RpcRequest] = deque()
        self.handler_threads: List[object] = []
        for i in range(handler_threads):
            suffix = f"-{i}" if handler_threads > 1 else ""
            t = node.spawn(
                self._serve_loop, name=f"{node.name}.rpc{suffix}", daemon=True
            )
            self.handler_threads.append(t)

    def register(self, method: str, fn: Callable) -> None:
        if method in self._methods:
            raise ReproError(f"RPC method {method} already registered")
        self._methods[method] = fn

    def export(self, obj: object, prefix: str = "") -> None:
        """Register every public method of ``obj`` as an RPC method.

        The analogue of implementing a ``VersionedProtocol`` interface:
        the object *is* the protocol.
        """
        for name in dir(obj):
            if name.startswith("_"):
                continue
            fn = getattr(obj, name)
            if callable(fn):
                self.register(prefix + name, fn)

    def submit(self, request: RpcRequest) -> None:
        self._queue.append(request)

    def fail_pending(self, reason: str) -> int:
        """Fail every queued (unstarted) request — a crashed node answers
        nobody.  Blocked callers unblock with an ``RpcError`` instead of
        waiting forever on a reply that cannot come."""
        failed = 0
        while self._queue:
            request = self._queue.popleft()
            request.error = RpcError(
                f"RPC {request.method} to {self.node.name} failed: {reason}"
            )
            request.done = True
            failed += 1
        return failed

    def _ready(self) -> bool:
        return bool(self._queue) and not self.node.crashed

    def _serve_loop(self) -> None:
        me = current_sim_thread()
        while True:
            me.block_until(self._ready, f"rpc-server:{self.node.name}")
            if not self._ready():
                continue
            request = self._queue.popleft()
            if request.abandoned:
                continue  # the caller timed out before we started
            self._handle(request)

    def _handle(self, request: RpcRequest) -> None:
        fn = self._methods.get(request.method)
        thread = current_sim_thread()
        thread.push_segment()
        meta = {
            "method": request.method,
            "caller": request.caller,
            "handler": getattr(fn, "__qualname__", str(fn)),
            "handler_thread": thread.name,
            "handler_threads": len(self.handler_threads),
        }
        self.cluster.op(OpKind.RPC_BEGIN, request.tag, extra=dict(meta))
        try:
            if fn is None:
                request.error = RpcError(
                    f"{self.node.name}: no such RPC method {request.method}"
                )
            else:
                try:
                    request.result = fn(*request.args, **request.kwargs)
                except SimFailure as exc:
                    request.error = exc
        finally:
            self.cluster.op(OpKind.RPC_END, request.tag, extra=dict(meta))
            thread.pop_segment()
            request.done = True


def call_rpc(
    caller_node: "object",
    target_name: str,
    method: str,
    *args: Any,
    timeout: Optional[int] = None,
    attempt: int = 0,
    **kwargs: Any,
) -> Any:
    """Blocking RPC from the current thread to ``target_name.method``.

    ``timeout`` is a per-call deadline in scheduler steps; on expiry the
    call raises ``RpcTimeout``, abandons the queued request, and emits
    **no** ``RPC_JOIN`` record — a reply that was never observed creates
    no Rule-Mrpc edge.  ``attempt`` annotates retried calls (> 0) so the
    trace shows each attempt as its own Create/Begin/End/Join chain.
    """
    cluster = caller_node.cluster
    target = cluster.node(target_name)
    obs.counter("rpc_calls_total", "RPC calls issued").labels(
        method=method
    ).inc()
    start_clock = cluster.scheduler.clock
    if target.crashed:
        obs.counter("rpc_failures_total", "failed RPC attempts").labels(
            method=method, reason="crashed_target"
        ).inc()
        raise RpcError(f"RPC {method} to crashed node {target_name}")
    tag = cluster.ids.tag("rpc")
    meta = {"method": method, "target": target_name, "caller": caller_node.name}
    if attempt:
        meta["attempt"] = attempt
    cluster.op(OpKind.RPC_CREATE, tag, extra=dict(meta))
    if target.crashed:
        # The target crashed during the scheduling point above; the
        # orphaned Create record pairs with nothing and adds no edge.
        obs.counter("rpc_failures_total", "failed RPC attempts").labels(
            method=method, reason="crashed_target"
        ).inc()
        raise RpcError(f"RPC {method} to crashed node {target_name}")
    request = RpcRequest(tag, method, args, kwargs, caller_node.name)
    target.rpc_server.submit(request)
    me = current_sim_thread()
    if timeout is None:
        me.block_until(lambda: request.done, f"rpc:{method}@{target_name}")
    else:
        deadline = cluster.scheduler.clock + max(1, int(timeout))
        key = cluster.timeouts.register(deadline)
        try:
            me.block_until(
                lambda: request.done or cluster.scheduler.clock >= deadline,
                f"rpc:{method}@{target_name}",
            )
        finally:
            cluster.timeouts.unregister(key)
        if not request.done:
            request.abandoned = True
            obs.counter("rpc_timeouts_total", "RPC calls that timed out").labels(
                method=method
            ).inc()
            raise RpcTimeout(
                f"RPC {method} to {target_name} timed out "
                f"after {timeout} steps"
            )
    cluster.op(OpKind.RPC_JOIN, tag, extra=dict(meta))
    obs.histogram(
        "rpc_latency_steps",
        "RPC round-trip latency in scheduler steps",
        buckets=_LATENCY_STEP_BUCKETS,
    ).observe(cluster.scheduler.clock - start_clock)
    if request.error is not None:
        obs.counter("rpc_failures_total", "failed RPC attempts").labels(
            method=method, reason="handler_error"
        ).inc()
        raise request.error
    return request.result


def backoff_delay(
    attempt: int,
    base: int = 2,
    factor: int = 2,
    cap: int = 64,
    key: str = "",
) -> int:
    """Full-jitter exponential backoff: a delay drawn uniformly from
    ``[1, ceiling]`` where ``ceiling = min(cap, base * factor**attempt)``.

    Pure exponential backoff synchronizes retries: every client that
    failed together retries together, hammering the recovering server
    in waves.  Full jitter ("Exponential Backoff And Jitter", AWS
    Architecture Blog) spreads each wave across the whole window.  The
    draw is **deterministic** — a CRC32 hash of ``(key, attempt)``, no
    global RNG — so simulated schedules stay byte-reproducible while
    distinct callers (distinct keys) still disperse.  The detection
    service's client reuses this for wall-clock reconnect backoff.
    """
    ceiling = max(1, min(int(cap), max(1, int(base)) * int(factor) ** attempt))
    fraction = (
        zlib.crc32(f"{key}|{attempt}".encode("utf-8")) & 0xFFFFFFFF
    ) / 2**32
    return 1 + int(fraction * ceiling)


def call_with_retry(
    caller_node: "object",
    target_name: str,
    method: str,
    *args: Any,
    attempts: int = 3,
    timeout: Optional[int] = None,
    backoff_base: int = 2,
    backoff_factor: int = 2,
    max_backoff: int = 64,
    retry_on: tuple = (RpcError,),
    **kwargs: Any,
) -> Any:
    """``call_rpc`` with bounded retries and full-jitter backoff.

    Retries fire on transport failures (``RpcError`` — crashed target,
    timeout), never on application ``SimFailure``s raised by the handler
    (those propagate like a normal remote exception).  Each retry
    sleeps a :func:`backoff_delay` — uniform over an exponentially
    growing window (capped at ``max_backoff``), keyed by
    ``caller->target.method`` so concurrent callers that failed
    together *disperse* instead of retrying in lockstep, yet every
    schedule stays deterministic (the jitter is a hash, not an RNG).
    Each attempt allocates its own RPC tag: a failed attempt
    contributes no HB edge and no edge ties one attempt to another.
    """
    from repro.runtime.api import sleep

    if attempts < 1:
        raise ReproError("call_with_retry needs at least one attempt")
    jitter_key = f"{caller_node.name}->{target_name}.{method}"
    last_error: Optional[SimFailure] = None
    for attempt in range(attempts):
        try:
            return call_rpc(
                caller_node,
                target_name,
                method,
                *args,
                timeout=timeout,
                attempt=attempt,
                **kwargs,
            )
        except retry_on as exc:
            last_error = exc
            if attempt == attempts - 1:
                break
            obs.counter("rpc_retries_total", "RPC attempts retried").labels(
                method=method
            ).inc()
            sleep(
                backoff_delay(
                    attempt,
                    base=backoff_base,
                    factor=backoff_factor,
                    cap=max_backoff,
                    key=jitter_key,
                )
            )
    raise last_error


class RpcProxy:
    """Attribute-style sugar: ``node.rpc("AM").get_task(jid)``.

    ``node.rpc("AM", timeout=20, retries=2)`` returns a robust proxy:
    each call gets a per-call timeout (scheduler steps) and up to
    ``retries`` retransmissions with deterministic exponential backoff.
    The default proxy (no options) is the classic die-on-failure call.
    """

    def __init__(
        self,
        caller_node: "object",
        target_name: str,
        timeout: Optional[int] = None,
        retries: int = 0,
        backoff_base: int = 2,
        backoff_factor: int = 2,
        max_backoff: int = 64,
    ) -> None:
        self._caller = caller_node
        self._target = target_name
        self._timeout = timeout
        self._retries = retries
        self._backoff = (backoff_base, backoff_factor, max_backoff)

    def __getattr__(self, method: str) -> Callable:
        def invoke(*args: Any, **kwargs: Any) -> Any:
            if self._retries or self._timeout is not None:
                base, factor, cap = self._backoff
                return call_with_retry(
                    self._caller,
                    self._target,
                    method,
                    *args,
                    attempts=self._retries + 1,
                    timeout=self._timeout,
                    backoff_base=base,
                    backoff_factor=factor,
                    max_backoff=cap,
                    **kwargs,
                )
            return call_rpc(self._caller, self._target, method, *args, **kwargs)

        invoke.__name__ = method
        return invoke
