"""Synchronous RPC (paper Section 2.1, Rule-Mrpc).

A thread on node ``n1`` calls an RPC method implemented by node ``n2`` and
blocks until the result comes back.  The four HB-relevant operations are
recorded with a shared per-call tag (the analogue of the paper's run-time
random tagging, Section 6):

* ``RPC_CREATE`` on the caller thread (``Create(r, n1)``),
* ``RPC_BEGIN`` / ``RPC_END`` on the server handler thread (``Begin``/
  ``End (r, n2)``) inside a fresh segment (Rule-Pnreg),
* ``RPC_JOIN`` on the caller thread after unblocking (``Join(r, n1)``).

Incoming calls sit in a FIFO request queue served by one or more handler
threads; the queue itself is abstracted away from the HB model exactly as
the paper's Rule-Mrpc abstracts away the RPC library internals.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ReproError, RpcError, SimFailure
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import current_sim_thread


class RpcRequest:
    """One in-flight RPC call."""

    def __init__(
        self, tag: str, method: str, args: tuple, kwargs: dict, caller: str
    ) -> None:
        self.tag = tag
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.caller = caller
        self.result: Any = None
        self.error: Optional[SimFailure] = None
        self.done = False


class RpcServer:
    """Per-node RPC endpoint: registered methods + handler threads."""

    def __init__(self, node: "object", handler_threads: int = 1) -> None:
        self.node = node
        self.cluster = node.cluster
        self._methods: Dict[str, Callable] = {}
        self._queue: Deque[RpcRequest] = deque()
        self.handler_threads: List[object] = []
        for i in range(handler_threads):
            suffix = f"-{i}" if handler_threads > 1 else ""
            t = node.spawn(
                self._serve_loop, name=f"{node.name}.rpc{suffix}", daemon=True
            )
            self.handler_threads.append(t)

    def register(self, method: str, fn: Callable) -> None:
        if method in self._methods:
            raise ReproError(f"RPC method {method} already registered")
        self._methods[method] = fn

    def export(self, obj: object, prefix: str = "") -> None:
        """Register every public method of ``obj`` as an RPC method.

        The analogue of implementing a ``VersionedProtocol`` interface:
        the object *is* the protocol.
        """
        for name in dir(obj):
            if name.startswith("_"):
                continue
            fn = getattr(obj, name)
            if callable(fn):
                self.register(prefix + name, fn)

    def submit(self, request: RpcRequest) -> None:
        self._queue.append(request)

    def _serve_loop(self) -> None:
        me = current_sim_thread()
        while True:
            me.block_until(lambda: bool(self._queue), f"rpc-server:{self.node.name}")
            if not self._queue:
                continue
            request = self._queue.popleft()
            self._handle(request)

    def _handle(self, request: RpcRequest) -> None:
        fn = self._methods.get(request.method)
        thread = current_sim_thread()
        thread.push_segment()
        meta = {
            "method": request.method,
            "caller": request.caller,
            "handler": getattr(fn, "__qualname__", str(fn)),
            "handler_thread": thread.name,
            "handler_threads": len(self.handler_threads),
        }
        self.cluster.op(OpKind.RPC_BEGIN, request.tag, extra=dict(meta))
        try:
            if fn is None:
                request.error = RpcError(
                    f"{self.node.name}: no such RPC method {request.method}"
                )
            else:
                try:
                    request.result = fn(*request.args, **request.kwargs)
                except SimFailure as exc:
                    request.error = exc
        finally:
            self.cluster.op(OpKind.RPC_END, request.tag, extra=dict(meta))
            thread.pop_segment()
            request.done = True


def call_rpc(
    caller_node: "object", target_name: str, method: str, *args: Any, **kwargs: Any
) -> Any:
    """Blocking RPC from the current thread to ``target_name.method``."""
    cluster = caller_node.cluster
    target = cluster.node(target_name)
    if target.crashed:
        raise RpcError(f"RPC {method} to crashed node {target_name}")
    tag = cluster.ids.tag("rpc")
    meta = {"method": method, "target": target_name, "caller": caller_node.name}
    cluster.op(OpKind.RPC_CREATE, tag, extra=dict(meta))
    request = RpcRequest(tag, method, args, kwargs, caller_node.name)
    target.rpc_server.submit(request)
    me = current_sim_thread()
    me.block_until(lambda: request.done, f"rpc:{method}@{target_name}")
    cluster.op(OpKind.RPC_JOIN, tag, extra=dict(meta))
    if request.error is not None:
        raise request.error
    return request.result


class RpcProxy:
    """Attribute-style sugar: ``node.rpc("AM").get_task(jid)``."""

    def __init__(self, caller_node: "object", target_name: str) -> None:
        self._caller = caller_node
        self._target = target_name

    def __getattr__(self, method: str) -> Callable:
        def invoke(*args: Any, **kwargs: Any) -> Any:
            return call_rpc(self._caller, self._target, method, *args, **kwargs)

        invoke.__name__ = method
        return invoke
