"""Deterministic crash/restart fault-injection campaigns.

DCatch predicts DCbugs from one *correct* run, but the bugs it hunts
live in the timing windows that crashes, retries and message loss open
up.  This module lets a run (or a whole pipeline) execute under a
scripted sequence of faults:

* a ``FaultPlan`` is an ordered list of ``FaultAction``s — crash a node,
  restart it, cut a (possibly one-way) partition, heal it — pinned to
  logical clock ticks, so a plan is as deterministic as the scheduler
  seed;
* ``FaultPlan.seeded(...)`` generates a random-but-reproducible plan
  (crash/restart pairs + partition/heal pairs) from a seed;
* ``install(cluster)`` spawns a *fault injector* thread that sleeps
  until each action's tick and applies it — faults are just another
  deterministic participant in the schedule;
* a ``FaultCampaign`` drives a workload through the full DCatch pipeline
  once per seed, each run under its own seeded plan, collecting partial
  results instead of raising — one hung or crashed run is that run's
  outcome, not the campaign's;
* ``verify_fault_soundness`` checks the tentpole invariant: faults never
  add spurious HB edges.  A dropped ``Send`` must pair with no ``Recv``
  (Rule-Msoc only orders a send with deliveries that actually happened)
  and a duplicated send with at most as many ``Recv``s as copies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.runtime.network import FlakyNetwork
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import current_sim_thread


class FaultKind(Enum):
    CRASH = "crash"
    RESTART = "restart"
    PARTITION = "partition"
    PARTITION_ONE_WAY = "partition_one_way"
    HEAL = "heal"


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: what happens, to whom, at which clock tick."""

    at: int
    kind: FaultKind
    target: Optional[str] = None  # crash / restart
    group_a: Tuple[str, ...] = ()  # partition / heal
    group_b: Tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind in (FaultKind.CRASH, FaultKind.RESTART):
            return f"@{self.at} {self.kind.value} {self.target}"
        groups = f"{list(self.group_a)}|{list(self.group_b)}"
        return f"@{self.at} {self.kind.value} {groups}"


class FaultPlan:
    """An immutable, deterministic schedule of faults for one run.

    Besides the scheduled actions, a plan can carry probabilistic network
    faults (message duplication, drops, delivery delay); installing such a
    plan swaps in a ``FlakyNetwork`` seeded off the cluster seed, so the
    whole run — actions and coin flips alike — replays exactly."""

    def __init__(
        self,
        actions: Sequence[FaultAction] = (),
        duplicate_probability: float = 0.0,
        drop_probability: float = 0.0,
        max_delay: int = 0,
    ) -> None:
        self.actions: Tuple[FaultAction, ...] = tuple(
            sorted(actions, key=lambda a: a.at)
        )
        self.duplicate_probability = duplicate_probability
        self.drop_probability = drop_probability
        self.max_delay = max_delay
        for action in self.actions:
            if action.kind in (FaultKind.CRASH, FaultKind.RESTART):
                if not action.target:
                    raise ReproError(f"{action.kind.value} needs a target node")
            elif not action.group_a or not action.group_b:
                raise ReproError(f"{action.kind.value} needs two node groups")

    def __len__(self) -> int:
        return len(self.actions)

    def describe(self) -> str:
        parts = "; ".join(a.describe() for a in self.actions)
        knobs = []
        if self.duplicate_probability:
            knobs.append(f"dup={self.duplicate_probability}")
        if self.drop_probability:
            knobs.append(f"drop={self.drop_probability}")
        if self.max_delay:
            knobs.append(f"delay<={self.max_delay}")
        tail = f" [{', '.join(knobs)}]" if knobs else ""
        return (parts or "<empty plan>") + tail

    @property
    def needs_network(self) -> bool:
        return (
            any(
                a.kind
                in (FaultKind.PARTITION, FaultKind.PARTITION_ONE_WAY, FaultKind.HEAL)
                for a in self.actions
            )
            or self.duplicate_probability > 0.0
            or self.drop_probability > 0.0
            or self.max_delay > 0
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def seeded(
        cls,
        seed: int,
        nodes: Sequence[str],
        horizon: int = 200,
        crashes: int = 1,
        partitions: int = 1,
        restart_after: int = 40,
        heal_after: int = 30,
        protected: Sequence[str] = (),
        duplicate_probability: float = 0.0,
        max_delay: int = 0,
    ) -> "FaultPlan":
        """A reproducible random plan: ``crashes`` crash/restart pairs and
        ``partitions`` partition/heal pairs inside ``horizon`` ticks,
        optionally with seeded message duplication and delivery delay.

        Nodes in ``protected`` are never crashed (but may be partitioned)
        — use it to keep a workload's client driver alive."""
        rng = random.Random(seed)
        names = list(nodes)
        actions: List[FaultAction] = []
        candidates = [n for n in names if n not in set(protected)]
        for _ in range(crashes):
            if not candidates:
                break
            target = candidates[rng.randrange(len(candidates))]
            at = 1 + rng.randrange(max(1, horizon))
            actions.append(FaultAction(at, FaultKind.CRASH, target=target))
            actions.append(
                FaultAction(at + restart_after, FaultKind.RESTART, target=target)
            )
        for _ in range(partitions):
            if len(names) < 2:
                break
            shuffled = list(names)
            rng.shuffle(shuffled)
            cut = 1 + rng.randrange(len(shuffled) - 1)
            group_a, group_b = tuple(shuffled[:cut]), tuple(shuffled[cut:])
            at = 1 + rng.randrange(max(1, horizon))
            actions.append(
                FaultAction(
                    at, FaultKind.PARTITION, group_a=group_a, group_b=group_b
                )
            )
            actions.append(
                FaultAction(
                    at + heal_after, FaultKind.HEAL, group_a=group_a, group_b=group_b
                )
            )
        return cls(
            actions,
            duplicate_probability=duplicate_probability,
            max_delay=max_delay,
        )

    # -- installation --------------------------------------------------------

    def install(self, cluster: "object") -> "FaultInjector":
        """Attach this plan to a freshly built (unrun) cluster.  A plan is
        stateless and may be installed on any number of clusters."""
        injector = FaultInjector(cluster, self)
        injector.start()
        return injector


class FaultInjector:
    """The per-cluster thread that applies a plan's actions on schedule."""

    def __init__(self, cluster: "object", plan: FaultPlan) -> None:
        self.cluster = cluster
        self.plan = plan
        self.applied: List[str] = []

    def start(self) -> None:
        # Fail fast on typo'd targets: by install time the cluster's node
        # set is known, and a crash scheduled against a node that does
        # not exist would otherwise only surface as the injector thread
        # dying mid-run (an UNCAUGHT failure in the monitored log).
        known = set(self.cluster.nodes)
        for action in self.plan.actions:
            if action.target is not None and action.target not in known:
                raise ReproError(
                    f"fault plan targets unknown node "
                    f"{action.target!r} (cluster has: {sorted(known)})"
                )
        if self.plan.needs_network and not hasattr(self.cluster.network, "partition"):
            # Partitions / probabilistic faults need a fault-capable
            # policy; seed it off the cluster seed so the swap stays
            # deterministic.
            self.cluster.set_network(
                FlakyNetwork(
                    seed=self.cluster.seed,
                    max_delay=self.plan.max_delay,
                    drop_probability=self.plan.drop_probability,
                    duplicate_probability=self.plan.duplicate_probability,
                )
            )
        if not self.plan.actions:
            return
        self.cluster.scheduler.spawn(self._run, name="fault-injector")

    def _run(self) -> None:
        me = current_sim_thread()
        for action in self.plan.actions:
            if action.at > self.cluster.scheduler.clock:
                me.sleep_until(action.at)
            self._apply(action)

    def _apply(self, action: FaultAction) -> None:
        from repro import obs

        obs.counter(
            "faults_injected_total", "fault actions applied by the injector"
        ).labels(kind=action.kind.value).inc()
        if action.kind is FaultKind.CRASH:
            self.cluster.node(action.target).crash()
        elif action.kind is FaultKind.RESTART:
            self.cluster.node(action.target).restart()
        elif action.kind is FaultKind.PARTITION:
            self.cluster.network.partition(action.group_a, action.group_b)
        elif action.kind is FaultKind.PARTITION_ONE_WAY:
            self.cluster.network.partition_one_way(action.group_a, action.group_b)
        elif action.kind is FaultKind.HEAL:
            self.cluster.network.heal(action.group_a, action.group_b)
        self.applied.append(action.describe())


# -- soundness ----------------------------------------------------------------


@dataclass
class SoundnessReport:
    """Outcome of the no-spurious-HB-edge invariant check on one trace."""

    violations: List[str] = field(default_factory=list)
    dropped_sends: int = 0
    duplicated_sends: int = 0
    checked_sends: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "sound" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"fault soundness: {status} "
            f"({self.checked_sends} sends, {self.dropped_sends} dropped, "
            f"{self.duplicated_sends} duplicated)"
        )


def verify_fault_soundness(trace: "object") -> SoundnessReport:
    """Check that injected faults added no spurious Rule-Msoc material.

    * a ``Send`` the policy dropped (``extra["dropped"]``) must have **no**
      ``Recv`` with its tag — the HB analysis can then never order it
      before a delivery that did not happen;
    * a duplicated send has at most ``copies`` receives (each of which
      really happened, so each edge is sound).
    """
    report = SoundnessReport()
    recvs: dict = {}
    for record in trace:
        if record.kind is OpKind.SOCK_RECV:
            recvs.setdefault(record.obj_id, []).append(record)
    for record in trace:
        if record.kind is not OpKind.SOCK_SEND:
            continue
        report.checked_sends += 1
        tag = record.obj_id
        delivered = len(recvs.get(tag, []))
        if record.extra.get("dropped"):
            report.dropped_sends += 1
            if delivered:
                report.violations.append(
                    f"dropped send {tag} has {delivered} recv(s): "
                    "a never-delivered message must add no HB edge"
                )
            continue
        copies = record.extra.get("copies", 1)
        if copies > 1:
            report.duplicated_sends += 1
        if delivered > copies:
            report.violations.append(
                f"send {tag} delivered {copies} cop(ies) but has "
                f"{delivered} recv(s)"
            )
    return report


# -- campaigns ----------------------------------------------------------------


@dataclass
class CampaignRun:
    """One pipeline execution of a campaign: plan, result (or error)."""

    seed: int
    plan: FaultPlan
    result: Optional["object"] = None  # PipelineResult
    error: Optional[str] = None
    soundness: Optional[SoundnessReport] = None

    @property
    def ok(self) -> bool:
        return self.error is None and (
            self.soundness is None or self.soundness.ok
        )

    def describe(self) -> str:
        if self.error is not None:
            return f"seed {self.seed}: FAILED ({self.error})"
        sound = self.soundness.summary() if self.soundness else "unchecked"
        return f"seed {self.seed}: ok [{self.plan.describe()}] {sound}"


@dataclass
class CampaignResult:
    """Everything a fault campaign produced — always partial-failure-safe."""

    workload_id: str
    runs: List[CampaignRun] = field(default_factory=list)

    @property
    def completed_runs(self) -> List[CampaignRun]:
        return [r for r in self.runs if r.error is None]

    @property
    def failed_runs(self) -> List[CampaignRun]:
        return [r for r in self.runs if r.error is not None]

    @property
    def sound(self) -> bool:
        return all(r.soundness.ok for r in self.completed_runs if r.soundness)

    def summary(self) -> str:
        lines = [
            f"== fault campaign on {self.workload_id}: "
            f"{len(self.completed_runs)}/{len(self.runs)} runs completed =="
        ]
        lines.extend("  " + run.describe() for run in self.runs)
        return "\n".join(lines)


#: Builds the plan for one campaign run: (seed, node names) -> plan.
PlanFactory = Callable[[int, Sequence[str]], FaultPlan]


def _default_plan_factory(seed: int, nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan.seeded(seed, nodes)


class FaultCampaign:
    """Run a workload's DCatch pipeline under a seeded fault plan per seed.

    Every run is isolated: an exception escaping one pipeline run is
    recorded as that run's ``error`` and the campaign continues.  Each
    completed run's trace is checked against the no-spurious-HB-edge
    invariant."""

    def __init__(
        self,
        workload: "object",
        seeds: Sequence[int] = (0, 1, 2),
        plan_factory: Optional[PlanFactory] = None,
        config: Optional["object"] = None,  # PipelineConfig
    ) -> None:
        self.workload = workload
        self.seeds = tuple(seeds)
        self.plan_factory = plan_factory or _default_plan_factory
        self.config = config
        self._nodes: Optional[Tuple[str, ...]] = None

    def node_names(self) -> Tuple[str, ...]:
        """The workload's node names, learned from a probe build."""
        if self._nodes is None:
            cluster = self.workload.cluster(0, churn=False)
            try:
                self._nodes = tuple(cluster.nodes)
            finally:
                # The probe cluster never runs; reap its parked threads.
                cluster.scheduler._teardown()
        return self._nodes

    def run(self) -> CampaignResult:
        from repro.pipeline import DCatch, PipelineConfig

        campaign = CampaignResult(workload_id=self.workload.info.bug_id)
        base_config = self.config or PipelineConfig()
        nodes = self.node_names()
        for seed in self.seeds:
            plan = self.plan_factory(seed, nodes)
            config = replace(base_config, fault_plan=plan, monitored_seed=seed)
            run = CampaignRun(seed=seed, plan=plan)
            campaign.runs.append(run)
            try:
                run.result = DCatch(self.workload, config).run()
                run.soundness = verify_fault_soundness(run.result.trace)
            except Exception as exc:  # noqa: BLE001 - isolate per run
                run.error = f"{type(exc).__name__}: {exc}"
        return campaign
