"""The Cluster: one simulated distributed system run.

A cluster owns the scheduler, the nodes, the failure log, the id
allocator, and the interceptor chain (tracer, trigger gates).  Every
runtime primitive funnels its operations through ``pre_op``/``post_op``:

* ``pre_op`` allocates the global sequence number, runs ``before`` hooks
  (which may block the thread — that is how the trigger module enforces
  orders), and yields to the scheduler (the interleaving point);
* the primitive then performs its effect (no other thread can run in
  between, so ``seq`` order is execution order);
* ``post_op`` runs ``after`` hooks (the tracer appends its record).

Operations attempted outside any simulated thread (e.g. while a workload's
``build`` function wires up initial state) are silently skipped — the
analogue of not instrumenting initialization code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import DeadlockError, HangError, ReproError, SimAbort
from repro.ids import CallStack, IdAllocator, capture_stack
from repro.runtime.failures import FailureEvent, FailureKind, FailureLog
from repro.runtime.node import Node
from repro.runtime.ops import Interceptor, OpEvent, OpKind
from repro.runtime.scheduler import (
    Scheduler,
    SchedulingStrategy,
    SimThread,
    maybe_current_sim_thread,
)


class TimeoutRegistry:
    """Outstanding logical-time deadlines (RPC timeouts, fault actions).

    Registered as a scheduler wake hint: when every thread is blocked or
    asleep, the clock can jump to the earliest pending deadline so that a
    timeout predicate (``clock >= deadline``) eventually fires instead of
    the run being declared a deadlock."""

    def __init__(self) -> None:
        self._deadlines: Dict[int, int] = {}
        self._next_key = 0

    def register(self, deadline: int) -> int:
        key = self._next_key
        self._next_key += 1
        self._deadlines[key] = deadline
        return key

    def unregister(self, key: int) -> None:
        self._deadlines.pop(key, None)

    def next_wake(self) -> Optional[int]:
        return min(self._deadlines.values()) if self._deadlines else None

    def __len__(self) -> int:
        return len(self._deadlines)


@dataclass
class RunResult:
    """Outcome of one cluster run."""

    name: str
    seed: int
    steps: int
    clock: int
    completed: bool
    failures: FailureLog
    wall_seconds: float
    ops: int

    @property
    def harmful(self) -> bool:
        return self.failures.harmful()

    def failure_kinds(self) -> List[FailureKind]:
        return self.failures.kinds()

    def summary(self) -> str:
        status = "OK" if not self.harmful else "FAILED"
        kinds = ", ".join(sorted({k.value for k in self.failure_kinds()}))
        tail = f" ({kinds})" if kinds else ""
        return f"{self.name}: {status}{tail} steps={self.steps} ops={self.ops}"


class Cluster:
    """A simulated distributed system instance."""

    def __init__(
        self,
        name: str = "cluster",
        seed: int = 0,
        max_steps: int = 200_000,
        strategy: Optional[SchedulingStrategy] = None,
        verbose: bool = False,
    ) -> None:
        self.name = name
        self.seed = seed
        self.verbose = verbose
        from repro.runtime.network import NetworkPolicy, ReliableNetwork

        self.network: NetworkPolicy = ReliableNetwork()
        self.scheduler = Scheduler(strategy=strategy, seed=seed, max_steps=max_steps)
        self.timeouts = TimeoutRegistry()
        self.scheduler.add_wake_hint(self.timeouts.next_wake)
        self.ids = IdAllocator()
        self.failures = FailureLog()
        self.nodes: Dict[str, Node] = {}
        self.interceptors: List[Interceptor] = []
        self.heap_objects: List[object] = []
        self._seq = 0
        self._zk_service: Optional[object] = None
        self._znode_mirror: Optional[object] = None
        self._ran = False
        self.scheduler.on_thread_failure(self._record_thread_failure)

    # -- topology -----------------------------------------------------------

    def add_node(
        self,
        name: str,
        traced: bool = True,
        rpc_threads: int = 1,
        msg_threads: int = 1,
    ) -> Node:
        if name in self.nodes:
            raise ReproError(f"duplicate node name {name}")
        node = Node(
            self, name, traced=traced, rpc_threads=rpc_threads, msg_threads=msg_threads
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        node = self.nodes.get(name)
        if node is None:
            raise ReproError(f"unknown node {name}")
        return node

    def zookeeper(self, name: str = "zk") -> "object":
        """The coordination-service substrate (created on first use)."""
        if self._zk_service is None:
            from repro.runtime.zookeeper import CoordinationService

            self._zk_service = CoordinationService(self, name)
        return self._zk_service

    def set_network(self, policy: "object") -> None:
        """Install a network fault-injection policy (see
        ``repro.runtime.network``); affects all subsequent sends."""
        self.network = policy

    def znode_mirror(self) -> "object":
        """Shared tracker that makes znode accesses memory accesses."""
        if self._znode_mirror is None:
            from repro.runtime.zookeeper import ZnodeMirror

            self._znode_mirror = ZnodeMirror(self)
        return self._znode_mirror

    # -- interceptors and op emission ----------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self.interceptors.append(interceptor)

    def notify_node_crash(self, node: Node) -> None:
        """Tell every interceptor a node just died (``Node.crash``)."""
        for interceptor in self.interceptors:
            interceptor.on_node_crash(node)

    def pre_op(
        self,
        kind: OpKind,
        obj_id: Any,
        location: Optional[tuple] = None,
        extra: Optional[dict] = None,
    ) -> Optional[OpEvent]:
        thread = maybe_current_sim_thread()
        if thread is None or thread.scheduler is not self.scheduler:
            return None
        event = OpEvent(
            seq=0,  # assigned after the yield — see below
            kind=kind,
            obj_id=obj_id,
            node=thread.node.name if thread.node is not None else "<none>",
            tid=thread.tid,
            thread_name=thread.name,
            segment=thread.segment,
            callstack=capture_stack(),
            location=location,
            in_handler=thread.in_handler,
            extra=extra or {},
        )
        for interceptor in self.interceptors:
            interceptor.before(event)
        thread.yield_control()
        # The sequence number is allocated only *after* the scheduling
        # point, immediately before the caller performs the operation:
        # other threads may run during the yield, and seq order must be
        # execution order (a read must never observe a higher-seq write).
        self._seq += 1
        event.seq = self._seq
        return event

    def post_op(self, event: OpEvent) -> None:
        for interceptor in self.interceptors:
            interceptor.after(event)

    def op(
        self, kind: OpKind, obj_id: Any, extra: Optional[dict] = None
    ) -> Optional[OpEvent]:
        event = self.pre_op(kind, obj_id, extra=extra)
        if event is not None:
            self.post_op(event)
        return event

    def register_heap_object(self, obj: object) -> None:
        self.heap_objects.append(obj)

    # -- execution ------------------------------------------------------------

    def run(self) -> RunResult:
        """Drive the simulation to completion and summarize the outcome."""
        if self._ran:
            raise ReproError("a Cluster can only run once; build a fresh one")
        self._ran = True
        started = time.perf_counter()
        completed = True
        try:
            self.scheduler.run()
        except DeadlockError as exc:
            completed = False
            self.failures.record(
                FailureEvent(
                    kind=FailureKind.DEADLOCK,
                    node="<cluster>",
                    thread=",".join(t.name for t in exc.blocked),
                    message=str(exc),
                    step=self.scheduler.steps,
                )
            )
        except HangError as exc:
            completed = False
            self.failures.record(
                FailureEvent(
                    kind=FailureKind.HANG,
                    node="<cluster>",
                    thread="<scheduler>",
                    message=str(exc),
                    step=self.scheduler.steps,
                )
            )
        wall = time.perf_counter() - started
        return RunResult(
            name=self.name,
            seed=self.seed,
            steps=self.scheduler.steps,
            clock=self.scheduler.clock,
            completed=completed,
            failures=self.failures,
            wall_seconds=wall,
            ops=self._seq,
        )

    def _record_thread_failure(self, thread: SimThread, exc: BaseException) -> None:
        kind = FailureKind.ABORT if isinstance(exc, SimAbort) else FailureKind.UNCAUGHT
        self.failures.record(
            FailureEvent(
                kind=kind,
                node=thread.node.name if thread.node is not None else "<none>",
                thread=thread.name,
                message=f"{type(exc).__name__}: {exc}",
                step=self.scheduler.steps,
            )
        )
