"""Coordination service substrate (paper Section 2.1, Rule-Mpush).

A mini ZooKeeper: a dedicated *untraced* service node holds a tree of
znodes (data, version, optional ephemeral owner) and serves create /
delete / set / get / exists / children RPCs.  Clients can attach watches;
when a watched znode changes, the service pushes a notification message to
the watching node, whose watcher event-queue runs the registered callback.

The tracing mirrors the paper exactly (Section 3.1.1): the service's
internals are invisible (the node is untraced, like ZooKeeper's own code
was uninstrumented), and instead the *client boundary* is traced —
``ZK_UPDATE`` at ``create``/``delete``/``set_data`` call sites and
``ZK_PUSHED`` at watch-callback begin, paired by ``(path, zxid)``.  This
is what makes Rule-Mpush non-redundant: without it, the chain through the
service is invisible to the HB analysis (Table 9's "Push" ablation).

The service is used as substrate by mini-HBase; the mini-ZooKeeper
*system under test* (leader election, epoch handshake) is a separate
implementation in ``repro.systems.minizk``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NodeExistsError, NoNodeError, SimFailure
from repro.runtime.ops import OpKind

WatchCallback = Callable[["WatchEvent"], None]

NODE_CREATED = "NodeCreated"
NODE_DELETED = "NodeDeleted"
NODE_DATA_CHANGED = "NodeDataChanged"
NODE_CHILDREN_CHANGED = "NodeChildrenChanged"


@dataclass
class WatchEvent:
    """What a watch callback receives."""

    path: str
    etype: str
    zxid: int
    data: Any = None


@dataclass
class _Znode:
    data: Any = None
    version: int = 0
    ephemeral_owner: Optional[str] = None


@dataclass
class _Watch:
    client: str
    watch_uid: int
    persistent: bool
    child: bool = False


class CoordinationService:
    """The service side: znode tree + watch bookkeeping + notification."""

    def __init__(self, cluster: "object", name: str = "zk") -> None:
        self.cluster = cluster
        self.node = cluster.add_node(name, traced=False)
        self._tree: Dict[str, _Znode] = {"/": _Znode()}
        self._watches: Dict[str, List[_Watch]] = {}
        self._zxid = 0
        self.node.rpc_server.register("zk_create", self._create)
        self.node.rpc_server.register("zk_delete", self._delete)
        self.node.rpc_server.register("zk_set", self._set)
        self.node.rpc_server.register("zk_get", self._get)
        self.node.rpc_server.register("zk_exists", self._exists)
        self.node.rpc_server.register("zk_children", self._children)
        self.node.rpc_server.register("zk_watch", self._add_watch)
        self.node.rpc_server.register("zk_expire", self._expire)

    # -- RPC handlers (run on the service node's handler thread) ----------

    def _next_zxid(self) -> int:
        self._zxid += 1
        return self._zxid

    def _create(
        self,
        path: str,
        data: Any = None,
        ephemeral_owner: Optional[str] = None,
    ) -> int:
        if path in self._tree:
            raise NodeExistsError(path)
        parent = _parent_path(path)
        if parent not in self._tree:
            # Create missing ancestors implicitly (kazoo's makepath
            # behaviour) — keeps system code focused on the leaves.
            self._create(parent)
        self._tree[path] = _Znode(data=data, ephemeral_owner=ephemeral_owner)
        zxid = self._next_zxid()
        self._notify(path, NODE_CREATED, zxid, data)
        self._notify_children(parent, zxid)
        return zxid

    def _delete(self, path: str) -> int:
        if path not in self._tree:
            raise NoNodeError(path)
        del self._tree[path]
        zxid = self._next_zxid()
        self._notify(path, NODE_DELETED, zxid, None)
        self._notify_children(_parent_path(path), zxid)
        return zxid

    def _set(self, path: str, data: Any) -> int:
        znode = self._tree.get(path)
        if znode is None:
            raise NoNodeError(path)
        znode.data = data
        znode.version += 1
        zxid = self._next_zxid()
        self._notify(path, NODE_DATA_CHANGED, zxid, data)
        return zxid

    def _get(self, path: str) -> Any:
        znode = self._tree.get(path)
        if znode is None:
            raise NoNodeError(path)
        return znode.data

    def _exists(self, path: str) -> bool:
        return path in self._tree

    def _children(self, path: str) -> List[str]:
        prefix = path.rstrip("/") + "/"
        return sorted(
            p for p in self._tree if p.startswith(prefix) and "/" not in p[len(prefix):]
        )

    def _add_watch(
        self, path: str, client: str, watch_uid: int, persistent: bool, child: bool
    ) -> None:
        self._watches.setdefault(path, []).append(
            _Watch(client, watch_uid, persistent, child)
        )

    def _expire(self, owner: str) -> List[str]:
        """Session expiry: drop all ephemeral znodes owned by ``owner``."""
        doomed = [
            p for p, z in self._tree.items() if z.ephemeral_owner == owner
        ]
        for path in doomed:
            del self._tree[path]
            zxid = self._next_zxid()
            self._notify(path, NODE_DELETED, zxid, None)
            self._notify_children(_parent_path(path), zxid)
        return doomed

    # -- notification ------------------------------------------------------

    def _notify(self, path: str, etype: str, zxid: int, data: Any) -> None:
        self._fire(path, path, etype, zxid, data, child=False)

    def _notify_children(self, parent: str, zxid: int) -> None:
        self._fire(parent, parent, NODE_CHILDREN_CHANGED, zxid, None, child=True)

    def _fire(
        self, watch_path: str, path: str, etype: str, zxid: int, data: Any, child: bool
    ) -> None:
        watches = self._watches.get(watch_path, [])
        remaining = []
        for watch in watches:
            if watch.child != child:
                remaining.append(watch)
                continue
            self.node.send(
                watch.client,
                "zk-notify",
                {
                    "path": path,
                    "etype": etype,
                    "zxid": zxid,
                    "data": data,
                    "watch_uid": watch.watch_uid,
                },
            )
            if watch.persistent:
                remaining.append(watch)
        self._watches[watch_path] = remaining


def _parent_path(path: str) -> str:
    parent = path.rsplit("/", 1)[0]
    return parent or "/"


class ZnodeMirror:
    """Znode accesses *are* shared-memory accesses.

    The paper's HB-4729 races are on znodes ("one thread t1 could delete
    a zknode concurrently with another thread t2 reads this zknode and
    deletes this zknode" — Section 7.2), and real HBase code mirrors
    znode state in memory.  Every client-side znode operation therefore
    also records a MEM_READ/MEM_WRITE on location ``(mirror uid, path)``,
    with last-writer tracking — which additionally lets Rule-Mpull see
    ``exists``-polling custom synchronization.
    """

    def __init__(self, cluster: "object") -> None:
        from repro.runtime.heap import SharedObject

        self._object = SharedObject(cluster, "znodes")

    def record_read(self, path: str) -> None:
        self._object._read(path)

    def record_write(self, path: str) -> None:
        self._object._write(path)


class ZkClient:
    """Client-side API; this is the traced boundary (Rule-Mpush)."""

    def __init__(self, node: "object", service_name: str = "zk") -> None:
        self.node = node
        self.cluster = node.cluster
        self.service_name = service_name
        self._callbacks: Dict[int, WatchCallback] = {}
        self._watch_queue = node.event_queue("zkwatch", consumers=1)
        self._watch_queue.register("zk-watch", self._run_callback)
        node.sockets.register("zk-notify", self._on_notify)
        self._mirror = node.cluster.znode_mirror()

    # -- update operations (record MEM_WRITE + ZK_UPDATE) -------------------

    def create(self, path: str, data: Any = None, ephemeral: bool = False) -> int:
        owner = self.node.name if ephemeral else None
        self._mirror.record_write(path)
        return self._update("create", path, "zk_create", path, data, owner)

    def delete(self, path: str) -> int:
        self._mirror.record_write(path)
        return self._update("delete", path, "zk_delete", path)

    def set_data(self, path: str, data: Any) -> int:
        self._mirror.record_write(path)
        return self._update("set_data", path, "zk_set", path, data)

    def _update(self, api: str, path: str, method: str, *args) -> int:
        """Perform an update RPC with its ZK_UPDATE record *opened before*
        the call: the service may push the notification to watchers
        before this thread is scheduled again, and the Update must
        precede every Pushed in execution order.  The pairing id (the
        zxid is only known afterwards) is filled in before the record is
        committed."""
        event = self.cluster.pre_op(
            OpKind.ZK_UPDATE, None, extra={"api": api, "path": path}
        )
        try:
            zxid = getattr(self.node.rpc(self.service_name), method)(*args)
        except SimFailure:
            if event is not None:
                event.obj_id = (path, None)  # failed update pairs nothing
                self.cluster.post_op(event)
            raise
        if event is not None:
            event.obj_id = (path, zxid)
            self.cluster.post_op(event)
        return zxid

    # -- read operations (record MEM_READ) -----------------------------------

    def get_data(self, path: str, watch: Optional[WatchCallback] = None) -> Any:
        self._mirror.record_read(path)
        data = self.node.rpc(self.service_name).zk_get(path)
        if watch is not None:
            self._register_watch(path, watch, child=False)
        return data

    def exists(self, path: str, watch: Optional[WatchCallback] = None) -> bool:
        self._mirror.record_read(path)
        result = self.node.rpc(self.service_name).zk_exists(path)
        if watch is not None:
            self._register_watch(path, watch, child=False)
        return result

    def get_children(
        self, path: str, watch: Optional[WatchCallback] = None
    ) -> List[str]:
        self._mirror.record_read(path)
        children = self.node.rpc(self.service_name).zk_children(path)
        if watch is not None:
            self._register_watch(path, watch, child=True)
        return children

    def watch(
        self, path: str, callback: WatchCallback, persistent: bool = True
    ) -> None:
        """Attach a (by default persistent) data watch on ``path``."""
        self._register_watch(path, callback, child=False, persistent=persistent)

    def watch_children(
        self, path: str, callback: WatchCallback, persistent: bool = True
    ) -> None:
        self._register_watch(path, callback, child=True, persistent=persistent)

    def expire_session(self, owner: str) -> List[str]:
        """Simulate a session expiry for ``owner`` (used by chaos threads)."""
        return self.node.rpc(self.service_name).zk_expire(owner)

    def _register_watch(
        self,
        path: str,
        callback: WatchCallback,
        child: bool,
        persistent: bool = True,
    ) -> None:
        watch_uid = self.cluster.ids.next("zk-watch")
        self._callbacks[watch_uid] = callback
        self.node.rpc(self.service_name).zk_watch(
            path, self.node.name, watch_uid, persistent, child
        )

    # -- notification delivery (record ZK_PUSHED) ---------------------------

    def _on_notify(self, payload: dict, src: str) -> None:
        """Socket handler: hand the notification to the watcher queue."""
        self._watch_queue.post("zk-watch", payload)

    def _run_callback(self, event: "object") -> None:
        payload = event.payload
        callback = self._callbacks.get(payload["watch_uid"])
        self.cluster.op(
            OpKind.ZK_PUSHED,
            (payload["path"], payload["zxid"]),
            extra={"etype": payload["etype"], "path": payload["path"]},
        )
        if callback is not None:
            callback(
                WatchEvent(
                    path=payload["path"],
                    etype=payload["etype"],
                    zxid=payload["zxid"],
                    data=payload.get("data"),
                )
            )
