"""A simulated node: threads, RPC endpoint, sockets, queues, heap, locks."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.runtime import failures as failures_mod
from repro.runtime.events import EventQueue
from repro.runtime.heap import (
    SharedCounter,
    SharedDict,
    SharedList,
    SharedSet,
    SharedVar,
)
from repro.runtime.locks import SimLock
from repro.runtime.ops import OpKind
from repro.runtime.rpc import RpcProxy, RpcServer
from repro.runtime.scheduler import SimThread, ThreadState, current_sim_thread
from repro.runtime.sockets import SocketManager


class Node:
    """One machine of the simulated distributed system."""

    def __init__(
        self,
        cluster: "object",
        name: str,
        traced: bool = True,
        rpc_threads: int = 1,
        msg_threads: int = 1,
    ) -> None:
        self.cluster = cluster
        self.name = name
        self.traced = traced
        self.crashed = False
        self.log = failures_mod.Logger(
            self, cluster.failures, verbose=cluster.verbose
        )
        self.rpc_server = RpcServer(self, handler_threads=rpc_threads)
        self.sockets = SocketManager(self, dispatch_threads=msg_threads)
        self._queues: Dict[str, EventQueue] = {}
        self._locks: Dict[str, SimLock] = {}
        self._zk_client: Optional[object] = None

    # -- threads ------------------------------------------------------------

    def spawn(
        self, fn: Callable[[], None], name: Optional[str] = None, daemon: bool = False
    ) -> SimThread:
        """Fork a thread on this node (records Rule-Tfork's Create/Begin)."""
        label = name or getattr(fn, "__name__", "thread")
        if not label.startswith(f"{self.name}."):
            label = f"{self.name}.{label}"
        tid_holder: Dict[str, int] = {}

        def wrapper() -> None:
            self.cluster.op(OpKind.THREAD_BEGIN, tid_holder["tid"])
            fn()
            self.cluster.op(OpKind.THREAD_END, tid_holder["tid"])

        thread = self.cluster.scheduler.spawn(
            wrapper, name=label, node=self, daemon=daemon, start=False
        )
        tid_holder["tid"] = thread.tid
        # Record the fork before the child becomes runnable, so
        # Create(t) precedes Begin(t) in execution order (Rule-Tfork).
        self.cluster.op(OpKind.THREAD_CREATE, thread.tid, extra={"child": label})
        thread.start()
        return thread

    def join(self, thread: SimThread) -> None:
        """Wait for ``thread`` to finish (records Rule-Tjoin's Join)."""
        me = current_sim_thread()
        me.block_until(
            lambda: thread.state in (ThreadState.DONE, ThreadState.FAILED),
            f"join:{thread.name}",
        )
        self.cluster.op(OpKind.THREAD_JOIN, thread.tid, extra={"child": thread.name})

    # -- communication ------------------------------------------------------

    def rpc(self, target_name: str) -> RpcProxy:
        return RpcProxy(self, target_name)

    def send(self, target_name: str, verb: str, payload: Any = None) -> str:
        return self.sockets.send(target_name, verb, payload)

    def on_message(self, verb: str, handler: Callable[[Any, str], None]) -> None:
        self.sockets.register(verb, handler)

    def event_queue(self, name: str, consumers: int = 1) -> EventQueue:
        queue = self._queues.get(name)
        if queue is None:
            queue = EventQueue(self, name, consumers=consumers)
            self._queues[name] = queue
        return queue

    def zk(self, service_name: str = "zk") -> "object":
        if self._zk_client is None:
            from repro.runtime.zookeeper import ZkClient

            self._zk_client = ZkClient(self, service_name)
        return self._zk_client

    # -- state --------------------------------------------------------------

    def shared_var(self, name: str, initial: Any = None) -> SharedVar:
        return SharedVar(self.cluster, f"{self.name}.{name}", initial, node=self)

    def shared_dict(self, name: str) -> SharedDict:
        return SharedDict(self.cluster, f"{self.name}.{name}", node=self)

    def shared_list(self, name: str) -> SharedList:
        return SharedList(self.cluster, f"{self.name}.{name}", node=self)

    def shared_set(self, name: str) -> SharedSet:
        return SharedSet(self.cluster, f"{self.name}.{name}", node=self)

    def shared_counter(self, name: str, initial: int = 0) -> SharedCounter:
        return SharedCounter(self.cluster, f"{self.name}.{name}", initial, node=self)

    def lock(self, name: str) -> SimLock:
        lock = self._locks.get(name)
        if lock is None:
            lock = SimLock(self.cluster, f"{self.name}.{name}")
            self._locks[name] = lock
        return lock

    # -- failure ------------------------------------------------------------

    def abort(self, message: str) -> None:
        """The analogue of ``System.exit`` — a failure instruction."""
        failures_mod.abort(self, message)

    def crash(self) -> None:
        """Mark the node dead: future RPCs to it fail, messages are dropped."""
        self.crashed = True

    def __repr__(self) -> str:
        return f"<Node {self.name}{' (crashed)' if self.crashed else ''}>"
