"""A simulated node: threads, RPC endpoint, sockets, queues, heap, locks."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.runtime import failures as failures_mod
from repro.runtime.events import EventQueue
from repro.runtime.heap import (
    SharedCounter,
    SharedDict,
    SharedList,
    SharedSet,
    SharedVar,
)
from repro.runtime.locks import SimLock
from repro.runtime.ops import OpKind
from repro.runtime.rpc import RpcProxy, RpcServer
from repro.runtime.scheduler import SimThread, ThreadState, current_sim_thread
from repro.runtime.sockets import SocketManager


class NodeBehavior:
    """Base class for system components that own per-node state.

    A behavior attached via ``node.attach(self)`` is notified when the
    node restarts after a crash (``Node.restart()``): its ``on_restart``
    hook re-bootstraps whatever in-memory state the crash invalidated —
    re-registering tokens, resetting handshake flags, re-announcing
    membership.  Hooks run on the thread that called ``restart()`` (the
    fault injector), so any shared-state writes they perform are traced
    as that thread's operations."""

    def on_restart(self, node: "Node") -> None:  # pragma: no cover - default
        pass


class Node:
    """One machine of the simulated distributed system."""

    def __init__(
        self,
        cluster: "object",
        name: str,
        traced: bool = True,
        rpc_threads: int = 1,
        msg_threads: int = 1,
    ) -> None:
        self.cluster = cluster
        self.name = name
        self.traced = traced
        self.crashed = False
        self.log = failures_mod.Logger(
            self, cluster.failures, verbose=cluster.verbose
        )
        self.rpc_server = RpcServer(self, handler_threads=rpc_threads)
        self.sockets = SocketManager(self, dispatch_threads=msg_threads)
        self._queues: Dict[str, EventQueue] = {}
        self._locks: Dict[str, SimLock] = {}
        self._zk_client: Optional[object] = None
        self.restarts = 0
        self._behaviors: List[NodeBehavior] = []
        self._restart_hooks: List[Callable[[], None]] = []

    # -- threads ------------------------------------------------------------

    def spawn(
        self, fn: Callable[[], None], name: Optional[str] = None, daemon: bool = False
    ) -> SimThread:
        """Fork a thread on this node (records Rule-Tfork's Create/Begin)."""
        label = name or getattr(fn, "__name__", "thread")
        if not label.startswith(f"{self.name}."):
            label = f"{self.name}.{label}"
        tid_holder: Dict[str, int] = {}

        def wrapper() -> None:
            self.cluster.op(OpKind.THREAD_BEGIN, tid_holder["tid"])
            fn()
            self.cluster.op(OpKind.THREAD_END, tid_holder["tid"])

        thread = self.cluster.scheduler.spawn(
            wrapper, name=label, node=self, daemon=daemon, start=False
        )
        tid_holder["tid"] = thread.tid
        # Record the fork before the child becomes runnable, so
        # Create(t) precedes Begin(t) in execution order (Rule-Tfork).
        self.cluster.op(OpKind.THREAD_CREATE, thread.tid, extra={"child": label})
        thread.start()
        return thread

    def join(self, thread: SimThread) -> None:
        """Wait for ``thread`` to finish (records Rule-Tjoin's Join)."""
        me = current_sim_thread()
        me.block_until(
            lambda: thread.state in (ThreadState.DONE, ThreadState.FAILED),
            f"join:{thread.name}",
        )
        self.cluster.op(OpKind.THREAD_JOIN, thread.tid, extra={"child": thread.name})

    # -- communication ------------------------------------------------------

    def rpc(
        self,
        target_name: str,
        timeout: Optional[int] = None,
        retries: int = 0,
        backoff_base: int = 2,
        backoff_factor: int = 2,
        max_backoff: int = 64,
    ) -> RpcProxy:
        """An RPC proxy to ``target_name``; pass ``timeout`` (scheduler
        steps) and/or ``retries`` for a fault-tolerant caller."""
        return RpcProxy(
            self,
            target_name,
            timeout=timeout,
            retries=retries,
            backoff_base=backoff_base,
            backoff_factor=backoff_factor,
            max_backoff=max_backoff,
        )

    def send(self, target_name: str, verb: str, payload: Any = None) -> str:
        return self.sockets.send(target_name, verb, payload)

    def on_message(self, verb: str, handler: Callable[[Any, str], None]) -> None:
        self.sockets.register(verb, handler)

    def event_queue(self, name: str, consumers: int = 1) -> EventQueue:
        queue = self._queues.get(name)
        if queue is None:
            queue = EventQueue(self, name, consumers=consumers)
            self._queues[name] = queue
        return queue

    def zk(self, service_name: str = "zk") -> "object":
        if self._zk_client is None:
            from repro.runtime.zookeeper import ZkClient

            self._zk_client = ZkClient(self, service_name)
        return self._zk_client

    # -- state --------------------------------------------------------------

    def shared_var(self, name: str, initial: Any = None) -> SharedVar:
        return SharedVar(self.cluster, f"{self.name}.{name}", initial, node=self)

    def shared_dict(self, name: str) -> SharedDict:
        return SharedDict(self.cluster, f"{self.name}.{name}", node=self)

    def shared_list(self, name: str) -> SharedList:
        return SharedList(self.cluster, f"{self.name}.{name}", node=self)

    def shared_set(self, name: str) -> SharedSet:
        return SharedSet(self.cluster, f"{self.name}.{name}", node=self)

    def shared_counter(self, name: str, initial: int = 0) -> SharedCounter:
        return SharedCounter(self.cluster, f"{self.name}.{name}", initial, node=self)

    def lock(self, name: str) -> SimLock:
        lock = self._locks.get(name)
        if lock is None:
            lock = SimLock(self.cluster, f"{self.name}.{name}")
            self._locks[name] = lock
        return lock

    # -- failure ------------------------------------------------------------

    def abort(self, message: str) -> None:
        """The analogue of ``System.exit`` — a failure instruction."""
        failures_mod.abort(self, message)

    def crash(self) -> None:
        """Mark the node dead: future RPCs to it fail, messages are dropped.

        Everything in flight dies with it — the pending inbox is purged
        (counted as dropped) and queued-but-unstarted RPC requests fail,
        unblocking remote callers with an ``RpcError`` instead of leaving
        them waiting on a reply that can never come."""
        if self.crashed:
            return
        self.crashed = True
        self.sockets.purge()
        self.rpc_server.fail_pending("node crashed")
        self.cluster.notify_node_crash(self)
        self.log.warn("node crashed")

    def restart(self) -> None:
        """Bring a crashed node back: accept RPCs/messages again and give
        every attached ``NodeBehavior`` (and ``on_restart`` hook) a chance
        to re-bootstrap its state.  A no-op on a live node."""
        if not self.crashed:
            return
        self.crashed = False
        self.restarts += 1
        self.log.info(f"node restarted (restart #{self.restarts})")
        for behavior in self._behaviors:
            behavior.on_restart(self)
        for hook in self._restart_hooks:
            hook()

    def attach(self, behavior: NodeBehavior) -> NodeBehavior:
        """Register a component whose ``on_restart`` re-bootstraps state."""
        self._behaviors.append(behavior)
        return behavior

    def on_restart(self, hook: Callable[[], None]) -> None:
        """Register a bare callable invoked after every restart."""
        self._restart_hooks.append(hook)

    def __repr__(self) -> str:
        return f"<Node {self.name}{' (crashed)' if self.crashed else ''}>"
