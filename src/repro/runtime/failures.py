"""Failure events and per-node logging.

The paper's static pruning (Section 4.1) defines four classes of *failure
instructions*: aborts/exits, ``Log::fatal``/``Log::error`` invocations,
uncatchable exceptions, and infinite loops.  The runtime mirrors those as
observable failure events so the trigger module can tell harmful schedules
from benign ones:

* ``node.abort(msg)`` — the analogue of ``System.exit``;
* ``log.fatal`` — a severe printed error (``log.error`` is recorded too,
  but counts as noise: real systems error-log tolerated conditions);
* an exception escaping a simulated thread — uncatchable exception;
* ``DeadlockError`` / ``HangError`` from the scheduler — hangs.

``FailureKind.severe`` separates the harmful kinds from the noisy ones;
``FailureLog.harmful()`` (and therefore every trigger verdict) only
considers severe events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.errors import SimAbort
from repro.ids import CallStack, capture_stack


class FailureKind(Enum):
    ABORT = "abort"
    FATAL_LOG = "fatal_log"
    ERROR_LOG = "error_log"
    UNCAUGHT = "uncaught_exception"
    DEADLOCK = "deadlock"
    HANG = "hang"

    @property
    def severe(self) -> bool:
        """Whether this failure makes a run *harmful* (vs. merely noisy).

        ``log.error`` lines are noise in real cloud systems — they fire on
        tolerated intermediate states and retried operations — so only
        aborts, fatal logs, uncatchable exceptions, deadlocks and hangs
        count toward a harmful verdict."""
        return self is not FailureKind.ERROR_LOG


@dataclass
class FailureEvent:
    kind: FailureKind
    node: str
    thread: str
    message: str
    step: int
    callstack: CallStack = field(default_factory=CallStack)

    def __str__(self) -> str:
        return f"[{self.kind.value}] {self.node}/{self.thread}: {self.message}"


class FailureLog:
    """Cluster-wide sink for failure events."""

    def __init__(self) -> None:
        self.events: List[FailureEvent] = []

    def record(self, event: FailureEvent) -> None:
        self.events.append(event)

    def harmful(self) -> bool:
        """True when any *severe* failure was recorded; noisy error-log
        events alone do not make a run harmful."""
        return any(e.kind.severe for e in self.events)

    def severe_events(self) -> List[FailureEvent]:
        return [e for e in self.events if e.kind.severe]

    def kinds(self) -> List[FailureKind]:
        return [e.kind for e in self.events]

    def by_kind(self, kind: FailureKind) -> List[FailureEvent]:
        return [e for e in self.events if e.kind is kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class Logger:
    """Per-node logger; ``error``/``fatal`` double as failure instructions."""

    def __init__(self, node: "object", failure_log: FailureLog, verbose: bool = False):
        self._node = node
        self._failures = failure_log
        self._verbose = verbose
        self.lines: List[str] = []

    def _emit(self, level: str, message: str) -> None:
        line = f"{level:5s} {self._node.name}: {message}"
        self.lines.append(line)
        if self._verbose:
            print(line)

    def debug(self, message: str) -> None:
        self._emit("DEBUG", message)

    def info(self, message: str) -> None:
        self._emit("INFO", message)

    def warn(self, message: str) -> None:
        self._emit("WARN", message)

    def error(self, message: str) -> None:
        self._emit("ERROR", message)
        self._record_failure(FailureKind.ERROR_LOG, message)

    def fatal(self, message: str) -> None:
        self._emit("FATAL", message)
        self._record_failure(FailureKind.FATAL_LOG, message)

    def _record_failure(self, kind: FailureKind, message: str) -> None:
        from repro.runtime.scheduler import maybe_current_sim_thread

        thread = maybe_current_sim_thread()
        self._failures.record(
            FailureEvent(
                kind=kind,
                node=self._node.name,
                thread=thread.name if thread else "<main>",
                message=message,
                step=self._node.cluster.scheduler.steps,
                callstack=capture_stack(),
            )
        )


def abort(node: "object", message: str) -> None:
    """Abort the current node: the analogue of ``System.exit``.

    Raises ``SimAbort`` which escapes the simulated thread; the cluster's
    failure handler records an ABORT failure event.
    """
    raise SimAbort(f"{node.name}: {message}")
