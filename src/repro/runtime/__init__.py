"""Simulated distributed-system runtime substrate.

This package is the substitute for the real Java cloud systems the paper
instruments: a deterministic cooperative scheduler plus every concurrency
and communication mechanism of the paper's Table 1 — threads (fork/join),
FIFO event queues, synchronous RPC, asynchronous sockets, a ZooKeeper-like
coordination service with watches, shared-memory heap objects and locks.
"""

from repro.runtime.api import me, sleep, yield_now
from repro.runtime.cluster import Cluster, RunResult, TimeoutRegistry
from repro.runtime.events import Event, EventQueue
from repro.runtime.failures import FailureEvent, FailureKind, FailureLog
from repro.runtime.faults import (
    CampaignResult,
    CampaignRun,
    FaultAction,
    FaultCampaign,
    FaultInjector,
    FaultKind,
    FaultPlan,
    SoundnessReport,
    verify_fault_soundness,
)
from repro.runtime.heap import (
    SharedCounter,
    SharedDict,
    SharedList,
    SharedObject,
    SharedSet,
    SharedVar,
)
from repro.runtime.locks import SimCondition, SimLock, SimSemaphore, synchronized
from repro.runtime.network import (
    Delivery,
    FlakyNetwork,
    NetworkPolicy,
    ReliableNetwork,
)
from repro.runtime.node import Node, NodeBehavior
from repro.runtime.replay import RecordingStrategy, ReplayStrategy
from repro.runtime.ops import HB_KINDS, Interceptor, Location, MEM_KINDS, OpEvent, OpKind
from repro.runtime.rpc import RpcProxy, RpcServer, call_rpc, call_with_retry
from repro.runtime.scheduler import (
    PreferredThreadStrategy,
    RandomStrategy,
    RoundRobinStrategy,
    Scheduler,
    SchedulingStrategy,
    SimThread,
    ThreadState,
    current_sim_thread,
)
from repro.runtime.sockets import Message, SocketManager
from repro.runtime.zookeeper import (
    NODE_CHILDREN_CHANGED,
    NODE_CREATED,
    NODE_DATA_CHANGED,
    NODE_DELETED,
    CoordinationService,
    WatchEvent,
    ZkClient,
)

__all__ = [
    "Cluster",
    "RunResult",
    "TimeoutRegistry",
    "Node",
    "NodeBehavior",
    "FaultKind",
    "FaultAction",
    "FaultPlan",
    "FaultInjector",
    "FaultCampaign",
    "CampaignRun",
    "CampaignResult",
    "SoundnessReport",
    "verify_fault_soundness",
    "Event",
    "EventQueue",
    "FailureEvent",
    "FailureKind",
    "FailureLog",
    "SharedCounter",
    "SharedDict",
    "SharedList",
    "SharedObject",
    "SharedSet",
    "SharedVar",
    "SimLock",
    "SimCondition",
    "SimSemaphore",
    "synchronized",
    "NetworkPolicy",
    "ReliableNetwork",
    "FlakyNetwork",
    "Delivery",
    "Interceptor",
    "OpEvent",
    "OpKind",
    "Location",
    "HB_KINDS",
    "MEM_KINDS",
    "RpcProxy",
    "RpcServer",
    "call_rpc",
    "call_with_retry",
    "Scheduler",
    "SchedulingStrategy",
    "RandomStrategy",
    "RoundRobinStrategy",
    "RecordingStrategy",
    "ReplayStrategy",
    "PreferredThreadStrategy",
    "SimThread",
    "ThreadState",
    "current_sim_thread",
    "Message",
    "SocketManager",
    "CoordinationService",
    "ZkClient",
    "WatchEvent",
    "NODE_CREATED",
    "NODE_DELETED",
    "NODE_DATA_CHANGED",
    "NODE_CHILDREN_CHANGED",
    "sleep",
    "yield_now",
    "me",
]
