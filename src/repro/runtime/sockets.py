"""Asynchronous socket messaging (paper Section 2.1, Rule-Msoc).

A sender thread posts a verb-tagged message to another node and continues
immediately; the receiving node's message-dispatch thread runs the handler
registered for that verb.  ``SOCK_SEND`` is recorded on the sender,
``SOCK_RECV`` on the receiver at handler begin, both carrying the same
message tag — the analogue of the paper's extra tag field injected into
socket message objects (Section 6).

This mirrors Cassandra's ``IVerbHandler`` / ``sendOneWay`` structure and
ZooKeeper's ``Record``-based messaging.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro import obs
from repro.errors import ReproError
from repro.runtime.ops import OpKind
from repro.runtime.scheduler import current_sim_thread

VerbHandler = Callable[[Any, str], None]  # (payload, source_node_name)


class Message:
    def __init__(
        self,
        tag: str,
        verb: str,
        payload: Any,
        src: str,
        dst: str,
        deliver_at: int = 0,
    ) -> None:
        self.tag = tag
        self.verb = verb
        self.payload = payload
        self.src = src
        self.dst = dst
        self.deliver_at = deliver_at

    def __repr__(self) -> str:
        return f"<Message {self.verb} {self.src}->{self.dst} {self.tag}>"


class SocketManager:
    """Per-node inbox plus verb-dispatch threads."""

    def __init__(self, node: "object", dispatch_threads: int = 1) -> None:
        self.node = node
        self.cluster = node.cluster
        self._handlers: Dict[str, VerbHandler] = {}
        self._inbox: Deque[Message] = deque()
        self.dropped = 0  # messages the network policy discarded
        self.cluster.scheduler.add_wake_hint(self._next_delivery_time)
        self.dispatch_thread_objs: List[object] = []
        for i in range(dispatch_threads):
            suffix = f"-{i}" if dispatch_threads > 1 else ""
            t = node.spawn(
                self._dispatch_loop, name=f"{node.name}.msg{suffix}", daemon=True
            )
            self.dispatch_thread_objs.append(t)

    def register(self, verb: str, handler: VerbHandler) -> None:
        if verb in self._handlers:
            raise ReproError(f"verb handler {verb} already registered")
        self._handlers[verb] = handler

    def deliver(self, message: Message) -> None:
        self._inbox.append(message)

    def purge(self) -> int:
        """Discard every pending inbox message (counted as dropped) — a
        crashed node loses whatever the network had already handed over."""
        lost = len(self._inbox)
        self._inbox.clear()
        self.dropped += lost
        return lost

    def send(self, target_name: str, verb: str, payload: Any = None) -> str:
        """Fire-and-forget send from the current thread; returns the tag.

        Delivery (and whether it happens at all) is up to the cluster's
        network policy — see ``repro.runtime.network``.  A policy may
        duplicate the message (``Delivery.copies > 1``): every copy keeps
        the same tag, so each extra delivery is just another ``Recv`` for
        the one ``Send`` — Rule-Msoc stays sound.
        """
        target = self.cluster.node(target_name)
        tag = self.cluster.ids.tag("msg")
        delivery = self.cluster.network.plan(self.node.name, target_name, verb)
        copies = max(1, delivery.copies)
        dropped = not delivery.deliver or target.crashed
        meta = {"verb": verb, "src": self.node.name, "dst": target_name}
        if dropped:
            meta["dropped"] = True
        elif copies > 1:
            meta["copies"] = copies
        self.cluster.op(OpKind.SOCK_SEND, tag, extra=dict(meta))
        obs.counter("messages_sent_total", "socket messages sent").labels(
            verb=verb
        ).inc()
        if dropped or target.crashed:
            target.sockets.dropped += 1
            obs.counter(
                "messages_dropped_total", "messages the network discarded"
            ).labels(verb=verb).inc()
            return tag
        if copies > 1:
            obs.counter(
                "messages_duplicated_total", "messages the network duplicated"
            ).labels(verb=verb).inc()
        if delivery.delay:
            obs.counter(
                "messages_delayed_total", "messages delivered late"
            ).labels(verb=verb).inc()
        deliver_at = self.cluster.scheduler.clock + delivery.delay
        for _ in range(copies):
            target.sockets.deliver(
                Message(tag, verb, payload, self.node.name, target_name, deliver_at)
            )
        return tag

    def _next_delivery_time(self) -> Optional[int]:
        """Wake hint: earliest pending delayed delivery, if any."""
        pending = [m.deliver_at for m in self._inbox]
        return min(pending) if pending else None

    def _pop_ready(self) -> Optional[Message]:
        clock = self.cluster.scheduler.clock
        for index, message in enumerate(self._inbox):
            if message.deliver_at <= clock:
                del self._inbox[index]
                return message
        return None

    def _has_ready(self) -> bool:
        if self.node.crashed:
            return False  # a dead node dispatches nothing until restart
        clock = self.cluster.scheduler.clock
        return any(m.deliver_at <= clock for m in self._inbox)

    def _dispatch_loop(self) -> None:
        me = current_sim_thread()
        while True:
            me.block_until(self._has_ready, f"inbox:{self.node.name}")
            message = self._pop_ready()
            if message is None:
                continue
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.verb)
        thread = current_sim_thread()
        thread.push_segment()
        meta = {
            "verb": message.verb,
            "src": message.src,
            "dst": message.dst,
            "handler": getattr(handler, "__qualname__", str(handler)),
        }
        self.cluster.op(OpKind.SOCK_RECV, message.tag, extra=dict(meta))
        obs.counter(
            "messages_delivered_total", "socket messages dispatched to handlers"
        ).labels(verb=message.verb).inc()
        try:
            if handler is None:
                self.node.log.warn(f"no verb handler for {message.verb}")
            else:
                handler(message.payload, message.src)
        finally:
            thread.pop_segment()

    def pending(self) -> int:
        return len(self._inbox)
