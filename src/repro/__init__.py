"""DCatch reproduction: distributed concurrency bug detection (ASPLOS 2017).

Public API highlights:

* ``repro.runtime`` — deterministic simulated distributed runtime.
* ``repro.trace`` — run-time tracing (paper Section 3.1).
* ``repro.hb`` — the MTEP happens-before model and graph (Sections 2, 3.2).
* ``repro.detect`` — DCbug candidate detection (Section 3.2.2).
* ``repro.analysis`` — static pruning (Section 4).
* ``repro.trigger`` — DCbug triggering and validation (Section 5).
* ``repro.systems`` — the four mini cloud systems and seven benchmark
  workloads (Section 7.1, Table 3).
* ``repro.pipeline`` — the end-to-end DCatch pipeline.
"""

__version__ = "1.0.0"

from repro.errors import (
    DeadlockError,
    HangError,
    NoNodeError,
    NodeExistsError,
    ReproError,
    RpcError,
    SimAbort,
    SimFailure,
    TraceAnalysisOOM,
)

__all__ = [
    "ReproError",
    "SimFailure",
    "SimAbort",
    "RpcError",
    "NoNodeError",
    "NodeExistsError",
    "DeadlockError",
    "HangError",
    "TraceAnalysisOOM",
    "__version__",
]
