"""Deterministic workload engine: million-record synthetic WAL traces.

Scales the four mini systems' coordination skeleton to hundreds of
nodes and hundreds of barrier phases, emitting traces directly in WAL
segment form with planted-race ground truth (see
:mod:`repro.workload.spec` for the scenario and its guarantees).
"""

from repro.workload.generator import (
    GROUND_TRUTH_FORMAT,
    GROUND_TRUTH_VERSION,
    GeneratedWorkload,
    generate_workload,
    load_ground_truth,
)
from repro.workload.spec import PRESETS, SYSTEM_FLAVORS, WorkloadSpec, resolve_spec

__all__ = [
    "GROUND_TRUTH_FORMAT",
    "GROUND_TRUTH_VERSION",
    "GeneratedWorkload",
    "generate_workload",
    "load_ground_truth",
    "PRESETS",
    "SYSTEM_FLAVORS",
    "WorkloadSpec",
    "resolve_spec",
]
