"""Workload specifications for the synthetic scenario generator.

A :class:`WorkloadSpec` describes the *shape* of a generated cluster run:
how many worker nodes participate, how many coordination phases they go
through, and how much memory traffic each phase produces.  Three named
presets (``small``/``medium``/``xl``) scale the same scenario from a
few hundred records (unit tests) to over a million (the streaming /
parallel-detection benchmarks the ROADMAP asks for).

The generated scenario is a phase-barrier protocol, the common skeleton
of all four mini systems (a ZooKeeper quorum round, an HBase region
assignment wave, a MapReduce task wave, a Cassandra gossip round):

* a coordinator node sends every worker a phase-start message;
* each worker performs local memory operations, a subset of workers
  performs an explicitly *ordered* hand-off chain (write, token send,
  token recv, write), and a disjoint subset performs deliberately
  *unordered* conflicting accesses on a per-phase shared key — the
  planted races;
* each worker reports completion; the coordinator collects every
  report before opening the next phase.

Because a worker's only outgoing message after touching the planted key
is its phase-done report — and the coordinator only messages workers
again in the *next* phase — the planted accesses are concurrent by
construction, while the hand-off chain is ordered by construction.
The planted pairs are therefore exactly the candidate set a correct
detector must produce: 100%% recall and zero false positives, verified
by set equality.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

__all__ = ["WorkloadSpec", "PRESETS", "SYSTEM_FLAVORS", "resolve_spec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape parameters for one generated scenario."""

    preset: str
    #: Worker nodes (each is one node + one regular thread = one stream).
    workers: int
    #: Coordination phases (barrier rounds).
    phases: int
    #: Private memory operations per worker per phase.
    local_ops: int
    #: Workers participating in the ordered token hand-off chain.
    chain_len: int
    #: Workers planted on the shared race key each planted phase.
    racers: int = 2
    #: Plant a race group every N phases (1 = every phase).
    race_every: int = 1
    #: WAL segment rotation (records per ``seg-NNNN.wal`` file).
    segment_records: int = 1024

    def describe(self) -> Dict[str, object]:
        return dict(asdict(self))

    def validate(self) -> None:
        if self.workers < 2:
            raise ValueError("workload needs at least 2 workers")
        if self.phases < 1:
            raise ValueError("workload needs at least 1 phase")
        if self.chain_len < 2 or self.chain_len + self.racers > self.workers:
            raise ValueError(
                "need chain_len >= 2 and chain_len + racers <= workers "
                f"(got chain_len={self.chain_len} racers={self.racers} "
                f"workers={self.workers})"
            )
        if self.racers < 2:
            raise ValueError("a planted race needs at least 2 racers")
        if self.race_every < 1:
            raise ValueError("race_every must be >= 1")
        if self.local_ops < 0:
            raise ValueError("local_ops must be >= 0")
        if self.segment_records < 1:
            raise ValueError("segment_records must be >= 1")


#: Named presets.  Approximate record counts: small ~500, medium ~180k,
#: xl ~1.06M (>= the 1M-record floor the streaming bench targets).
PRESETS: Dict[str, WorkloadSpec] = {
    "small": WorkloadSpec(
        preset="small",
        workers=8,
        phases=8,
        local_ops=2,
        chain_len=3,
        segment_records=256,
    ),
    "medium": WorkloadSpec(
        preset="medium",
        workers=120,
        phases=150,
        local_ops=6,
        chain_len=6,
        segment_records=1024,
    ),
    "xl": WorkloadSpec(
        preset="xl",
        workers=400,
        phases=240,
        local_ops=7,
        chain_len=6,
        segment_records=4096,
    ),
}


#: Naming flavors that dress the same protocol skeleton as each of the
#: four mini systems (node names, key namespaces, source file of the
#: synthetic call stacks).
SYSTEM_FLAVORS: Dict[str, Dict[str, str]] = {
    "minizk": {
        "coordinator": "leader",
        "worker": "follower",
        "race_key": "/dcatch/epoch-{phase}",
        "chain_key": "/dcatch/commit-{phase}",
        "private_key": "/session/{worker}",
        "source": "repro/systems/minizk.py",
    },
    "minica": {
        "coordinator": "seed",
        "worker": "peer",
        "race_key": "ring/token-{phase}",
        "chain_key": "ring/repair-{phase}",
        "private_key": "memtable/{worker}",
        "source": "repro/systems/minica.py",
    },
    "minimr": {
        "coordinator": "jobtracker",
        "worker": "tasktracker",
        "race_key": "job/attempt-{phase}",
        "chain_key": "job/commit-{phase}",
        "private_key": "task/{worker}",
        "source": "repro/systems/minimr.py",
    },
    "minihb": {
        "coordinator": "hmaster",
        "worker": "regionserver",
        "race_key": "meta/region-{phase}",
        "chain_key": "meta/assign-{phase}",
        "private_key": "memstore/{worker}",
        "source": "repro/systems/minihb.py",
    },
}


def resolve_spec(preset: str) -> WorkloadSpec:
    try:
        return PRESETS[preset]
    except KeyError:
        raise ValueError(
            f"unknown workload preset {preset!r}; expected one of "
            f"{sorted(PRESETS)}"
        ) from None
