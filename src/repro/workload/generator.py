"""Deterministic scenario generator: multi-million-record WAL traces.

``generate_workload`` synthesizes the phase-barrier scenario described
in :mod:`repro.workload.spec` directly in WAL-segment form (the PR-4
``repro.trace.wal`` framing), one stream per node thread, plus a
``ground_truth.json`` manifest listing every planted race.  Everything
is derived from ``(system, preset, seed)`` through seeded ``random``
instances and the WAL writer's canonical JSON encoding, so two runs
with the same inputs produce byte-identical segment files.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ids import CallStack, Frame
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.records import record_to_dict
from repro.trace.wal import WalWriter
from repro.workload.spec import (
    PRESETS,
    SYSTEM_FLAVORS,
    WorkloadSpec,
    resolve_spec,
)

__all__ = [
    "GROUND_TRUTH_FORMAT",
    "GROUND_TRUTH_VERSION",
    "GeneratedWorkload",
    "generate_workload",
    "load_ground_truth",
]

GROUND_TRUTH_FORMAT = "repro-workload-ground-truth"
GROUND_TRUTH_VERSION = 1

#: Synthetic call-stack line numbers, one per protocol role, so static
#: sites dedup the way real traced frames would.
_ROLE_LINES = {
    "phase_start": 11,
    "phase_recv": 23,
    "local_write": 31,
    "local_read": 37,
    "chain_write": 41,
    "token_send": 47,
    "token_recv": 53,
    "race_write": 61,
    "race_read": 67,
    "phase_done": 71,
    "collect": 79,
}

_COORD_TID = 1


@dataclass
class GeneratedWorkload:
    """Summary of one generated scenario (also saved as ground truth)."""

    system: str
    preset: str
    seed: int
    out_dir: str
    wal_dir: str
    ground_truth_path: str
    spec: WorkloadSpec
    records: int
    hb_records: int
    mem_records: int
    streams: int
    planted_races: List[Dict[str, object]] = field(default_factory=list)
    ordered_pairs: List[Dict[str, object]] = field(default_factory=list)

    def manifest(self) -> Dict[str, object]:
        return {
            "format": GROUND_TRUTH_FORMAT,
            "version": GROUND_TRUTH_VERSION,
            "system": self.system,
            "preset": self.preset,
            "seed": self.seed,
            "spec": self.spec.describe(),
            "records": self.records,
            "hb_records": self.hb_records,
            "mem_records": self.mem_records,
            "streams": self.streams,
            "planted_races": self.planted_races,
            "ordered_pairs": self.ordered_pairs,
        }


class _Emitter:
    """Allocates global sequence numbers and routes records to per-stream
    WAL writers."""

    def __init__(self, wal_dir: str, segment_records: int, source: str) -> None:
        self.wal_dir = wal_dir
        self.segment_records = segment_records
        self.source = source
        self.seq = 0
        self.hb_records = 0
        self.mem_records = 0
        self._writers: Dict[Tuple[str, int], WalWriter] = {}
        self._stacks: Dict[str, CallStack] = {}

    def _stack(self, role: str) -> CallStack:
        stack = self._stacks.get(role)
        if stack is None:
            frame = Frame(self.source, role, _ROLE_LINES[role])
            stack = CallStack((frame,))
            self._stacks[role] = stack
        return stack

    def emit(
        self,
        node: str,
        tid: int,
        kind: OpKind,
        obj_id: object,
        role: str,
        location: Optional[Tuple[int, str]] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> int:
        self.seq += 1
        event = OpEvent(
            seq=self.seq,
            kind=kind,
            obj_id=obj_id,
            node=node,
            tid=tid,
            thread_name="main",
            segment=tid,
            callstack=self._stack(role),
            location=location,
            extra=extra or {},
        )
        if event.is_mem:
            self.mem_records += 1
        else:
            self.hb_records += 1
        key = (node, tid)
        writer = self._writers.get(key)
        if writer is None:
            writer = WalWriter(
                self.wal_dir,
                node,
                tid,
                segment_records=self.segment_records,
                flush_every=256,
            )
            self._writers[key] = writer
        writer.append(record_to_dict(event))
        return self.seq

    def close(self) -> int:
        for writer in self._writers.values():
            writer.close()
        return len(self._writers)


def generate_workload(
    system: str,
    preset: str | WorkloadSpec,
    seed: int,
    out_dir: str,
    segment_records: Optional[int] = None,
) -> GeneratedWorkload:
    """Generate one scenario under ``out_dir`` (``wal/`` + ground truth).

    ``system`` picks the naming flavor (minizk/minica/minimr/minihb),
    ``preset`` a named size or an explicit :class:`WorkloadSpec`, and
    ``seed`` the deterministic randomness for group selection and the
    read/write mix.  Returns the :class:`GeneratedWorkload` summary that
    is also written to ``out_dir/ground_truth.json``.
    """
    if system not in SYSTEM_FLAVORS:
        raise ValueError(
            f"unknown system flavor {system!r}; expected one of "
            f"{sorted(SYSTEM_FLAVORS)}"
        )
    flavor = SYSTEM_FLAVORS[system]
    spec = preset if isinstance(preset, WorkloadSpec) else resolve_spec(preset)
    if segment_records is not None:
        spec = WorkloadSpec(**{**spec.describe(), "segment_records": segment_records})
    spec.validate()

    wal_dir = os.path.join(out_dir, "wal")
    os.makedirs(wal_dir, exist_ok=True)
    emitter = _Emitter(wal_dir, spec.segment_records, flavor["source"])

    coord = flavor["coordinator"]
    worker_nodes = [f"{flavor['worker']}-{i:04d}" for i in range(spec.workers)]
    worker_tids = [_COORD_TID + 1 + i for i in range(spec.workers)]
    private_locations = [
        (3_000_000 + i, flavor["private_key"].format(worker=i))
        for i in range(spec.workers)
    ]

    planted: List[Dict[str, object]] = []
    ordered: List[Dict[str, object]] = []

    for phase in range(spec.phases):
        rng = random.Random(f"{seed}:{system}:{spec.preset}:{phase}")
        cast = sorted(rng.sample(range(spec.workers), spec.chain_len + spec.racers))
        picks = rng.sample(cast, len(cast))
        chain = sorted(picks[: spec.chain_len])
        racers = sorted(picks[spec.chain_len :])
        plant = phase % spec.race_every == 0
        race_key = flavor["race_key"].format(phase=phase)
        chain_key = flavor["chain_key"].format(phase=phase)
        race_loc = (1_000_000 + phase, race_key)
        chain_loc = (2_000_000 + phase, chain_key)

        # Phase open: coordinator starts every worker.
        for w in range(spec.workers):
            emitter.emit(
                coord,
                _COORD_TID,
                OpKind.SOCK_SEND,
                f"ph/{phase}/start/{w}",
                "phase_start",
            )

        race_accesses: List[Tuple[int, OpKind, str]] = []
        chain_writes: List[int] = []
        for w in range(spec.workers):
            node = worker_nodes[w]
            tid = worker_tids[w]
            emitter.emit(
                node,
                tid,
                OpKind.SOCK_RECV,
                f"ph/{phase}/start/{w}",
                "phase_recv",
                extra={"src": coord},
            )
            for op in range(spec.local_ops):
                write = op == 0 or rng.random() < 0.5
                emitter.emit(
                    node,
                    tid,
                    OpKind.MEM_WRITE if write else OpKind.MEM_READ,
                    private_locations[w][1],
                    "local_write" if write else "local_read",
                    location=private_locations[w],
                )
            if w in chain:
                pos = chain.index(w)
                if pos > 0:
                    emitter.emit(
                        node,
                        tid,
                        OpKind.SOCK_RECV,
                        f"ph/{phase}/tok/{pos}",
                        "token_recv",
                        extra={"src": worker_nodes[chain[pos - 1]]},
                    )
                chain_writes.append(
                    emitter.emit(
                        node,
                        tid,
                        OpKind.MEM_WRITE,
                        chain_key,
                        "chain_write",
                        location=chain_loc,
                    )
                )
                if pos < len(chain) - 1:
                    emitter.emit(
                        node,
                        tid,
                        OpKind.SOCK_SEND,
                        f"ph/{phase}/tok/{pos + 1}",
                        "token_send",
                    )
            if plant and w in racers:
                write = w == racers[0] or rng.random() < 0.5
                kind = OpKind.MEM_WRITE if write else OpKind.MEM_READ
                seq = emitter.emit(
                    node,
                    tid,
                    kind,
                    race_key,
                    "race_write" if write else "race_read",
                    location=race_loc,
                )
                race_accesses.append((seq, kind, node))
            emitter.emit(
                node,
                tid,
                OpKind.SOCK_SEND,
                f"ph/{phase}/done/{w}",
                "phase_done",
            )

        # Phase close: the coordinator's barrier.
        for w in range(spec.workers):
            emitter.emit(
                coord,
                _COORD_TID,
                OpKind.SOCK_RECV,
                f"ph/{phase}/done/{w}",
                "collect",
                extra={"src": worker_nodes[w]},
            )

        for i in range(len(race_accesses)):
            for j in range(i + 1, len(race_accesses)):
                first, second = race_accesses[i], race_accesses[j]
                if first[1] is OpKind.MEM_WRITE or second[1] is OpKind.MEM_WRITE:
                    planted.append(
                        {
                            "phase": phase,
                            "location": [race_loc[0], race_loc[1]],
                            "first_seq": first[0],
                            "second_seq": second[0],
                            "first_kind": first[1].value,
                            "second_kind": second[1].value,
                            "first_node": first[2],
                            "second_node": second[2],
                        }
                    )
        for a, b in zip(chain_writes, chain_writes[1:]):
            ordered.append(
                {
                    "phase": phase,
                    "location": [chain_loc[0], chain_loc[1]],
                    "first_seq": a,
                    "second_seq": b,
                }
            )

    streams = emitter.close()
    result = GeneratedWorkload(
        system=system,
        preset=spec.preset,
        seed=seed,
        out_dir=out_dir,
        wal_dir=wal_dir,
        ground_truth_path=os.path.join(out_dir, "ground_truth.json"),
        spec=spec,
        records=emitter.seq,
        hb_records=emitter.hb_records,
        mem_records=emitter.mem_records,
        streams=streams,
        planted_races=planted,
        ordered_pairs=ordered,
    )
    payload = json.dumps(result.manifest(), sort_keys=True, indent=2)
    with open(result.ground_truth_path, "w", encoding="utf-8") as fh:
        fh.write(payload + "\n")
    return result


def load_ground_truth(path: str) -> Dict[str, object]:
    """Load and validate a ``ground_truth.json`` manifest."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != GROUND_TRUTH_FORMAT:
        raise ValueError(f"{path}: not a {GROUND_TRUTH_FORMAT} file")
    if doc.get("version") != GROUND_TRUTH_VERSION:
        raise ValueError(
            f"{path}: ground truth version {doc.get('version')!r} "
            f"unsupported (expected {GROUND_TRUTH_VERSION})"
        )
    return doc
