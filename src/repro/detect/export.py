"""Bug-report serialization: save/load DCatch findings as JSON."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.detect.report import BugReport, ReportSet, Verdict
from repro.trace.records import record_from_dict, record_to_dict


def report_to_dict(report: BugReport) -> Dict[str, Any]:
    return {
        "report_id": report.report_id,
        "verdict": report.verdict.value,
        "verdict_detail": report.verdict_detail,
        "confidence": report.confidence,
        "dynamic_instances": report.dynamic_instances,
        "candidates": [
            {
                "first": record_to_dict(c.first),
                "second": record_to_dict(c.second),
            }
            for c in report.candidates
        ],
    }


def report_from_dict(data: Dict[str, Any]) -> BugReport:
    from repro.detect.races import Candidate

    candidates = [
        Candidate(
            first=record_from_dict(c["first"]),
            second=record_from_dict(c["second"]),
        )
        for c in data["candidates"]
    ]
    report = BugReport(report_id=data["report_id"], candidates=candidates)
    report.verdict = Verdict(data["verdict"])
    report.verdict_detail = data.get("verdict_detail", "")
    report.confidence = data.get("confidence", "full")
    return report


def dump_reports(reports: ReportSet) -> str:
    """JSON-encode a report set (stable, human-diffable)."""
    return json.dumps(
        {"reports": [report_to_dict(r) for r in reports]},
        indent=2,
        sort_keys=True,
    )


def load_reports(text: str) -> ReportSet:
    data = json.loads(text)
    return ReportSet([report_from_dict(r) for r in data["reports"]])


def save_reports(reports: ReportSet, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dump_reports(reports))


def load_reports_file(path: str) -> ReportSet:
    with open(path) as fh:
        return load_reports(fh.read())
