"""Bug-report serialization: save/load DCatch findings as JSON.

Schema history:

* **version 1** (implicit — no ``format``/``version`` keys): a bare
  ``{"reports": [...]}`` document; reports carry no soundness tier.
* **version 2**: adds ``format``/``version`` headers and a per-report
  ``soundness`` tier (``repro.detect.report.SOUNDNESS_TIERS``); the
  ``confidence`` field gained a third value, ``"sampled"``, for reports
  from deliberately-thinned traces (``repro.trace.sampling``) — an
  additive change, so the version stays 2.

``load_reports`` accepts both: version-1 documents load with every
report at the ``hb-predicted`` tier (which is exactly what they were —
pre-SP exports had no sound evidence recorded).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.detect.report import (
    CONFIDENCE_LEVELS,
    SOUNDNESS_TIERS,
    BugReport,
    ReportSet,
    Verdict,
)
from repro.errors import TraceFormatError
from repro.trace.records import record_from_dict, record_to_dict

REPORTS_FORMAT = "repro-reports"
REPORTS_SCHEMA_VERSION = 2


def report_to_dict(report: BugReport) -> Dict[str, Any]:
    return {
        "report_id": report.report_id,
        "verdict": report.verdict.value,
        "verdict_detail": report.verdict_detail,
        "confidence": report.confidence,
        "soundness": report.soundness,
        "dynamic_instances": report.dynamic_instances,
        "candidates": [
            {
                "first": record_to_dict(c.first),
                "second": record_to_dict(c.second),
            }
            for c in report.candidates
        ],
    }


def report_from_dict(data: Dict[str, Any]) -> BugReport:
    from repro.detect.races import Candidate

    candidates = [
        Candidate(
            first=record_from_dict(c["first"]),
            second=record_from_dict(c["second"]),
        )
        for c in data["candidates"]
    ]
    report = BugReport(report_id=data["report_id"], candidates=candidates)
    report.verdict = Verdict(data["verdict"])
    report.verdict_detail = data.get("verdict_detail", "")
    confidence = data.get("confidence", "full")
    if confidence not in CONFIDENCE_LEVELS:
        raise TraceFormatError(
            f"unknown report confidence {confidence!r}; "
            f"expected one of {CONFIDENCE_LEVELS}"
        )
    report.confidence = confidence
    soundness = data.get("soundness", "hb-predicted")
    if soundness not in SOUNDNESS_TIERS:
        raise TraceFormatError(
            f"unknown report soundness tier {soundness!r}; "
            f"expected one of {SOUNDNESS_TIERS}"
        )
    report.soundness = soundness
    return report


def dump_reports(reports: ReportSet) -> str:
    """JSON-encode a report set (stable, human-diffable)."""
    return json.dumps(
        {
            "format": REPORTS_FORMAT,
            "version": REPORTS_SCHEMA_VERSION,
            "reports": [report_to_dict(r) for r in reports],
        },
        indent=2,
        sort_keys=True,
    )


def load_reports(text: str) -> ReportSet:
    data = json.loads(text)
    if "format" in data and data["format"] != REPORTS_FORMAT:
        raise TraceFormatError(
            f"not a {REPORTS_FORMAT} document (format {data['format']!r})"
        )
    version = data.get("version", 1)
    if version not in (1, REPORTS_SCHEMA_VERSION):
        raise TraceFormatError(
            f"unsupported report schema version {version!r} "
            f"(this reader understands 1..{REPORTS_SCHEMA_VERSION})"
        )
    return ReportSet([report_from_dict(r) for r in data["reports"]])


def save_reports(reports: ReportSet, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(dump_reports(reports))


def load_reports_file(path: str) -> ReportSet:
    with open(path) as fh:
        return load_reports(fh.read())
