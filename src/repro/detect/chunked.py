"""Chunked trace analysis: the paper's out-of-memory fallback.

Section 7.2 (false-negative discussion): "DCatch may not process
extremely large traces ... DCatch will need to chunk the traces and
conduct detection within each chunk, an approach used by previous LCbug
detection tools."

``detect_races_chunked`` splits the trace into fixed-size windows and
runs full detection inside each.  Consequences, both documented by the
LCbug literature the paper cites:

* memory drops from O(n²) to O(c²) per chunk;
* pairs that *span* chunks are missed (false negatives) — racing
  accesses usually execute close together in time, so the loss is small;
* HB edges that span chunks are also missed, which can make intra-chunk
  pairs spuriously concurrent (false positives).  A modest overlap
  between consecutive chunks softens both effects.

Chunks are fully independent (each builds its own graph), so they also
parallelize: ``workers=N`` fans the chunks out over a process pool and
merges the per-chunk candidate sets in chunk order, producing exactly
the serial result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.detect.races import Candidate, DetectionResult, detect_races
from repro.errors import TraceAnalysisOOM
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.ops import Location
from repro.trace.store import Trace


@dataclass
class ChunkedDetectionResult:
    """Union of per-chunk detections."""

    trace: Trace
    chunk_size: int
    overlap: int
    chunks: int
    candidates: List[Candidate]
    analysis_seconds: float
    per_chunk_counts: List[int] = field(default_factory=list)
    #: Locations truncated by ``max_pairs_per_location`` in any chunk.
    truncated_locations: List[Location] = field(default_factory=list)
    #: Worker processes used (1 = serial, in-process).
    workers: int = 1

    def static_count(self) -> int:
        return len({c.static_pair for c in self.candidates})

    def callstack_count(self) -> int:
        return len({c.callstack_pair for c in self.candidates})


def chunk_trace(trace: Trace, chunk_size: int, overlap: int = 0) -> List[Trace]:
    """Split a trace into windows of ``chunk_size`` records, each window
    extended backward by ``overlap`` records."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if overlap < 0 or overlap >= chunk_size:
        raise ValueError("overlap must be in [0, chunk_size)")
    chunks: List[Trace] = []
    records = trace.records
    start = 0
    index = 0
    while start < len(records):
        lo = max(0, start - overlap)
        window = records[lo:start + chunk_size]
        chunk = Trace(name=f"{trace.name}-chunk{index}")
        for record in window:
            chunk.append(record)
        chunks.append(chunk)
        start += chunk_size
        index += 1
    return chunks


def detect_races_chunked(
    trace: Trace,
    chunk_size: Optional[int] = None,
    overlap: Optional[int] = None,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    compress_mem: bool = True,
    reach_backend: str = "bitset",
    max_pairs_per_location: int = 200_000,
    workers: Optional[int] = None,
) -> ChunkedDetectionResult:
    """Run detection chunk by chunk and merge the candidate sets.

    ``workers`` runs chunks in a process pool (``None``/``1`` = serial,
    ``0`` = one per CPU); the merged candidate set is identical for any
    worker count.  When ``chunk_size`` is omitted the geometry is
    derived from the trace size and the resolved worker count
    (``derive_chunk_geometry``) instead of a fixed fan-out; an explicit
    ``chunk_size`` with no ``overlap`` gets the derived overlap
    fraction.
    """
    from repro.detect.parallel import (
        derive_chunk_geometry,
        resolve_workers,
        run_chunks,
    )

    started = time.perf_counter()
    seen: Dict[tuple, Candidate] = {}
    per_chunk: List[int] = []
    truncated: Dict[Location, None] = {}  # ordered, deduplicated
    resolved_workers = resolve_workers(workers, records=len(trace.records))
    if chunk_size is None:
        chunk_size, derived_overlap = derive_chunk_geometry(
            len(trace.records), resolved_workers
        )
        if overlap is None:
            overlap = derived_overlap
    elif overlap is None:
        overlap = max(0, min(chunk_size - 1, chunk_size // 10))
    chunks = chunk_trace(trace, chunk_size, overlap)
    effective_workers = min(resolved_workers, max(1, len(chunks)))
    with obs.span(
        "detect.chunked",
        chunks=len(chunks),
        chunk_size=chunk_size,
        workers=effective_workers,
    ):
        obs.counter(
            "detect_chunks_total", "trace chunks analyzed independently"
        ).inc(len(chunks))
        obs.gauge(
            "detect_chunk_workers", "processes used by the last chunked run"
        ).set(effective_workers)
        if effective_workers > 1:
            by_seq = {r.seq: r for r in trace.records}
            chunk_results = run_chunks(
                chunks,
                model,
                memory_budget,
                compress_mem,
                reach_backend,
                max_pairs_per_location,
                effective_workers,
            )
            for seq_pairs, _pairs, chunk_truncated in chunk_results:
                per_chunk.append(len(seq_pairs))
                for location in chunk_truncated:
                    truncated.setdefault(location)
                for first_seq, second_seq in seq_pairs:
                    seen.setdefault(
                        (first_seq, second_seq),
                        Candidate(by_seq[first_seq], by_seq[second_seq]),
                    )
        else:
            for chunk in chunks:
                graph = HBGraph(
                    chunk,
                    model=model,
                    memory_budget=memory_budget,
                    compress_mem=compress_mem,
                    reach_backend=reach_backend,
                )
                detection = detect_races(
                    chunk,
                    model=model,
                    memory_budget=memory_budget,
                    graph=graph,
                    max_pairs_per_location=max_pairs_per_location,
                )
                per_chunk.append(len(detection.candidates))
                for location in detection.truncated_locations:
                    truncated.setdefault(location)
                for candidate in detection.candidates:
                    key = (candidate.first.seq, candidate.second.seq)
                    seen.setdefault(key, candidate)
    return ChunkedDetectionResult(
        trace=trace,
        chunk_size=chunk_size,
        overlap=overlap,
        chunks=len(chunks),
        candidates=list(seen.values()),
        analysis_seconds=time.perf_counter() - started,
        per_chunk_counts=per_chunk,
        truncated_locations=list(truncated),
        workers=effective_workers,
    )
