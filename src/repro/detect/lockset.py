"""Lockset annotation: an LCbug-style extension.

The DCatch HB model deliberately excludes locks — "lock provides mutual
exclusion, not strict ordering" (paper Section 2.3) — so lock-protected
conflicting accesses are still reported as candidates (the two orders of
the critical sections can both happen).  Classic LCbug race detectors
(Eraser-style) would instead *filter* pairs that share a lock.

This module computes locksets from the trace so that callers can:

* annotate candidates with the locks common to both sides (useful when
  reading reports: a common lock means no atomicity bug *within* one
  critical section, but the order of the sections is still free);
* optionally filter common-lock pairs, reproducing what an LCbug
  detector would do — an ablation target, not the default.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.detect.races import Candidate
from repro.runtime.ops import OpEvent, OpKind
from repro.trace.store import Trace


class LocksetIndex:
    """Locks held at every traced operation, per thread."""

    def __init__(self, trace: Trace) -> None:
        self._held_at: Dict[int, FrozenSet[object]] = {}
        held: Dict[int, Dict[object, int]] = defaultdict(dict)
        for record in trace.records:
            if record.kind is OpKind.LOCK_ACQUIRE:
                depths = held[record.tid]
                depths[record.obj_id] = depths.get(record.obj_id, 0) + 1
            elif record.kind is OpKind.LOCK_RELEASE:
                depths = held[record.tid]
                if depths.get(record.obj_id, 0) <= 1:
                    depths.pop(record.obj_id, None)
                else:
                    depths[record.obj_id] -= 1
            else:
                self._held_at[record.seq] = frozenset(held[record.tid])

    def held_at(self, record: OpEvent) -> FrozenSet[object]:
        return self._held_at.get(record.seq, frozenset())

    def common_locks(self, candidate: Candidate) -> FrozenSet[object]:
        return self.held_at(candidate.first) & self.held_at(candidate.second)


@dataclass
class LocksetSplit:
    """Candidates partitioned by whether a common lock protects them."""

    unprotected: List[Candidate]
    lock_protected: List[Tuple[Candidate, FrozenSet[object]]]


def split_by_lockset(trace: Trace, candidates: List[Candidate]) -> LocksetSplit:
    index = LocksetIndex(trace)
    unprotected: List[Candidate] = []
    protected: List[Tuple[Candidate, FrozenSet[object]]] = []
    for candidate in candidates:
        common = index.common_locks(candidate)
        if common:
            protected.append((candidate, common))
        else:
            unprotected.append(candidate)
    return LocksetSplit(unprotected=unprotected, lock_protected=protected)
