"""Single-pass streaming race detection over WAL segments.

The batch path loads the whole trace, builds an HB graph and a
reachability closure, then enumerates pairs.  ``detect_races_streaming``
instead consumes records *once*, in global ``seq`` order, holding only:

* the incremental HB state (:class:`repro.hb.incremental.StreamingHBState`
  — sparse per-segment clocks, pending source snapshots);
* per-location **active access sets** — accesses that could still pair
  with a future record.  Every ``window`` records a compaction step
  computes the HB frontier, retires accesses no future record can be
  concurrent with, and prunes clock entries below the frontier.

Memory therefore tracks the *concurrency width* of the trace, not its
length, and the window size trades compaction frequency against peak
memory without ever changing the candidate set (equivalence with batch
detection is property-tested for every window size).

Input is either a WAL directory (segments are parsed incrementally and
merged by ``seq`` across streams; damage truncates the damaged stream
and degrades ``confidence`` to ``"partial"``, matching salvage
semantics) or any in-memory iterable of records (the pipeline's
``detect_mode="streaming"``).  Progress checkpoints — the stream offset
plus the HB state — make a million-record pass resumable the same way
PR-5 made the batch stages resumable.
"""

from __future__ import annotations

import heapq
import json
import os
import time
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro import obs
from repro.analysis.governor import StageBudget, maybe_stall, process_rss_mb
from repro.detect.races import Candidate, DetectionResult
from repro.errors import CheckpointError, TraceFormatError
from repro.hb.incremental import StreamingHBState
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.ops import OpEvent
from repro.trace.records import (
    _jsonable,
    _untuple,
    record_from_dict,
    record_to_dict,
)
from repro.trace.store import Trace

__all__ = [
    "DEFAULT_WINDOW",
    "STREAM_CHECKPOINT_FORMAT",
    "STREAM_CHECKPOINT_VERSION",
    "StreamResult",
    "StreamingDetector",
    "detect_races_streaming",
    "iter_wal_records",
    "load_stream_checkpoint",
    "save_stream_checkpoint",
    "stream_fingerprint",
]

#: Records between compaction (frontier + retirement) passes.  Purely a
#: memory/CPU cadence knob: the candidate set is identical for every
#: window size.
DEFAULT_WINDOW = 8192

STREAM_CHECKPOINT_FORMAT = "repro-stream-checkpoint"
STREAM_CHECKPOINT_VERSION = 1

_METRIC_RECORDS = "stream_records_total"
_METRIC_EVICTIONS = "stream_window_evictions_total"
_METRIC_COMPACTIONS = "stream_compactions_total"
_METRIC_RSS = "stream_rss_high_water_mb"
_METRIC_ACTIVE = "stream_active_accesses"


@dataclass
class StreamResult:
    """Outcome of one streaming pass."""

    candidates: List[Candidate]
    records_consumed: int
    analysis_seconds: float
    pairs_examined: int
    evictions: int
    compactions: int
    active_high_water: int
    rss_high_water_mb: float
    stopped_early: bool
    confidence: str
    model: str
    window: int
    streams_seen: int
    unmatched: Dict[str, int] = field(default_factory=dict)
    damage: Dict[str, int] = field(default_factory=dict)
    #: Records dropped by the sampling filter, by record kind (empty
    #: when no sampler was attached).
    sampled_dropped: Dict[str, int] = field(default_factory=dict)
    #: Record offset the pass resumed from (0 = started fresh) — lets
    #: callers assert already-retired windows were not reprocessed.
    resumed_at: int = 0

    @property
    def records_per_second(self) -> float:
        if self.analysis_seconds <= 0:
            return 0.0
        return self.records_consumed / self.analysis_seconds

    def candidate_seq_pairs(self) -> List[Tuple[int, int]]:
        return [(c.first.seq, c.second.seq) for c in self.candidates]

    def to_detection(self, trace: Trace) -> DetectionResult:
        """Adapt to the batch result type (``graph=None``: downstream
        stages that want reachability rebuild it on demand)."""
        return DetectionResult(
            trace=trace,
            graph=None,
            candidates=list(self.candidates),
            analysis_seconds=self.analysis_seconds,
            pairs_examined=self.pairs_examined,
            truncated_locations=[],
            workers=1,
            stopped_early=self.stopped_early,
            auto_decision=None,
            confidence=self.confidence,
        )


class StreamingDetector:
    """Incremental detector: feed records in seq order, then finish()."""

    def __init__(
        self,
        model: HBModel = FULL_MODEL,
        window: int = DEFAULT_WINDOW,
        expected_streams: Optional[Iterable[int]] = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1 (got {window})")
        self.window = window
        self.state = StreamingHBState(model, expected_streams=expected_streams)
        #: location -> [(segment, count, record), ...] still able to race.
        self._active: Dict[Tuple[int, str], List[Tuple[int, int, OpEvent]]] = {}
        self._active_size = 0
        self.candidates: List[Candidate] = []
        self.records_consumed = 0
        self.pairs_examined = 0
        self.evictions = 0
        self.compactions = 0
        self.active_high_water = 0
        self._candidates_metric = obs.counter(
            "detect_candidates_total", "Candidate pairs found"
        )
        self._records_metric = obs.counter(
            _METRIC_RECORDS, "Records consumed by the streaming detector"
        )
        self._evictions_metric = obs.counter(
            _METRIC_EVICTIONS, "Active accesses retired at window compaction"
        )
        self._compactions_metric = obs.counter(
            _METRIC_COMPACTIONS, "Streaming compaction passes"
        )
        self._active_gauge = obs.gauge(
            _METRIC_ACTIVE, "Active (unretired) accesses held in memory"
        )

    def feed(self, event: OpEvent) -> None:
        """Consume the next record (must arrive in global seq order)."""
        seg, count = self.state.observe(event)
        if event.is_mem and event.location is not None:
            accesses = self._active.get(event.location)
            if accesses is None:
                accesses = []
                self._active[event.location] = accesses
            event_is_write = event.is_write
            for a_seg, a_count, a_event in accesses:
                if not (event_is_write or a_event.is_write):
                    continue
                if a_seg == seg:
                    continue  # program order
                self.pairs_examined += 1
                if not self.state.ordered_before(a_seg, a_count, seg):
                    self.candidates.append(Candidate(a_event, event))
                    self._candidates_metric.inc()
            accesses.append((seg, count, event))
            self._active_size += 1
            if self._active_size > self.active_high_water:
                self.active_high_water = self._active_size
        self.records_consumed += 1
        self._records_metric.inc()
        if self.records_consumed % self.window == 0:
            self.compact()

    def close_stream(self, tid: int) -> None:
        self.state.close_stream(tid)

    def compact(self) -> int:
        """Retire accesses behind the HB frontier; prune clock entries.
        Returns the number of accesses retired."""
        segments = {
            a_seg
            for accesses in self._active.values()
            for (a_seg, _, _) in accesses
        }
        if not segments:
            self.compactions += 1
            self._compactions_metric.inc()
            return 0
        frontier = self.state.frontier(segments)
        retired = 0
        for location in list(self._active):
            accesses = self._active[location]
            kept = [
                entry
                for entry in accesses
                if entry[1] > frontier.get(entry[0], 0)
            ]
            retired += len(accesses) - len(kept)
            if kept:
                self._active[location] = kept
            else:
                del self._active[location]
        self._active_size -= retired
        self.state.prune(frontier)
        self.evictions += retired
        self.compactions += 1
        self._evictions_metric.inc(retired)
        self._compactions_metric.inc()
        self._active_gauge.set(self._active_size)
        return retired

    def finish(self) -> None:
        """Final compaction; candidates are then stable and sorted."""
        self.compact()
        self.candidates.sort(key=lambda c: (c.first.seq, c.second.seq))

    # -- checkpointing -----------------------------------------------------

    def to_snapshot(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "state": self.state.to_snapshot(),
            "active": [
                [
                    _jsonable(location),
                    [
                        [seg, count, record_to_dict(event)]
                        for seg, count, event in accesses
                    ],
                ]
                for location, accesses in self._active.items()
            ],
            "candidates": [
                [record_to_dict(c.first), record_to_dict(c.second)]
                for c in self.candidates
            ],
            "records_consumed": self.records_consumed,
            "pairs_examined": self.pairs_examined,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "active_high_water": self.active_high_water,
        }

    @classmethod
    def from_snapshot(
        cls, snapshot: Dict[str, object], model: HBModel = FULL_MODEL
    ) -> "StreamingDetector":
        self = cls(model=model, window=int(snapshot["window"]))
        self.state = StreamingHBState.from_snapshot(snapshot["state"], model)
        self._active = {}
        self._active_size = 0
        for location, accesses in snapshot["active"]:
            entries = [
                (seg, count, record_from_dict(record))
                for seg, count, record in accesses
            ]
            self._active[_untuple(location)] = entries
            self._active_size += len(entries)
        self.candidates = [
            Candidate(record_from_dict(first), record_from_dict(second))
            for first, second in snapshot["candidates"]
        ]
        self.records_consumed = int(snapshot["records_consumed"])
        self.pairs_examined = int(snapshot["pairs_examined"])
        self.evictions = int(snapshot["evictions"])
        self.compactions = int(snapshot["compactions"])
        self.active_high_water = int(snapshot["active_high_water"])
        return self


# -- WAL segment streaming -------------------------------------------------


class _WalStreamReader:
    """Lazily parse one stream's sealed segments in order.

    Any damage — torn/CRC-bad/malformed record, unsealed or missing
    segment — truncates the stream at the damage point and is counted,
    mirroring salvage's taxonomy without holding the file set in memory.
    """

    def __init__(self, directory: str, node: str, tid: int, damage: Counter):
        self.node = node
        self.tid = tid
        self.directory = directory
        self.damage = damage
        self.damaged = False

    def _segment_paths(self) -> Iterator[str]:
        indexed = []
        for filename in os.listdir(self.directory):
            if filename.startswith("seg-") and filename.endswith(".wal"):
                try:
                    indexed.append((int(filename[4:-4]), filename))
                except ValueError:
                    continue
        expected = 0
        for index, filename in sorted(indexed):
            if index != expected:
                self.damage["missing_segments"] += 1
                self.damaged = True
                return
            expected = index + 1
            yield os.path.join(self.directory, filename)

    def __iter__(self) -> Iterator[OpEvent]:
        for path in self._segment_paths():
            sealed = False
            with open(path, "rb") as fh:
                for raw in fh:
                    torn = not raw.endswith(b"\n")
                    line = raw.rstrip(b"\n")
                    if line.startswith(b"H "):
                        continue
                    if line.startswith(b"R "):
                        head, payload = line[:20], line[20:]
                        try:
                            length = int(head[2:10], 16)
                            crc = int(head[11:19], 16)
                        except ValueError:
                            length = crc = -1
                        if (
                            torn
                            or length != len(payload)
                            or zlib.crc32(payload) & 0xFFFFFFFF != crc
                        ):
                            self.damage["damaged_records"] += 1
                            self.damaged = True
                            return
                        try:
                            yield record_from_dict(json.loads(payload))
                        except (ValueError, KeyError, TypeError):
                            self.damage["damaged_records"] += 1
                            self.damaged = True
                            return
                    elif line.startswith(b"S ") and not torn:
                        sealed = True
                    elif line:
                        self.damage["damaged_records"] += 1
                        self.damaged = True
                        return
            if not sealed:
                self.damage["unsealed_segments"] += 1
                self.damaged = True
                return


def _wal_stream_readers(
    wal_dir: str, damage: Counter
) -> List[_WalStreamReader]:
    if not os.path.isdir(wal_dir):
        raise TraceFormatError(f"not a WAL directory: {wal_dir}")
    readers: List[_WalStreamReader] = []
    for node in sorted(os.listdir(wal_dir)):
        node_dir = os.path.join(wal_dir, node)
        if not os.path.isdir(node_dir):
            continue
        for entry in sorted(os.listdir(node_dir)):
            thread_dir = os.path.join(node_dir, entry)
            if not os.path.isdir(thread_dir) or not entry.startswith("thread-"):
                continue
            try:
                tid = int(entry[len("thread-") :])
            except ValueError:
                continue
            readers.append(_WalStreamReader(thread_dir, node, tid, damage))
    if not readers:
        raise TraceFormatError(f"no WAL streams under {wal_dir}")
    return readers


def iter_wal_records(
    wal_dir: str,
    damage: Optional[Counter] = None,
    on_stream_end: Optional[Callable[[int], None]] = None,
) -> Iterator[OpEvent]:
    """Merge a WAL directory's streams into one seq-ordered record
    stream, reading segments incrementally.  ``on_stream_end`` fires
    with the stream's tid the moment it is exhausted (that is what lets
    the detector release the stream's HB state)."""
    damage = damage if damage is not None else Counter()
    readers = _wal_stream_readers(wal_dir, damage)
    heap: List[Tuple[int, int, OpEvent, Iterator[OpEvent]]] = []
    for index, reader in enumerate(readers):
        iterator = iter(reader)
        first = next(iterator, None)
        if first is None:
            if on_stream_end is not None:
                on_stream_end(reader.tid)
            continue
        heap.append((first.seq, index, first, iterator))
    heapq.heapify(heap)
    tids = [reader.tid for reader in readers]
    while heap:
        seq, index, event, iterator = heapq.heappop(heap)
        yield event
        following = next(iterator, None)
        if following is None:
            if on_stream_end is not None:
                on_stream_end(tids[index])
        else:
            heapq.heappush(heap, (following.seq, index, following, iterator))


def wal_stream_tids(wal_dir: str) -> List[int]:
    """The stream (tid) set of a WAL directory, discovered upfront."""
    return [reader.tid for reader in _wal_stream_readers(wal_dir, Counter())]


# -- checkpoint files ------------------------------------------------------


def _save_stream_checkpoint(
    path: str,
    detector: StreamingDetector,
    fingerprint: str,
    extra: Optional[Dict[str, object]] = None,
) -> None:
    doc: Dict[str, object] = {
        "format": STREAM_CHECKPOINT_FORMAT,
        "version": STREAM_CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "snapshot": detector.to_snapshot(),
    }
    if extra:
        # Caller-owned sidecar state (the detection service stores its
        # raw-merge watermark here so sampled tenants resume correctly).
        doc["extra"] = extra
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    framed = b"%08x %s" % (zlib.crc32(payload) & 0xFFFFFFFF, payload)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(framed)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_stream_checkpoint(path: str) -> Dict[str, object]:
    """Load and CRC-verify a streaming checkpoint file."""
    with open(path, "rb") as fh:
        framed = fh.read()
    try:
        crc = int(framed[:8], 16)
        payload = framed[9:]
    except ValueError:
        raise CheckpointError(f"{path}: unparseable stream checkpoint framing")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointError(f"{path}: stream checkpoint CRC mismatch")
    doc = json.loads(payload)
    if doc.get("format") != STREAM_CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path}: not a {STREAM_CHECKPOINT_FORMAT} file")
    if doc.get("version") != STREAM_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: stream checkpoint version {doc.get('version')!r} "
            f"unsupported (expected {STREAM_CHECKPOINT_VERSION})"
        )
    return doc


def _stream_fingerprint(
    model: HBModel, window: int, source: str, sampler: Optional[object] = None
) -> str:
    base = f"{model.describe()}|window={window}|source={source}"
    if sampler is not None:
        # Resuming a sampled pass under a different policy/seed would
        # silently change which records the detector ever saw.
        base += f"|sampling={sampler.describe()}"
    return base


# Public aliases: the detection service checkpoints per-tenant detectors
# with the same CRC-framed format the offline ``stream`` pass uses.
save_stream_checkpoint = _save_stream_checkpoint
stream_fingerprint = _stream_fingerprint


def _sampled_stream(stream, sampler):
    """Apply a ``repro.trace.sampling.Sampler`` to a record stream.

    Pure filter: HB/lock records always pass, memory accesses pass when
    the policy admits them.  Reservoir *evictions* cannot be honoured
    here — an already-fed record is part of the detector state — so a
    reservoir policy degrades to admit-only in streaming mode (first-K
    plus probabilistic later admits).  Decisions are deterministic in
    ``(policy, seed)``, which is what makes checkpoint resume (which
    replays the raw stream through the same sampler) reproducible.
    """
    for event in stream:
        keep, _evictions = sampler.observe(event)
        if keep:
            yield event


# -- driver ----------------------------------------------------------------


def detect_races_streaming(
    records: Optional[Iterable[OpEvent]] = None,
    wal_dir: Optional[str] = None,
    model: HBModel = FULL_MODEL,
    window: int = DEFAULT_WINDOW,
    expected_streams: Optional[Iterable[int]] = None,
    max_seconds: Optional[float] = None,
    memory_budget_mb: Optional[int] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: int = 8,
    resume: bool = False,
    sampler: Optional[object] = None,
) -> StreamResult:
    """One single-pass streaming detection run.

    Exactly one of ``records`` (an in-memory seq-ordered iterable) or
    ``wal_dir`` (a PR-4 WAL directory, parsed incrementally) must be
    given.  ``max_seconds``/``should_stop`` stop the pass early
    (``stopped_early=True``, candidates found so far are kept);
    ``memory_budget_mb`` forces an extra compaction whenever process
    RSS crosses 90% of the budget — the detector degrades by compacting
    harder, never by abandoning.  ``checkpoint_path`` (with
    ``checkpoint_every`` windows between saves) makes the pass
    resumable via ``resume=True``.  ``sampler`` (a
    ``repro.trace.sampling.Sampler``) thins the memory-access stream
    before it reaches the detector — the streaming analog of sampled
    tracing; results then carry ``confidence="sampled"``.
    """
    if (records is None) == (wal_dir is None):
        raise ValueError("pass exactly one of records= or wal_dir=")

    damage: Counter = Counter()
    detector: Optional[StreamingDetector] = None
    source = os.path.abspath(wal_dir) if wal_dir is not None else "<records>"
    fingerprint = _stream_fingerprint(model, window, source, sampler)
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume=True requires checkpoint_path")
        if os.path.exists(checkpoint_path):
            doc = load_stream_checkpoint(checkpoint_path)
            if doc.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"{checkpoint_path}: checkpoint was written for a "
                    "different source/model/window; refusing to resume "
                    "(delete it to start over)"
                )
            detector = StreamingDetector.from_snapshot(doc["snapshot"], model)

    if detector is None:
        if wal_dir is not None and expected_streams is None:
            expected_streams = wal_stream_tids(wal_dir)
        detector = StreamingDetector(
            model=model, window=window, expected_streams=expected_streams
        )
    resumed_at = detector.records_consumed
    skip = detector.records_consumed

    if wal_dir is not None:
        stream = iter_wal_records(
            wal_dir, damage=damage, on_stream_end=detector.close_stream
        )
    else:
        stream = iter(records)
    if sampler is not None:
        stream = _sampled_stream(stream, sampler)

    budget = StageBudget("stream", time.perf_counter(), max_seconds)
    rss_gauge = obs.gauge(_METRIC_RSS, "Streaming detector RSS high water")
    rss_high = process_rss_mb()
    pressure_threshold = (
        memory_budget_mb * 0.9 if memory_budget_mb is not None else None
    )
    stopped_early = False
    started = time.perf_counter()
    windows_since_save = 0
    next_probe = detector.records_consumed + detector.window

    for event in stream:
        if skip > 0:
            skip -= 1
            continue
        detector.feed(event)
        if detector.records_consumed >= next_probe:
            next_probe = detector.records_consumed + detector.window
            maybe_stall("stream_window")
            rss = process_rss_mb()
            if rss > rss_high:
                rss_high = rss
                rss_gauge.set(round(rss_high, 1))
            if pressure_threshold is not None and rss > pressure_threshold:
                detector.compact()
            windows_since_save += 1
            if (
                checkpoint_path is not None
                and windows_since_save >= checkpoint_every
            ):
                _save_stream_checkpoint(checkpoint_path, detector, fingerprint)
                windows_since_save = 0
            if budget.exceeded() or (should_stop is not None and should_stop()):
                stopped_early = True
                break
    if skip > 0:
        raise CheckpointError(
            f"stream ended {skip} records before the checkpoint offset; "
            "the source shrank since the checkpoint was written"
        )

    detector.finish()
    elapsed = time.perf_counter() - started
    rss = process_rss_mb()
    if rss > rss_high:
        rss_high = rss
    rss_gauge.set(round(rss_high, 1))
    if checkpoint_path is not None:
        _save_stream_checkpoint(checkpoint_path, detector, fingerprint)

    state = detector.state
    confidence = "full"
    if damage or state.rootless_segments:
        confidence = "partial"
    if sampler is not None and sampler.can_drop:
        confidence = "sampled"  # deliberate loss wins over accidental
    return StreamResult(
        candidates=detector.candidates,
        records_consumed=detector.records_consumed,
        analysis_seconds=elapsed,
        pairs_examined=detector.pairs_examined,
        evictions=detector.evictions,
        compactions=detector.compactions,
        active_high_water=detector.active_high_water,
        rss_high_water_mb=round(rss_high, 1),
        stopped_early=stopped_early,
        confidence=confidence,
        model=state.model.describe(),
        window=detector.window,
        streams_seen=state.stats()["streams_started"],
        unmatched=dict(state.unmatched),
        damage=dict(damage),
        sampled_dropped=dict(sampler.dropped) if sampler is not None else {},
        resumed_at=resumed_at,
    )
