"""DCbug candidate detection (paper Section 3.2.2).

A candidate is a pair of memory accesses ``(s, t)`` that touch the same
location, with at least one write, and are *concurrent* (no HB path either
way).  Enumeration is per-location; same-segment pairs are skipped up
front (program order always orders them), and the HB graph answers the
rest in constant time per query via bit sets.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, HBModel
from repro.ids import CallStack, Site
from repro.runtime.ops import Location, OpEvent, OpKind
from repro.trace.store import Trace


@dataclass(frozen=True)
class Candidate:
    """One dynamic pair of conflicting concurrent accesses."""

    first: OpEvent
    second: OpEvent

    @property
    def location(self) -> Location:
        return self.first.location

    @property
    def static_pair(self) -> frozenset:
        """Dedup key for the paper's 'static instruction pair' counts."""
        return frozenset((self.first.site, self.second.site))

    @property
    def callstack_pair(self) -> frozenset:
        """Dedup key for the paper's 'callstack pair' counts."""
        return frozenset((self.first.callstack, self.second.callstack))

    @property
    def variable(self) -> str:
        return str(self.first.obj_id)

    def accesses(self) -> Tuple[OpEvent, OpEvent]:
        return (self.first, self.second)

    def __str__(self) -> str:
        return (
            f"{self.variable}[{self.location[1]}]: "
            f"{self.first.kind.value}@{self.first.site} ({self.first.node}) <-> "
            f"{self.second.kind.value}@{self.second.site} ({self.second.node})"
        )


@dataclass
class DetectionResult:
    """Output of trace analysis: the raw candidate list plus statistics."""

    trace: Trace
    graph: HBGraph
    candidates: List[Candidate]
    analysis_seconds: float
    pairs_examined: int

    def static_pairs(self) -> Dict[frozenset, List[Candidate]]:
        grouped: Dict[frozenset, List[Candidate]] = defaultdict(list)
        for candidate in self.candidates:
            grouped[candidate.static_pair].append(candidate)
        return dict(grouped)

    def callstack_pairs(self) -> Dict[frozenset, List[Candidate]]:
        grouped: Dict[frozenset, List[Candidate]] = defaultdict(list)
        for candidate in self.candidates:
            grouped[candidate.callstack_pair].append(candidate)
        return dict(grouped)

    def static_count(self) -> int:
        return len(self.static_pairs())

    def callstack_count(self) -> int:
        return len(self.callstack_pairs())


def detect_races(
    trace: Trace,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    graph: Optional[HBGraph] = None,
    max_pairs_per_location: int = 200_000,
) -> DetectionResult:
    """Run trace analysis: build the HB graph, enumerate candidates."""
    started = time.perf_counter()
    if graph is None:
        graph = HBGraph(trace, model=model, memory_budget=memory_budget)

    by_location: Dict[Location, List[OpEvent]] = defaultdict(list)
    for record in trace.records:
        if record.is_mem and record.location is not None:
            by_location[record.location].append(record)

    candidates: List[Candidate] = []
    examined = 0
    with obs.span("detect.enumerate", locations=len(by_location)):
        for location, accesses in by_location.items():
            writes = [a for a in accesses if a.kind is OpKind.MEM_WRITE]
            if not writes:
                continue
            pairs = 0
            for i, a in enumerate(accesses):
                for b in accesses[i + 1:]:
                    if a.kind is OpKind.MEM_READ and b.kind is OpKind.MEM_READ:
                        continue
                    if a.segment == b.segment:
                        continue  # program order covers these
                    pairs += 1
                    if pairs > max_pairs_per_location:
                        break
                    if graph.concurrent(a, b):
                        candidates.append(Candidate(a, b))
                if pairs > max_pairs_per_location:
                    break
            examined += pairs

    obs.counter("detect_pairs_examined_total", "access pairs HB-checked").inc(
        examined
    )
    obs.counter(
        "detect_candidates_total", "concurrent conflicting pairs found"
    ).inc(len(candidates))
    elapsed = time.perf_counter() - started
    return DetectionResult(
        trace=trace,
        graph=graph,
        candidates=candidates,
        analysis_seconds=elapsed,
        pairs_examined=examined,
    )
