"""DCbug candidate detection (paper Section 3.2.2).

A candidate is a pair of memory accesses ``(s, t)`` that touch the same
location, with at least one write, and are *concurrent* (no HB path either
way).  Enumeration is per-location and segment-grouped: same-segment
pairs (which program order always orders) are excluded wholesale
instead of being skipped one pair at a time, so a location dominated by
one hot handler loop costs O(cross-segment pairs), not O(accesses²).
The HB graph answers the surviving pairs in constant time per query.

Locations are independent, so enumeration can also be sharded across a
process pool (``workers=``); the shards run this module's own
enumeration code and the results are merged in location order, making
the parallel candidate list identical to the serial one.
"""

from __future__ import annotations

import sys
import time
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import obs
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, HBModel
from repro.ids import CallStack, Site
from repro.runtime.ops import Location, OpEvent, OpKind
from repro.trace.store import Trace


@dataclass(frozen=True)
class Candidate:
    """One dynamic pair of conflicting concurrent accesses."""

    first: OpEvent
    second: OpEvent

    @property
    def location(self) -> Location:
        return self.first.location

    @property
    def static_pair(self) -> frozenset:
        """Dedup key for the paper's 'static instruction pair' counts."""
        return frozenset((self.first.site, self.second.site))

    @property
    def callstack_pair(self) -> frozenset:
        """Dedup key for the paper's 'callstack pair' counts."""
        return frozenset((self.first.callstack, self.second.callstack))

    @property
    def variable(self) -> str:
        return str(self.first.obj_id)

    def accesses(self) -> Tuple[OpEvent, OpEvent]:
        return (self.first, self.second)

    def __str__(self) -> str:
        return (
            f"{self.variable}[{self.location[1]}]: "
            f"{self.first.kind.value}@{self.first.site} ({self.first.node}) <-> "
            f"{self.second.kind.value}@{self.second.site} ({self.second.node})"
        )


@dataclass
class DetectionResult:
    """Output of trace analysis: the raw candidate list plus statistics."""

    trace: Trace
    #: None when detection ran in streaming mode (no whole-trace graph
    #: exists); stages that need reachability rebuild one on demand.
    graph: Optional[HBGraph]
    candidates: List[Candidate]
    analysis_seconds: float
    pairs_examined: int
    #: Locations whose pair enumeration hit ``max_pairs_per_location``
    #: and was cut short — their remaining pairs were NOT examined.
    #: Empty means the candidate list is complete.  Never silent: a
    #: non-empty list is also warned about on stderr and counted on the
    #: ``detect_truncated_locations_total`` metric.
    truncated_locations: List[Location] = field(default_factory=list)
    #: Worker processes used for enumeration (1 = in-process serial).
    workers: int = 1
    #: True when enumeration stopped early (wall-clock deadline):
    #: locations after the stop point were never examined.
    stopped_early: bool = False
    #: ``"serial"``/``"parallel"`` when ``workers="auto"`` chose the
    #: path, None when the caller fixed the worker count.
    auto_decision: Optional[str] = None
    #: ``"full"`` when the trace was complete; ``"partial"`` when the HB
    #: graph was built from a damaged/salvaged trace — candidates are
    #: still sound for the records that survived, but pairs involving
    #: lost records are missing and some orderings may be unproven.
    confidence: str = "full"
    #: ``(first.seq, second.seq)`` of candidates still concurrent under
    #: the sync-preserving order (``repro.detect.syncpres``) — always a
    #: subset of the candidate pairs.  None when SP annotation did not
    #: run (batch/streaming/chunked modes).
    sp_pairs: Optional[set] = None

    def candidate_soundness(self, candidate: Candidate) -> str:
        """The soundness tier of one candidate: ``"sp-sound"`` when a
        sync-preserving witness exists, else ``"hb-predicted"``."""
        if (
            self.sp_pairs is not None
            and (candidate.first.seq, candidate.second.seq) in self.sp_pairs
        ):
            return "sp-sound"
        return "hb-predicted"

    def sp_candidate_count(self) -> int:
        return len(self.sp_pairs) if self.sp_pairs is not None else 0

    def static_pairs(self) -> Dict[frozenset, List[Candidate]]:
        grouped: Dict[frozenset, List[Candidate]] = defaultdict(list)
        for candidate in self.candidates:
            grouped[candidate.static_pair].append(candidate)
        return dict(grouped)

    def callstack_pairs(self) -> Dict[frozenset, List[Candidate]]:
        grouped: Dict[frozenset, List[Candidate]] = defaultdict(list)
        for candidate in self.candidates:
            grouped[candidate.callstack_pair].append(candidate)
        return dict(grouped)

    def static_count(self) -> int:
        return len(self.static_pairs())

    def callstack_count(self) -> int:
        return len(self.callstack_pairs())


def _conflicting_pairs_at(
    accesses: List[OpEvent],
    graph: HBGraph,
    max_pairs: int,
) -> Tuple[List[Tuple[OpEvent, OpEvent]], int, bool]:
    """Enumerate one location's conflicting concurrent pairs.

    Pairs are visited in ``(i, j)`` index order (ascending ``seq``),
    exactly like the original nested loop, but the inner loop only ever
    touches *eligible* partners: accesses in other segments, writes
    only when ``a`` is a read.  Hot single-segment loops therefore cost
    nothing per skipped pair.  Returns ``(found, pairs, truncated)``
    where ``pairs`` counts eligible pairs (examined plus the one that
    tripped the cap) and ``truncated`` reports whether the cap cut
    enumeration short.
    """
    by_segment_all: Dict[int, List[int]] = defaultdict(list)
    by_segment_writes: Dict[int, List[int]] = defaultdict(list)
    for index, access in enumerate(accesses):
        by_segment_all[access.segment].append(index)
        if access.kind is OpKind.MEM_WRITE:
            by_segment_writes[access.segment].append(index)

    found: List[Tuple[OpEvent, OpEvent]] = []
    pairs = 0
    truncated = False
    for i, a in enumerate(accesses):
        groups = (
            by_segment_writes
            if a.kind is OpKind.MEM_READ
            else by_segment_all
        )
        eligible: List[int] = []
        for segment, indices in groups.items():
            if segment == a.segment:
                continue  # program order covers same-segment pairs
            k = bisect_right(indices, i)
            eligible.extend(indices[k:])
        eligible.sort()
        for j in eligible:
            pairs += 1
            if pairs > max_pairs:
                truncated = True
                break
            b = accesses[j]
            if graph.concurrent(a, b):
                found.append((a, b))
        if truncated:
            break
    return found, pairs, truncated


def detect_races(
    trace: Trace,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    graph: Optional[HBGraph] = None,
    max_pairs_per_location: int = 200_000,
    workers: "Union[int, str, None]" = None,
    reach_backend: str = "bitset",
    on_shard: Optional[Callable[[int, list, int, bool], None]] = None,
    completed_shards: Optional[Dict[int, tuple]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> DetectionResult:
    """Run trace analysis: build the HB graph, enumerate candidates.

    ``workers`` shards per-location enumeration across a process pool
    (``None``/``1`` = serial, ``0`` = one worker per CPU, ``"auto"`` =
    serial on small traces, one per CPU on large ones); the candidate
    list is identical for every worker count.  ``reach_backend`` selects
    the reachability engine when the graph is built here (ignored when a
    prebuilt ``graph`` is passed).

    The last three knobs support checkpointed pipelines: ``on_shard``
    receives each location's ``(index, seq_pairs, pairs, truncated)`` as
    it is enumerated, ``completed_shards`` maps work indices to triples
    restored from a checkpoint (those locations are merged, not
    re-enumerated), and ``should_stop`` is polled between locations —
    returning true stops enumeration early (``stopped_early`` on the
    result).  The merged candidate list stays in work order, so a
    resumed detection is byte-identical to an uninterrupted one.
    """
    started = time.perf_counter()
    if graph is None:
        graph = HBGraph(
            trace,
            model=model,
            memory_budget=memory_budget,
            reach_backend=reach_backend,
        )

    by_location: Dict[Location, List[OpEvent]] = defaultdict(list)
    for record in trace.records:
        if record.is_mem and record.location is not None:
            by_location[record.location].append(record)
    # Only locations with at least one write can produce candidates.
    work: List[Tuple[Location, List[OpEvent]]] = [
        (location, accesses)
        for location, accesses in by_location.items()
        if any(a.kind is OpKind.MEM_WRITE for a in accesses)
    ]

    from repro.analysis.governor import maybe_stall
    from repro.detect.parallel import resolve_workers, run_location_shards

    auto_decision = None
    resolved = resolve_workers(workers, records=len(trace.records))
    if workers == "auto":
        auto_decision = "serial" if resolved == 1 else "parallel"
        obs.counter(
            "detect_auto_workers_total",
            'worker-count decisions made by workers="auto"',
        ).labels(decision=auto_decision).inc()
    effective_workers = min(resolved, max(1, len(work)))

    completed = completed_shards or {}
    results: List[Optional[tuple]] = [None] * len(work)
    for index, triple in completed.items():
        if 0 <= index < len(work):
            results[index] = triple
    pending = [i for i in range(len(work)) if results[i] is None]

    stopped_early = False
    with obs.span(
        "detect.enumerate",
        locations=len(by_location),
        workers=effective_workers,
    ):
        if effective_workers > 1 and pending:
            # Finish the reachability structure first so forked workers
            # inherit it instead of each recomputing it.
            graph.reach_stats()
            shard_results, stopped_early = run_location_shards(
                graph,
                work,
                max_pairs_per_location,
                effective_workers,
                indices=pending,
                on_result=on_shard,
                should_stop=should_stop,
            )
            for index in pending:
                results[index] = shard_results[index]
        else:
            for index in pending:
                if should_stop is not None and should_stop():
                    stopped_early = True
                    break
                _location, accesses = work[index]
                found, pairs, truncated = _conflicting_pairs_at(
                    accesses, graph, max_pairs_per_location
                )
                seq_pairs = [(a.seq, b.seq) for a, b in found]
                results[index] = (seq_pairs, pairs, truncated)
                if on_shard is not None:
                    on_shard(index, seq_pairs, pairs, truncated)
                maybe_stall("detect_shard")

    # Merge in work order — identical output for serial, parallel,
    # and checkpoint-resumed enumeration.
    by_seq = {r.seq: r for r in trace.records}
    candidates: List[Candidate] = []
    truncated_locations: List[Location] = []
    examined = 0
    for index, triple in enumerate(results):
        if triple is None:
            continue  # stopped early before reaching this location
        seq_pairs, pairs, truncated = triple
        examined += pairs
        if truncated:
            truncated_locations.append(work[index][0])
        for first_seq, second_seq in seq_pairs:
            candidates.append(Candidate(by_seq[first_seq], by_seq[second_seq]))

    obs.counter("detect_pairs_examined_total", "access pairs HB-checked").inc(
        examined
    )
    obs.counter(
        "detect_candidates_total", "concurrent conflicting pairs found"
    ).inc(len(candidates))
    obs.gauge("detect_workers", "processes used by the last detection").set(
        effective_workers
    )
    if truncated_locations:
        obs.counter(
            "detect_truncated_locations_total",
            "locations whose pair enumeration hit max_pairs_per_location",
        ).inc(len(truncated_locations))
        print(
            f"warning: detection truncated {len(truncated_locations)} "
            f"location(s) at {max_pairs_per_location} pairs each; "
            "see DetectionResult.truncated_locations",
            file=sys.stderr,
        )
    if stopped_early:
        obs.counter(
            "detect_stopped_early_total",
            "detections cut short by a deadline",
        ).inc()
    elapsed = time.perf_counter() - started
    return DetectionResult(
        trace=trace,
        graph=graph,
        candidates=candidates,
        analysis_seconds=elapsed,
        pairs_examined=examined,
        truncated_locations=truncated_locations,
        workers=effective_workers,
        stopped_early=stopped_early,
        auto_decision=auto_decision,
        # "sampled" wins over "partial": deliberate, rate-bounded loss is
        # the weaker (and more specific) claim, and it is what the
        # operator asked for with --sampling.
        confidence=(
            "sampled"
            if getattr(trace, "sampled", False)
            else "partial"
            if getattr(graph, "partial", False)
            else "full"
        ),
    )
