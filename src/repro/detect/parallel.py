"""Process-pool plumbing for parallel trace analysis.

Two fan-out shapes, both embarrassingly parallel:

* **per-location shards** (``run_location_shards``) — one HB graph,
  many locations; workers answer concurrency queries against a shared
  read-only graph and return candidate ``seq`` pairs;
* **chunk detection** (``run_chunks``) — many independent chunk traces
  (the paper's OOM fallback); each worker builds its own chunk graph.

The ``fork`` start method is preferred: the parent finishes the HB
graph (including its reachability structure) *before* creating the
pool, so workers inherit it copy-on-write instead of unpickling it.  On
platforms without ``fork`` the state travels through the pool
initializer once per worker.  Workers silence observability (their
registries are fork copies whose increments the parent would never
see); the parent aggregates worker counts into the active registry.

Results are returned in deterministic input order, and every worker
runs the *same* enumeration code as the serial path, so parallel
detection returns byte-identical candidate sets for any worker count.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Callable, List, Optional, Sequence, Tuple, Union

#: Record count below which ``workers="auto"`` picks the serial path.
#: Pool setup (fork + initializer + result pickling) costs milliseconds;
#: on small traces that fixed cost dwarfs the enumeration itself and
#: chunked-parallel runs ~10x slower than serial (see BENCH_detect.json).
AUTO_SERIAL_THRESHOLD = 50_000

#: ``workers="auto"`` adds one worker per this many records, so a trace
#: barely over the serial threshold gets 2 workers, not one per CPU.
MIN_RECORDS_PER_WORKER = 25_000

#: Derived chunk geometry bounds: a chunk never shrinks below
#: ``MIN_CHUNK_RECORDS`` (slivers are pure per-chunk graph overhead) and
#: never grows past ``MAX_CHUNK_RECORDS`` (the per-chunk HB graph +
#: reachability is what bounds worker memory).
MIN_CHUNK_RECORDS = 2_000
MAX_CHUNK_RECORDS = 25_000

#: Fraction of a chunk re-analyzed as backward overlap so cross-chunk
#: pairs near the boundary are still seen.
CHUNK_OVERLAP_FRACTION = 0.1


def resolve_workers(
    workers: "Union[int, str, None]", records: Optional[int] = None
) -> int:
    """Normalize a worker-count knob: ``None``/``1`` → serial, ``0`` →
    one worker per CPU, ``n`` → ``n``.  ``"auto"`` sizes from the trace:
    serial below ``AUTO_SERIAL_THRESHOLD`` records (where pool overhead
    dominates), then one worker per ``MIN_RECORDS_PER_WORKER`` records
    capped at the CPU count."""
    if workers is None:
        return 1
    if workers == "auto":
        if records is None or records < AUTO_SERIAL_THRESHOLD:
            return 1
        return max(
            1, min(os.cpu_count() or 1, records // MIN_RECORDS_PER_WORKER)
        )
    workers = int(workers)
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def derive_chunk_geometry(records: int, workers: int) -> Tuple[int, int]:
    """Size chunked detection from the trace and the worker pool.

    Returns ``(chunk_size, overlap)``.  The chunk count is the smallest
    that (a) keeps every worker busy and (b) keeps each chunk under
    ``MAX_CHUNK_RECORDS`` — but never so many that chunks shrink below
    ``MIN_CHUNK_RECORDS`` (the old fixed fan-out put 9 slivers on a 2
    worker pool for a 10k-record trace: pure IPC and per-chunk graph
    overhead).  A tiny trace yields one whole-trace chunk."""
    if records <= 0:
        return 1, 0
    workers = max(1, workers)
    chunks = max(workers, -(-records // MAX_CHUNK_RECORDS))
    chunks = min(chunks, max(1, records // MIN_CHUNK_RECORDS))
    chunk_size = -(-records // chunks)
    overlap = int(chunk_size * CHUNK_OVERLAP_FRACTION)
    if overlap >= chunk_size:
        overlap = chunk_size - 1
    return chunk_size, max(0, overlap)


def _mp_context():
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context()


def _silence_obs() -> None:
    from repro import obs

    obs.set_registry(obs.NULL_REGISTRY)
    obs.set_tracer(obs.NULL_TRACER)


# -- per-location sharding ----------------------------------------------------

_SHARD_STATE: dict = {}


def _init_shard_worker(graph, work, max_pairs) -> None:
    _silence_obs()
    _SHARD_STATE["graph"] = graph
    _SHARD_STATE["work"] = work
    _SHARD_STATE["max_pairs"] = max_pairs


def _run_shard(indices: Sequence[int]) -> List[tuple]:
    from repro.detect.races import _conflicting_pairs_at

    graph = _SHARD_STATE["graph"]
    work = _SHARD_STATE["work"]
    max_pairs = _SHARD_STATE["max_pairs"]
    out = []
    for index in indices:
        _location, accesses = work[index]
        found, pairs, truncated = _conflicting_pairs_at(
            accesses, graph, max_pairs
        )
        out.append(
            (index, [(a.seq, b.seq) for a, b in found], pairs, truncated)
        )
    return out


def run_location_shards(
    graph,
    work: Sequence[tuple],
    max_pairs: int,
    workers: int,
    indices: Optional[Sequence[int]] = None,
    on_result: Optional[Callable[[int, list, int, bool], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Tuple[List[Optional[Tuple[List[tuple], int, bool]]], bool]:
    """Enumerate conflicting pairs for ``work`` (a list of
    ``(location, accesses)`` entries) across a process pool.

    Returns ``(results, stopped)`` where ``results`` holds one
    ``(seq_pairs, pairs_examined, truncated)`` triple per ``work`` entry
    in input order (``None`` for entries not enumerated).  ``indices``
    restricts enumeration to a subset (resume skips checkpointed
    shards); ``on_result`` streams each location's triple as its shard
    lands (checkpoint appends); ``should_stop`` is polled between shard
    arrivals — when it returns true the pool is torn down early and
    ``stopped`` is true."""
    if indices is None:
        indices = list(range(len(work)))
    # Interleaved shards: neighbouring locations often have similar
    # access counts, so striding balances better than block splits.
    shards = [list(indices)[k::workers] for k in range(workers)]
    shards = [shard for shard in shards if shard]
    results: List = [None] * len(work)
    stopped = False
    if not shards:
        return results, stopped
    ctx = _mp_context()
    with ctx.Pool(
        processes=len(shards),
        initializer=_init_shard_worker,
        initargs=(graph, work, max_pairs),
    ) as pool:
        # Unordered streaming: per-location results are indexed, so
        # arrival order never affects the merged candidate list, and a
        # crash between arrivals only loses the in-flight shard.
        for shard_result in pool.imap_unordered(_run_shard, shards):
            for index, seq_pairs, pairs, truncated in shard_result:
                results[index] = (seq_pairs, pairs, truncated)
                if on_result is not None:
                    on_result(index, seq_pairs, pairs, truncated)
            if should_stop is not None and should_stop():
                stopped = True
                pool.terminate()
                break
    return results, stopped


# -- chunk fan-out ------------------------------------------------------------


def _run_chunk(payload) -> tuple:
    (
        index,
        chunk,
        model,
        memory_budget,
        compress_mem,
        reach_backend,
        max_pairs,
    ) = payload
    _silence_obs()
    from repro.detect.races import detect_races
    from repro.hb.graph import HBGraph

    graph = HBGraph(
        chunk,
        model=model,
        memory_budget=memory_budget,
        compress_mem=compress_mem,
        reach_backend=reach_backend,
    )
    detection = detect_races(
        chunk,
        model=model,
        memory_budget=memory_budget,
        graph=graph,
        max_pairs_per_location=max_pairs,
    )
    return (
        index,
        [(c.first.seq, c.second.seq) for c in detection.candidates],
        detection.pairs_examined,
        list(detection.truncated_locations),
    )


def run_chunks(
    chunks: Sequence,
    model,
    memory_budget: int,
    compress_mem: bool,
    reach_backend: str,
    max_pairs: int,
    workers: int,
) -> List[Tuple[List[tuple], int, list]]:
    """Detect races inside each chunk trace in a process pool.  Returns
    one ``(seq_pairs, pairs_examined, truncated_locations)`` triple per
    chunk, in chunk order."""
    payloads = [
        (
            index,
            chunk,
            model,
            memory_budget,
            compress_mem,
            reach_backend,
            max_pairs,
        )
        for index, chunk in enumerate(chunks)
    ]
    results: List = [None] * len(chunks)
    ctx = _mp_context()
    with ctx.Pool(processes=min(workers, len(chunks))) as pool:
        for index, seq_pairs, pairs, truncated in pool.imap_unordered(
            _run_chunk, payloads
        ):
            results[index] = (seq_pairs, pairs, truncated)
    return results
