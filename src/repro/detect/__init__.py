"""DCbug candidate detection and reporting (paper Section 3.2)."""

from repro.detect.chunked import (
    ChunkedDetectionResult,
    chunk_trace,
    detect_races_chunked,
)
from repro.detect.export import (
    dump_reports,
    load_reports,
    load_reports_file,
    report_from_dict,
    report_to_dict,
    save_reports,
)
from repro.detect.lockset import LocksetIndex, LocksetSplit, split_by_lockset
from repro.detect.races import Candidate, DetectionResult, detect_races
from repro.detect.report import (
    CONFIDENCE_LEVELS,
    CONFIDENCE_RANK,
    SOUNDNESS_RANK,
    SOUNDNESS_TIERS,
    BugReport,
    ReportSet,
    Verdict,
)
from repro.detect.streaming import (
    StreamingDetector,
    StreamResult,
    detect_races_streaming,
)
from repro.detect.syncpres import (
    annotate_sync_preserving,
    build_sp_graph,
    detect_races_sync_preserving,
    lock_section_edges,
)

__all__ = [
    "Candidate",
    "DetectionResult",
    "detect_races",
    "BugReport",
    "ReportSet",
    "Verdict",
    "SOUNDNESS_TIERS",
    "SOUNDNESS_RANK",
    "CONFIDENCE_LEVELS",
    "CONFIDENCE_RANK",
    "annotate_sync_preserving",
    "build_sp_graph",
    "detect_races_sync_preserving",
    "lock_section_edges",
    "LocksetIndex",
    "LocksetSplit",
    "split_by_lockset",
    "ChunkedDetectionResult",
    "chunk_trace",
    "detect_races_chunked",
    "StreamingDetector",
    "StreamResult",
    "detect_races_streaming",
    "dump_reports",
    "load_reports",
    "save_reports",
    "load_reports_file",
    "report_to_dict",
    "report_from_dict",
]
