"""Sync-preserving (SP) race prediction: the sound detection tier.

The HB model (paper Section 3.2) *predicts* races: two conflicting
accesses with no HB path either way are reported even when every real
reordering that would make them adjacent also changes a lock-acquisition
order or a message match — reorderings no correct re-execution can take.
That is why the paper needs the trigger stage at all.

"Optimal Prediction of Synchronization-Preserving Races" (Mathur et al.)
and "Fast, Sound and Effectively Complete Dynamic Race Prediction"
(Pavlogiannis) show that restricting prediction to *synchronization-
preserving* reorderings — every lock is acquired in the observed order,
every message pairs with its observed partner, only data-independent
reorderings are allowed — keeps prediction sound while staying
near-linear.

This module realizes that tier on top of the existing machinery.  The
SP order is the HB order **plus the sync-preserving closure**: for each
lock, an edge from every critical section's release to the next
observed acquisition of that lock.  Two properties follow directly:

* **SP ⊆ HB** — the SP order is a superset of the HB order, so every
  SP-concurrent pair is HB-concurrent.  The SP tier only ever *removes*
  candidates; it cannot invent one the HB detector missed.
* **Common-lock pairs are ordered** — if both accesses run under a
  common lock, the closure chains ``a₁ → release₁ → acquire₂ → a₂``,
  so the pair drops out of the SP-concurrent set without a separate
  lockset filter.

Pairs that survive (``DetectionResult.sp_pairs``) are *sound
witnesses*: a sync-preserving reordering exists that makes them race,
so the report tier ``sp-sound`` outranks plain ``hb-predicted``
candidates in pruning and trigger order (``repro.detect.report``).

Lock acquire/release records are not HB operations (``HB_KINDS``
excludes them), so they normally never reach the graph backbone; the
builder promotes exactly the lock endpoints that carry closure edges
via ``HBGraph(extra_backbone=...)``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.detect.races import DetectionResult, detect_races
from repro.hb.graph import DEFAULT_MEMORY_BUDGET, HBGraph
from repro.hb.model import FULL_MODEL, HBModel
from repro.runtime.ops import OpKind
from repro.trace.store import Trace

__all__ = [
    "SP_LOCK_RULE",
    "lock_section_edges",
    "build_sp_graph",
    "annotate_sync_preserving",
    "detect_races_sync_preserving",
]

#: Edge-count label for sync-preserving closure edges on the SP graph.
SP_LOCK_RULE = "SPlock"


def lock_section_edges(trace: Trace) -> List[Tuple[int, int]]:
    """The sync-preserving closure: ``(release_seq, acquire_seq)`` pairs
    ordering each lock's critical sections as observed.

    Sections are *outermost* acquire..release spans per ``(lock,
    thread)`` — reentrant re-acquisitions deepen the section instead of
    splitting it.  A release with no matching acquire (lost record on a
    salvaged trace; already counted as damage by the HB graph) is
    skipped; an acquire never released (holder crashed or the run
    ended) opens a final section that still receives its predecessor
    edge but emits none.
    """
    depth: Dict[Tuple[object, int], int] = defaultdict(int)
    open_acquire: Dict[Tuple[object, int], int] = {}
    sections: Dict[object, List[Tuple[int, Optional[int]]]] = defaultdict(list)
    for record in trace.records:
        if record.kind is OpKind.LOCK_ACQUIRE:
            key = (record.obj_id, record.tid)
            if depth[key] == 0:
                open_acquire[key] = record.seq
            depth[key] += 1
        elif record.kind is OpKind.LOCK_RELEASE:
            key = (record.obj_id, record.tid)
            if depth[key] == 0:
                continue  # orphan release: damaged trace, no section
            depth[key] -= 1
            if depth[key] == 0:
                sections[record.obj_id].append(
                    (open_acquire.pop(key), record.seq)
                )
    for (obj_id, _tid), acquire_seq in open_acquire.items():
        sections[obj_id].append((acquire_seq, None))

    edges: List[Tuple[int, int]] = []
    for spans in sections.values():
        spans.sort()
        for (_a1, release), (acquire, _r2) in zip(spans, spans[1:]):
            # release < acquire always holds on a valid trace (sections
            # of one lock cannot overlap); a damaged trace can violate
            # it, and a backward edge would corrupt reachability.
            if release is not None and release < acquire:
                edges.append((release, acquire))
    return edges


def build_sp_graph(
    trace: Trace,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    compress_mem: bool = True,
    reach_backend: str = "bitset",
) -> HBGraph:
    """The SP order as a graph: all HB edges plus the closure edges.

    Built on the *full* model (same as the batch HB graph) so the SP
    order is a true superset of the HB order — that containment is what
    makes ``sp_pairs ⊆ candidates`` hold by construction.
    """
    closure = lock_section_edges(trace)
    promoted = {seq for edge in closure for seq in edge}
    graph = HBGraph(
        trace,
        model=model,
        memory_budget=memory_budget,
        compress_mem=compress_mem,
        reach_backend=reach_backend,
        extra_backbone=promoted,
    )
    for release_seq, acquire_seq in closure:
        graph.add_edge(release_seq, acquire_seq, SP_LOCK_RULE)
    return graph


def annotate_sync_preserving(
    detection: DetectionResult,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    reach_backend: str = "bitset",
    sp_graph: Optional[HBGraph] = None,
) -> DetectionResult:
    """Replay the HB candidate set against the SP order and record which
    pairs stay concurrent (``detection.sp_pairs``).

    The candidate list itself is untouched: HB-only pairs keep flowing
    to pruning/triggering at the ``hb-predicted`` tier, SP survivors are
    promoted to ``sp-sound``.  Publishes the tier metrics
    (``detect_sp_candidates_total``, ``detect_soundness_tier_total``).
    """
    started = time.perf_counter()
    with obs.span("detect.sync_preserving", candidates=len(detection.candidates)):
        if sp_graph is None:
            sp_graph = build_sp_graph(
                detection.trace,
                model=model,
                memory_budget=memory_budget,
                reach_backend=reach_backend,
            )
        sp_pairs = {
            (c.first.seq, c.second.seq)
            for c in detection.candidates
            if sp_graph.concurrent(c.first, c.second)
        }
    detection.sp_pairs = sp_pairs
    detection.analysis_seconds += time.perf_counter() - started
    obs.counter(
        "detect_sp_candidates_total",
        "candidates still concurrent under the sync-preserving order",
    ).inc(len(sp_pairs))
    tiers = obs.counter(
        "detect_soundness_tier_total", "candidates per soundness tier"
    )
    tiers.labels(tier="sp-sound").inc(len(sp_pairs))
    tiers.labels(tier="hb-predicted").inc(
        len(detection.candidates) - len(sp_pairs)
    )
    return detection


def detect_races_sync_preserving(
    trace: Trace,
    model: HBModel = FULL_MODEL,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    graph: Optional[HBGraph] = None,
    max_pairs_per_location: int = 200_000,
    workers=None,
    reach_backend: str = "bitset",
    on_shard=None,
    completed_shards=None,
    should_stop=None,
) -> DetectionResult:
    """HB detection plus SP annotation in one call.

    Same signature and candidate set as :func:`detect_races`; the
    result additionally carries ``sp_pairs`` (see
    :func:`annotate_sync_preserving`).
    """
    detection = detect_races(
        trace,
        model=model,
        memory_budget=memory_budget,
        graph=graph,
        max_pairs_per_location=max_pairs_per_location,
        workers=workers,
        reach_backend=reach_backend,
        on_shard=on_shard,
        completed_shards=completed_shards,
        should_stop=should_stop,
    )
    return annotate_sync_preserving(
        detection,
        model=model,
        memory_budget=memory_budget,
        reach_backend=reach_backend,
    )
