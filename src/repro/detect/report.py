"""DCbug reports: deduplicated candidates with classification lifecycle.

The paper counts bug reports two ways (Table 4): by unique *static
instruction pair* and by unique *callstack pair*.  A ``BugReport`` is one
callstack pair (the finer unit — it is what the triggering module takes
as input); static grouping is derived.

A report's classification follows Section 7.1:

* ``SERIAL`` — the two accesses are actually ordered (HB model missed
  custom synchronization): a detector false positive.
* ``BENIGN`` — truly concurrent, but no failure results.
* ``HARMFUL`` — concurrent and at least one ordering causes a failure.
* ``UNKNOWN`` — not yet validated by the trigger module.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional

from repro.detect.races import Candidate, DetectionResult
from repro.ids import Site


class Verdict(Enum):
    UNKNOWN = "unknown"
    SERIAL = "serial"
    BENIGN = "benign"
    HARMFUL = "harmful"


#: Soundness tiers, weakest first.  ``hb-predicted``: the HB model says
#: the pair is concurrent (may be unfeasible — the trigger stage
#: exists to weed these out).  ``sp-sound``: a sync-preserving
#: reordering witnesses the race (``repro.detect.syncpres``) — feasible
#: modulo data-independence.  ``trigger-confirmed``: a controlled
#: re-execution actually produced both orders (HARMFUL or BENIGN
#: verdict).
SOUNDNESS_TIERS = ("hb-predicted", "sp-sound", "trigger-confirmed")

SOUNDNESS_RANK = {tier: rank for rank, tier in enumerate(SOUNDNESS_TIERS)}

#: Confidence levels, strongest first.  ``full``: every in-scope record
#: was traced.  ``partial``: the trace was damaged and salvaged — loss
#: is accidental and unquantified.  ``sampled``: the tracer thinned the
#: memory-access stream *by policy* (``repro.trace.sampling``) — loss
#: is deliberate and rate-bounded, but a missed access means a missed
#: race, so sampled evidence ranks below both.
CONFIDENCE_LEVELS = ("full", "partial", "sampled")

CONFIDENCE_RANK = {level: rank for rank, level in enumerate(CONFIDENCE_LEVELS)}


@dataclass
class BugReport:
    """One deduplicated DCbug report (unique callstack pair)."""

    report_id: int
    candidates: List[Candidate]
    verdict: Verdict = Verdict.UNKNOWN
    verdict_detail: str = ""
    #: Inherited from the detection that produced this report:
    #: ``"partial"`` means the trace was damaged/salvaged and the
    #: candidate set may be incomplete.
    confidence: str = "full"
    #: One of ``SOUNDNESS_TIERS``: how strong the evidence for this
    #: report is.  Starts at the detector's tier; the trigger stage
    #: upgrades to ``trigger-confirmed`` when it enforces both orders.
    soundness: str = "hb-predicted"

    @property
    def representative(self) -> Candidate:
        return self.candidates[0]

    @property
    def static_pair(self) -> frozenset:
        return self.representative.static_pair

    @property
    def callstack_pair(self) -> frozenset:
        return self.representative.callstack_pair

    @property
    def sites(self) -> List[Site]:
        return sorted(
            {s for s in self.static_pair if s is not None},
            key=lambda s: (s.path, s.line),
        )

    @property
    def dynamic_instances(self) -> int:
        return len(self.candidates)

    def describe(self) -> str:
        tag = "" if self.confidence == "full" else f" (confidence: {self.confidence})"
        if self.soundness != "hb-predicted":
            tag += f" <{self.soundness}>"
        lines = [f"DCbug report #{self.report_id} [{self.verdict.value}]{tag}"]
        rep = self.representative
        lines.append(f"  variable: {rep.variable} location={rep.location}")
        for access in rep.accesses():
            lines.append(
                f"  {access.kind.value:9s} {access.node}/{access.thread_name} "
                f"at {access.callstack.pretty()}"
            )
        lines.append(f"  dynamic instances: {self.dynamic_instances}")
        if self.verdict_detail:
            lines.append(f"  detail: {self.verdict_detail}")
        return "\n".join(lines)


class ReportSet:
    """All reports of one workload analysis, with both count views."""

    def __init__(self, reports: List[BugReport]) -> None:
        self.reports = reports

    @classmethod
    def from_detection(cls, detection: DetectionResult) -> "ReportSet":
        grouped = detection.callstack_pairs()
        reports = []
        for i, (_key, candidates) in enumerate(
            sorted(grouped.items(), key=lambda kv: kv[1][0].first.seq)
        ):
            # One SP-sound dynamic instance is a witness for the whole
            # callstack pair: that instance is the one worth triggering.
            soundness = "hb-predicted"
            if any(
                detection.candidate_soundness(c) == "sp-sound"
                for c in candidates
            ):
                soundness = "sp-sound"
            reports.append(
                BugReport(
                    report_id=i + 1,
                    candidates=candidates,
                    confidence=detection.confidence,
                    soundness=soundness,
                )
            )
        if detection.confidence == "sampled" and reports:
            from repro import obs

            obs.counter(
                "detect_sampled_reports_total",
                "bug reports produced from sampled traces",
            ).inc(len(reports))
        return cls(reports)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    # -- counting (Table 4 / Table 5 semantics) -------------------------------

    def callstack_count(self, verdict: Optional[Verdict] = None) -> int:
        return len(
            [r for r in self.reports if verdict is None or r.verdict is verdict]
        )

    def static_groups(self) -> Dict[frozenset, List[BugReport]]:
        grouped: Dict[frozenset, List[BugReport]] = defaultdict(list)
        for report in self.reports:
            grouped[report.static_pair].append(report)
        return dict(grouped)

    def static_count(self, verdict: Optional[Verdict] = None) -> int:
        """Unique static pairs; a pair counts toward the *worst* verdict of
        its reports (matches the paper's CA-1011 note where benign and
        harmful reports share static identities)."""
        if verdict is None:
            return len(self.static_groups())
        count = 0
        for _pair, reports in self.static_groups().items():
            if _worst_verdict([r.verdict for r in reports]) is verdict:
                count += 1
        return count

    def filter(self, keep: Iterable[BugReport]) -> "ReportSet":
        kept = set(id(r) for r in keep)
        return ReportSet([r for r in self.reports if id(r) in kept])

    def soundness_counts(self) -> Dict[str, int]:
        """Reports per soundness tier (zero tiers omitted)."""
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.soundness] = counts.get(report.soundness, 0) + 1
        return counts

    def summary(self) -> str:
        parts = []
        for verdict in Verdict:
            n = self.callstack_count(verdict)
            if n:
                parts.append(f"{verdict.value}={n}")
        return f"{len(self.reports)} reports ({', '.join(parts) or 'none'})"


_SEVERITY = {
    Verdict.HARMFUL: 3,
    Verdict.BENIGN: 2,
    Verdict.SERIAL: 1,
    Verdict.UNKNOWN: 0,
}


def _worst_verdict(verdicts: List[Verdict]) -> Verdict:
    return max(verdicts, key=lambda v: _SEVERITY[v])
