"""Trace record model and serialization.

A trace record is an executed ``OpEvent`` plus nothing else — the paper's
three pieces of information per record (operation type, call stack, ID —
Section 3.1.2) are the event's ``kind``, ``callstack`` and ``obj_id``.
This module adds:

* category classification (Table 7's breakdown: Mem / RPC / Socket /
  Event / Thread / Lock / Push);
* JSON-lines serialization so traces behave like the paper's per-thread
  trace *files* (and so Table 6 can report trace sizes in bytes).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.errors import TraceFormatError
from repro.ids import CallStack, Frame
from repro.runtime.ops import OpEvent, OpKind

#: Version of the on-disk record schema.  Bump when a field changes
#: meaning; readers reject records from the future instead of silently
#: misinterpreting them.  Records without a ``"v"`` field predate
#: versioning and are read as version 1.
TRACE_SCHEMA_VERSION = 1

CATEGORY_MEM = "mem"
CATEGORY_RPC = "rpc"
CATEGORY_SOCKET = "socket"
CATEGORY_EVENT = "event"
CATEGORY_THREAD = "thread"
CATEGORY_LOCK = "lock"
CATEGORY_PUSH = "push"

_KIND_CATEGORY = {
    OpKind.MEM_READ: CATEGORY_MEM,
    OpKind.MEM_WRITE: CATEGORY_MEM,
    OpKind.RPC_CREATE: CATEGORY_RPC,
    OpKind.RPC_BEGIN: CATEGORY_RPC,
    OpKind.RPC_END: CATEGORY_RPC,
    OpKind.RPC_JOIN: CATEGORY_RPC,
    OpKind.SOCK_SEND: CATEGORY_SOCKET,
    OpKind.SOCK_RECV: CATEGORY_SOCKET,
    OpKind.EVENT_CREATE: CATEGORY_EVENT,
    OpKind.EVENT_BEGIN: CATEGORY_EVENT,
    OpKind.EVENT_END: CATEGORY_EVENT,
    OpKind.THREAD_CREATE: CATEGORY_THREAD,
    OpKind.THREAD_BEGIN: CATEGORY_THREAD,
    OpKind.THREAD_END: CATEGORY_THREAD,
    OpKind.THREAD_JOIN: CATEGORY_THREAD,
    OpKind.LOCK_ACQUIRE: CATEGORY_LOCK,
    OpKind.LOCK_RELEASE: CATEGORY_LOCK,
    OpKind.ZK_UPDATE: CATEGORY_PUSH,
    OpKind.ZK_PUSHED: CATEGORY_PUSH,
}


def category_of(kind: OpKind) -> str:
    return _KIND_CATEGORY[kind]


def record_to_dict(event: OpEvent) -> Dict[str, Any]:
    """A JSON-serializable view of one record."""
    return {
        "v": TRACE_SCHEMA_VERSION,
        "seq": event.seq,
        "kind": event.kind.value,
        "obj_id": _jsonable(event.obj_id),
        "node": event.node,
        "tid": event.tid,
        "thread": event.thread_name,
        "segment": event.segment,
        "stack": [[f.path, f.func, f.line] for f in event.callstack],
        "location": list(event.location) if event.location else None,
        "observed_write": event.observed_write,
        "in_handler": event.in_handler,
        "extra": {k: _jsonable(v) for k, v in event.extra.items()},
    }


def record_from_dict(data: Dict[str, Any]) -> OpEvent:
    if not isinstance(data, dict):
        raise TraceFormatError(f"trace record is not an object: {data!r}")
    version = data.get("v", 1)
    if version != TRACE_SCHEMA_VERSION:
        raise TraceFormatError(
            f"unknown trace schema version {version!r} "
            f"(this reader understands version {TRACE_SCHEMA_VERSION})"
        )
    try:
        return OpEvent(
            seq=data["seq"],
            kind=OpKind(data["kind"]),
            obj_id=_untuple(data["obj_id"]),
            node=data["node"],
            tid=data["tid"],
            thread_name=data["thread"],
            segment=data["segment"],
            callstack=CallStack(Frame(p, f, l) for p, f, l in data["stack"]),
            location=tuple(data["location"]) if data["location"] else None,
            observed_write=data["observed_write"],
            in_handler=data.get("in_handler", False),
            extra=data.get("extra", {}),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise TraceFormatError(
            f"malformed trace record ({type(exc).__name__}: {exc})"
        ) from exc


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_jsonable(v) for v in value]}
    return value


def _untuple(value: Any) -> Any:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_untuple(v) for v in value["__tuple__"])
    return value


def dump_records(records: Iterable[OpEvent]) -> str:
    """Serialize records as JSON lines (one trace 'file')."""
    return "\n".join(json.dumps(record_to_dict(r)) for r in records)


def load_records(text: str) -> List[OpEvent]:
    records: List[OpEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {lineno}: malformed trace JSON ({exc.msg})"
            ) from exc
        try:
            records.append(record_from_dict(data))
        except TraceFormatError as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
    return records
