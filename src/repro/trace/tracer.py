"""The run-time tracer (paper Section 3.1).

An ``Interceptor`` installed on a cluster.  It records:

* every HB-related operation (Table 2) from traced nodes;
* lock/unlock operations (needed by the trigger module, Section 5.2);
* memory accesses *subject to the scope policy* — selective by default.

Nodes marked untraced (the coordination-service substrate) contribute no
records at all, mirroring the paper's uninstrumented ZooKeeper.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.runtime.ops import Interceptor, LOCK_KINDS, MEM_KINDS, OpEvent
from repro.trace.scope import FullScope, TracingScope
from repro.trace.store import Trace


class Tracer(Interceptor):
    """Collects a ``Trace`` while the cluster runs."""

    def __init__(
        self,
        scope: Optional[TracingScope] = None,
        name: str = "trace",
        wal: Optional["object"] = None,
    ) -> None:
        self.scope = scope or FullScope()
        self.trace = Trace(name)
        self.enabled = True
        self.dropped_mem = 0  # accesses skipped by the scope policy
        self.overhead_seconds = 0.0
        #: Optional durable sink (``repro.trace.wal.WalSink``): every
        #: recorded event is also appended to per-node/per-thread logs
        #: on disk, so a crash leaves a salvageable prefix.  None (the
        #: default) is the pure in-memory path with zero extra work.
        self.wal = wal
        self._nodes: dict = {}

    def after(self, event: OpEvent) -> None:
        if not self.enabled:
            return
        started = time.perf_counter()
        try:
            if not self._node_traced(event):
                return
            if event.kind in MEM_KINDS and not self.scope.should_trace_mem(event):
                self.dropped_mem += 1
                return
            self.trace.append(event)
            if self.wal is not None:
                self.wal.append(event)
        finally:
            self.overhead_seconds += time.perf_counter() - started

    def on_node_crash(self, node: "object") -> None:
        """A node died: its WAL streams stop mid-write, unsealed."""
        if self.wal is not None:
            self.wal.abandon_node(node.name)

    def close(self) -> None:
        """Seal the surviving WAL streams (end of the monitored run)."""
        if self.wal is not None:
            self.wal.close()

    def _node_traced(self, event: OpEvent) -> bool:
        node = self._nodes.get(event.node)
        return node.traced if node is not None else True

    def bind(self, cluster: "object") -> "Tracer":
        """Attach to a cluster (learns which nodes are traced).

        Keeps a reference to the live node dict, so nodes added after
        binding are still honoured.
        """
        self._nodes = cluster.nodes
        cluster.add_interceptor(self)
        return self
