"""The run-time tracer (paper Section 3.1).

An ``Interceptor`` installed on a cluster.  It records:

* every HB-related operation (Table 2) from traced nodes;
* lock/unlock operations (needed by the trigger module, Section 5.2);
* memory accesses *subject to the scope policy* — selective by default —
  and, when a :class:`repro.trace.sampling.Sampler` is attached, further
  thinned by the sampling policy (``scope`` and ``sampler`` compose:
  scope decides *eligibility*, the sampler decides *budget*).

Nodes marked untraced (the coordination-service substrate) contribute no
records at all, mirroring the paper's uninstrumented ZooKeeper.  Events
from nodes the tracer has never been told about — emitted before
``bind()`` or by unknown substrate — are likewise **skipped**, not
traced: an uninstrumented process cannot produce records.  Both skip
classes are counted (``trace.skipped_untraced`` / ``skipped_unbound``)
so silent loss is visible in ``trace --stats``.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.runtime.ops import Interceptor, LOCK_KINDS, MEM_KINDS, OpEvent
from repro.trace.sampling import Sampler
from repro.trace.scope import FullScope, TracingScope
from repro.trace.store import Trace


class Tracer(Interceptor):
    """Collects a ``Trace`` while the cluster runs."""

    def __init__(
        self,
        scope: Optional[TracingScope] = None,
        name: str = "trace",
        wal: Optional["object"] = None,
        sampler: Optional[Sampler] = None,
    ) -> None:
        self.scope = scope or FullScope()
        self.trace = Trace(name)
        self.enabled = True
        self.overhead_seconds = 0.0
        #: Optional durable sink (``repro.trace.wal.WalSink``): every
        #: recorded event is also appended to per-node/per-thread logs
        #: on disk, so a crash leaves a salvageable prefix.  None (the
        #: default) is the pure in-memory path with zero extra work.
        self.wal = wal
        #: Optional memory-access sampler.  The drop-counter dict is
        #: shared with the trace so stats computed from the trace alone
        #: (after checkpoints, across process boundaries) still see it.
        self.sampler = sampler
        if sampler is not None and sampler.can_drop:
            self.trace.sampled = True
            self.trace.sampling_rate = sampler.nominal_rate()
            self.trace.sampled_dropped = sampler.dropped
        self._nodes: dict = {}

    @property
    def dropped_mem(self) -> int:
        """Accesses rejected by the scope policy (lives on the trace so
        stats survive serialization boundaries)."""
        return self.trace.dropped_mem

    def after(self, event: OpEvent) -> None:
        if not self.enabled:
            return
        started = time.perf_counter()
        try:
            node = self._nodes.get(event.node)
            if node is None:
                # Never bound, or an unknown node: an uninstrumented
                # process produces no records (same contract as the
                # untraced substrate) — but count it, silence here has
                # hidden real wiring bugs.
                self.trace.skipped_unbound += 1
                return
            if not node.traced:
                self.trace.skipped_untraced += 1
                return
            if event.kind in MEM_KINDS:
                if not self.scope.should_trace_mem(event):
                    self.trace.dropped_mem += 1
                    return
                if self.sampler is not None:
                    keep, evictions = self.sampler.observe(event)
                    for seq in evictions:
                        self.trace.remove_seq(seq)
                    if not keep:
                        return
            self.trace.append(event)
            if self.wal is not None:
                self.wal.append(event)
        finally:
            self.overhead_seconds += time.perf_counter() - started

    def on_node_crash(self, node: "object") -> None:
        """A node died: its WAL streams stop mid-write, unsealed."""
        if self.wal is not None:
            self.wal.abandon_node(node.name)

    def close(self) -> None:
        """Seal the surviving WAL streams (end of the monitored run)."""
        if self.wal is not None:
            self.wal.close()

    def _node_traced(self, event: OpEvent) -> bool:
        node = self._nodes.get(event.node)
        return bool(node is not None and node.traced)

    def bind(self, cluster: "object") -> "Tracer":
        """Attach to a cluster (learns which nodes are traced).

        Keeps a reference to the live node dict, so nodes added after
        binding are still honoured.
        """
        self._nodes = cluster.nodes
        cluster.add_interceptor(self)
        return self
