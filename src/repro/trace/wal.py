"""Durable write-ahead trace log.

The paper's tracer writes one trace file per thread of every process
(Section 3.1); ours keeps traces in memory, which means a node crashed
by a fault campaign takes its whole trace with it.  This module is the
durable path: the tracer appends every record to a per-node, per-thread
*segmented* append-only log as the run executes, so a node killed
mid-run leaves a salvageable prefix on disk.

Layout (under one WAL directory)::

    <dir>/<node>/thread-<tid>/seg-0000.wal
    <dir>/<node>/thread-<tid>/seg-0001.wal
    ...

Each segment file is line-oriented so a reader can resynchronize after
damage.  Line grammar::

    H <json>                      header: node, tid, segment index, format
    R <len:08x> <crc:08x> <json>  one record (len/CRC32 of the JSON bytes)
    S <count:08x> <crc:08x>       seal: record count + running CRC

The length prefix detects torn (partially written) records, the per-line
CRC detects bit rot, and the seal marker distinguishes a cleanly closed
segment from one whose tail was lost.  Records are buffered and flushed
every ``flush_every`` appends: the unflushed suffix is exactly what a
crash loses.  ``abandon()`` models the crash — it drops part of the
buffer and tears the last write mid-record, which is what the salvage
path (`repro.trace.salvage`) must recover from.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.runtime.ops import OpEvent
from repro.trace.records import TRACE_SCHEMA_VERSION, record_to_dict

#: Fires after a segment seals: ``(node, tid, segment_index, path)``.
#: This is the hook the detection-service client rides to ship sealed
#: segments as the run executes.
SealCallback = Callable[[str, int, int, str], None]

WAL_FORMAT = "repro-wal"
WAL_VERSION = 1

#: Records per segment before rotation.  Small enough that a long run
#: seals many segments (so most of the trace survives a crash sealed),
#: large enough that rotation cost is negligible.
DEFAULT_SEGMENT_RECORDS = 256

#: Appends between flushes.  The buffered suffix is what a crash loses.
DEFAULT_FLUSH_EVERY = 32


def _crc(payload: bytes, running: int = 0) -> int:
    return zlib.crc32(payload, running) & 0xFFFFFFFF


def encode_record_line(payload: bytes) -> bytes:
    """Frame one JSON payload as an ``R`` line."""
    return b"R %08x %08x " % (len(payload), _crc(payload)) + payload + b"\n"


def encode_seal_line(count: int, running_crc: int) -> bytes:
    return b"S %08x %08x\n" % (count, running_crc & 0xFFFFFFFF)


class WalWriter:
    """Append-only segmented log for one (node, thread) stream."""

    def __init__(
        self,
        directory: str,
        node: str,
        tid: int,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        on_seal: Optional[SealCallback] = None,
    ) -> None:
        self.directory = os.path.join(directory, node, f"thread-{tid}")
        self.node = node
        self.tid = tid
        self.segment_records = max(1, segment_records)
        self.flush_every = max(1, flush_every)
        self.on_seal = on_seal
        self.records_written = 0
        self.segments_sealed = 0
        self.bytes_written = 0
        self.closed = False
        self._segment_index = -1
        self._segment_count = 0
        self._segment_crc = 0
        self._buffer: list = []
        self._buffered = 0
        self._fh = None
        os.makedirs(self.directory, exist_ok=True)
        self._open_segment()

    # -- segment lifecycle ---------------------------------------------------

    def _open_segment(self) -> None:
        self._segment_index += 1
        self._segment_count = 0
        self._segment_crc = 0
        path = os.path.join(self.directory, f"seg-{self._segment_index:04d}.wal")
        self._segment_path = path
        self._fh = open(path, "wb")
        header = {
            "format": WAL_FORMAT,
            "wal_version": WAL_VERSION,
            "record_version": TRACE_SCHEMA_VERSION,
            "node": self.node,
            "tid": self.tid,
            "segment": self._segment_index,
        }
        line = b"H " + json.dumps(header, sort_keys=True).encode() + b"\n"
        self._fh.write(line)
        self.bytes_written += len(line)

    def _drain_buffer(self) -> None:
        if self._buffer:
            data = b"".join(self._buffer)
            self._fh.write(data)
            self._fh.flush()
            self.bytes_written += len(data)
            self._buffer = []
            self._buffered = 0

    def _seal_segment(self) -> None:
        self._drain_buffer()
        line = encode_seal_line(self._segment_count, self._segment_crc)
        self._fh.write(line)
        self._fh.flush()
        self.bytes_written += len(line)
        self._fh.close()
        self.segments_sealed += 1
        if self.on_seal is not None:
            self.on_seal(
                self.node, self.tid, self._segment_index, self._segment_path
            )

    # -- public API ----------------------------------------------------------

    def append(self, data: Dict[str, Any]) -> None:
        if self.closed:
            return
        payload = json.dumps(data, sort_keys=True).encode()
        self._buffer.append(encode_record_line(payload))
        self._buffered += 1
        self._segment_count += 1
        self._segment_crc = _crc(payload, self._segment_crc)
        self.records_written += 1
        if self._buffered >= self.flush_every:
            self._drain_buffer()
        if self._segment_count >= self.segment_records:
            self._seal_segment()
            self._open_segment()

    def close(self) -> None:
        """Cleanly seal and close the current segment."""
        if self.closed:
            return
        self.closed = True
        self._seal_segment()

    def abandon(self) -> None:
        """Model a node crash: the stream stops without a seal.

        Flushed data survives; of the in-flight buffer, only a prefix
        reaches the disk and the last write is torn mid-record — the
        failure mode the salvage path exists for.
        """
        if self.closed:
            return
        self.closed = True
        if self._buffer:
            keep = len(self._buffer) // 2
            for line in self._buffer[:keep]:
                self._fh.write(line)
                self.bytes_written += len(line)
            torn = self._buffer[keep]
            cut = max(2, len(torn) // 2)
            self._fh.write(torn[:cut])
            self.bytes_written += cut
            self._buffer = []
            self._buffered = 0
        self._fh.flush()
        self._fh.close()


class WalSink:
    """Routes trace records to per-(node, thread) writers.

    Attached to the ``Tracer``; ``append`` is called once per recorded
    event, ``abandon_node`` when a node crashes (its streams stop,
    unsealed), and ``close`` at end of run (surviving streams seal)."""

    def __init__(
        self,
        directory: str,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        on_seal: Optional[SealCallback] = None,
    ) -> None:
        self.directory = directory
        self.segment_records = segment_records
        self.flush_every = flush_every
        self.on_seal = on_seal
        self.abandoned_nodes: set = set()
        self._writers: Dict[Tuple[str, int], WalWriter] = {}
        os.makedirs(directory, exist_ok=True)

    def append(self, event: OpEvent) -> None:
        key = (event.node, event.tid)
        if event.node in self.abandoned_nodes:
            return  # a crashed node writes nothing more
        writer = self._writers.get(key)
        if writer is None:
            writer = WalWriter(
                self.directory,
                event.node,
                event.tid,
                segment_records=self.segment_records,
                flush_every=self.flush_every,
                on_seal=self.on_seal,
            )
            self._writers[key] = writer
        writer.append(record_to_dict(event))

    def abandon_node(self, node: str) -> None:
        """The node crashed: its streams end abruptly, without seals."""
        self.abandoned_nodes.add(node)
        for (writer_node, _tid), writer in self._writers.items():
            if writer_node == node:
                writer.abandon()

    def close(self) -> None:
        """End of run: seal every surviving stream and publish totals."""
        for writer in self._writers.values():
            writer.close()
        self._publish_metrics()

    # -- accounting ----------------------------------------------------------

    @property
    def records_written(self) -> int:
        return sum(w.records_written for w in self._writers.values())

    @property
    def segments_sealed(self) -> int:
        return sum(w.segments_sealed for w in self._writers.values())

    @property
    def bytes_written(self) -> int:
        return sum(w.bytes_written for w in self._writers.values())

    def _publish_metrics(self) -> None:
        from repro import obs

        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.counter(
            "wal_records_written_total", "trace records appended to the WAL"
        ).inc(self.records_written)
        registry.counter(
            "wal_segments_sealed_total", "WAL segments sealed cleanly"
        ).inc(self.segments_sealed)
        registry.counter(
            "wal_bytes_written_total", "bytes appended to the WAL"
        ).inc(self.bytes_written)
        if self.abandoned_nodes:
            registry.counter(
                "wal_streams_abandoned_total",
                "WAL streams abandoned by node crashes",
            ).inc(
                sum(
                    1
                    for (node, _tid) in self._writers
                    if node in self.abandoned_nodes
                )
            )


# -- segment framing helpers -------------------------------------------------
#
# The segment file format doubles as the detection service's wire unit:
# a client ships whole sealed segment files, the server re-verifies the
# same length/CRC/seal framing before spooling.  These helpers are the
# single implementation both sides (and salvage-adjacent tooling) share.


def verify_segment_bytes(data: bytes) -> Tuple[int, bool, Optional[str]]:
    """Validate one segment's bytes without decoding record payloads.

    Returns ``(record_count, sealed, damage)`` where ``damage`` is
    ``None`` for a fully intact segment or a short reason string for the
    *first* problem found (torn record, CRC mismatch, garbage framing,
    seal count/CRC disagreement).  An unsealed but otherwise intact
    segment returns ``(count, False, None)`` — whether that is damage is
    the caller's policy (a growing live tail is fine, a shipped segment
    must be sealed)."""
    count = 0
    running_crc = 0
    sealed = False
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline
        line = data[offset:end]
        torn = newline < 0
        if line.startswith(b"H "):
            pass
        elif line.startswith(b"R "):
            head, payload = line[:20], line[20:]
            try:
                length = int(head[2:10], 16)
                crc = int(head[11:19], 16)
            except ValueError:
                return count, sealed, f"unparseable record framing at byte {offset}"
            if torn or len(payload) != length:
                return count, sealed, (
                    f"torn record at byte {offset}: "
                    f"{len(payload)} of {length} payload bytes"
                )
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return count, sealed, f"record CRC mismatch at byte {offset}"
            count += 1
            running_crc = _crc(payload, running_crc)
        elif line.startswith(b"S ") and not torn:
            try:
                seal_count = int(line[2:10], 16)
                seal_crc = int(line[11:19], 16)
            except ValueError:
                return count, sealed, f"unparseable seal marker at byte {offset}"
            sealed = True
            if seal_count != count or seal_crc != running_crc:
                return count, True, (
                    f"seal mismatch: sealed {seal_count} records, read {count}"
                )
        elif line:
            return count, sealed, f"unrecognized line framing at byte {offset}"
        offset = end + 1
    return count, sealed, None


def iter_segment_records(data: bytes) -> Iterable[Dict[str, Any]]:
    """Decode the record payloads of verified segment bytes.

    Assumes ``verify_segment_bytes`` reported no damage; raises
    ``ValueError`` on malformed JSON (the caller should have verified
    first)."""
    for raw in data.split(b"\n"):
        if raw.startswith(b"R "):
            yield json.loads(raw[20:])


def list_stream_segments(wal_dir: str) -> Dict[Tuple[str, int], List[str]]:
    """Map every ``(node, tid)`` stream of a WAL directory to its
    segment file paths, ordered by segment index."""
    streams: Dict[Tuple[str, int], List[str]] = {}
    if not os.path.isdir(wal_dir):
        return streams
    for node in sorted(os.listdir(wal_dir)):
        node_dir = os.path.join(wal_dir, node)
        if not os.path.isdir(node_dir):
            continue
        for entry in sorted(os.listdir(node_dir)):
            thread_dir = os.path.join(node_dir, entry)
            if not os.path.isdir(thread_dir) or not entry.startswith("thread-"):
                continue
            try:
                tid = int(entry[len("thread-"):])
            except ValueError:
                continue
            paths = []
            for filename in sorted(os.listdir(thread_dir)):
                if filename.startswith("seg-") and filename.endswith(".wal"):
                    paths.append(os.path.join(thread_dir, filename))
            streams[(node, tid)] = paths
    return streams
