"""Tracing scope policies (paper Section 3.1.1, "Which operations to trace?").

DCatch's key scalability decision is *selective* memory-access tracing:
record accesses only inside (1) RPC functions, (2) functions that conduct
socket/communication operations, and (3) event-handler functions — and
their callees.  Everything else is skipped, which Table 8 shows is the
difference between tractable and out-of-memory analysis.

Our equivalents:

* handler extents (RPC / event / message / watch callbacks) are known
  dynamically — the runtime marks records with ``in_handler``;
* "functions that conduct communication" are found by a static scan of the
  system-under-test source (the WALA-analog pre-pass): any function whose
  body syntactically performs a communication call.  An access qualifies
  if any frame of its call stack is such a function (dynamic extent =
  "and their callees").

HB-related operations and lock operations are always traced, as in the
paper.
"""

from __future__ import annotations

import ast
import inspect
from types import ModuleType
from typing import Iterable, Set

from repro.runtime.ops import OpEvent

#: Method names whose invocation marks a function as "conducting
#: communication".  Mirrors the paper's list: RPC invocation, socket send,
#: and coordination-service updates.
COMM_CALL_NAMES = frozenset(
    {
        "rpc",
        "call_rpc",
        "send",
        "set_data",
        "expire_session",
    }
)

#: ``create``/``delete`` are only communication when called on a
#: coordination-service client (too generic otherwise).
ZK_ONLY_CALL_NAMES = frozenset({"create", "delete"})
ZK_RECEIVER_HINTS = ("zk", "coord", "zoo")


class TracingScope:
    """Decides which memory accesses the tracer keeps."""

    name = "abstract"

    def should_trace_mem(self, event: OpEvent) -> bool:
        raise NotImplementedError


class FullScope(TracingScope):
    """Unselective tracing — the Table 8 alternative design."""

    name = "full"

    def should_trace_mem(self, event: OpEvent) -> bool:
        return True


class SelectiveScope(TracingScope):
    """The paper's policy: handlers + communication-conducting functions."""

    name = "selective"

    def __init__(self, comm_functions: Iterable[str] = ()) -> None:
        self.comm_functions: Set[str] = set(comm_functions)

    def should_trace_mem(self, event: OpEvent) -> bool:
        if event.in_handler:
            return True
        return any(f.func in self.comm_functions for f in event.callstack)


class _CommCallFinder(ast.NodeVisitor):
    """Does this function body contain a communication call — and which
    other functions does it invoke (for the call-graph closure)?"""

    def __init__(self) -> None:
        self.found = False
        self.called: Set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            if name in COMM_CALL_NAMES:
                self.found = True
            elif name in ZK_ONLY_CALL_NAMES and _receiver_is_zk(func.value):
                self.found = True
            else:
                self.called.add(name)
        elif isinstance(func, ast.Name):
            if func.id in COMM_CALL_NAMES:
                self.found = True
            else:
                self.called.add(func.id)
        self.generic_visit(node)


def _receiver_is_zk(value: ast.expr) -> bool:
    text = ast.dump(value).lower()
    return any(hint in text for hint in ZK_RECEIVER_HINTS)


def _scan_source(source: str) -> "tuple[Set[str], dict]":
    """One source file: (directly-communicating functions, call edges)."""
    tree = ast.parse(source)
    direct: Set[str] = set()
    calls: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            finder = _CommCallFinder()
            for stmt in node.body:
                finder.visit(stmt)
            if finder.found:
                direct.add(node.name)
            calls.setdefault(node.name, set()).update(finder.called)
    return direct, calls


def _closure(direct: Set[str], calls: dict) -> Set[str]:
    """Interprocedural step (the WALA analog is a call-graph walk): a
    function that calls a communicating function conducts communication
    itself — ``_run_container`` stays a comm function after its RPCs
    move behind an ``_am()`` retry helper."""
    result = set(direct)
    changed = True
    while changed:
        changed = False
        for func, callees in calls.items():
            if func not in result and callees & result:
                result.add(func)
                changed = True
    return result


def find_comm_functions_in_source(source: str) -> Set[str]:
    """Names of functions in ``source`` that conduct communication."""
    direct, calls = _scan_source(source)
    return _closure(direct, calls)


def find_comm_functions(modules: Iterable[ModuleType]) -> Set[str]:
    """Static pre-pass over system-under-test modules (the WALA analog).

    The closure runs over all modules together, so a helper defined in
    one module propagates to its callers in another.
    """
    direct: Set[str] = set()
    calls: dict = {}
    for module in modules:
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):
            continue
        module_direct, module_calls = _scan_source(source)
        direct |= module_direct
        for func, callees in module_calls.items():
            calls.setdefault(func, set()).update(callees)
    return _closure(direct, calls)


def selective_scope_for(modules: Iterable[ModuleType]) -> SelectiveScope:
    return SelectiveScope(find_comm_functions(modules))
