"""Tracing scope policies (paper Section 3.1.1, "Which operations to trace?").

DCatch's key scalability decision is *selective* memory-access tracing:
record accesses only inside (1) RPC functions, (2) functions that conduct
socket/communication operations, and (3) event-handler functions — and
their callees.  Everything else is skipped, which Table 8 shows is the
difference between tractable and out-of-memory analysis.

Our equivalents:

* handler extents (RPC / event / message / watch callbacks) are known
  dynamically — the runtime marks records with ``in_handler``;
* "functions that conduct communication" are found by a static scan of the
  system-under-test source (the WALA-analog pre-pass): any function whose
  body syntactically performs a communication call.  An access qualifies
  if any frame of its call stack is such a function (dynamic extent =
  "and their callees").

HB-related operations and lock operations are always traced, as in the
paper.
"""

from __future__ import annotations

import ast
import inspect
from types import ModuleType
from typing import Iterable, Set

from repro.runtime.ops import OpEvent

#: Method names whose invocation marks a function as "conducting
#: communication".  Mirrors the paper's list: RPC invocation, socket send,
#: and coordination-service updates.
COMM_CALL_NAMES = frozenset(
    {
        "rpc",
        "call_rpc",
        "send",
        "set_data",
        "expire_session",
    }
)

#: ``create``/``delete`` are only communication when called on a
#: coordination-service client (too generic otherwise).
ZK_ONLY_CALL_NAMES = frozenset({"create", "delete"})
ZK_RECEIVER_HINTS = ("zk", "coord", "zoo")


class TracingScope:
    """Decides which memory accesses the tracer keeps."""

    name = "abstract"

    def should_trace_mem(self, event: OpEvent) -> bool:
        raise NotImplementedError


class FullScope(TracingScope):
    """Unselective tracing — the Table 8 alternative design."""

    name = "full"

    def should_trace_mem(self, event: OpEvent) -> bool:
        return True


class SelectiveScope(TracingScope):
    """The paper's policy: handlers + communication-conducting functions."""

    name = "selective"

    def __init__(self, comm_functions: Iterable[str] = ()) -> None:
        self.comm_functions: Set[str] = set(comm_functions)

    def should_trace_mem(self, event: OpEvent) -> bool:
        if event.in_handler:
            return True
        return any(f.func in self.comm_functions for f in event.callstack)


class _CommCallFinder(ast.NodeVisitor):
    """Does this function body contain a communication call — and which
    other functions does it invoke (for the call-graph closure)?

    Nested ``def``s are *not* descended into: their bodies run when the
    nested function is called, not when the enclosing one does, so a
    comm call inside a nested helper must not mark the outer function as
    directly communicating.  (``ast.walk`` scans the nested def as its
    own node.)  Instead the outer function gets a call-graph edge to the
    nested name — both when it calls it and when it merely *passes* it
    (``spawn(worker)``, ``Thread(target=worker)``), so the closure still
    reaches functions that hand a comm closure to a thread."""

    def __init__(self) -> None:
        self.found = False
        self.called: Set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # scanned as its own call-graph node; defining is not using

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            if name in COMM_CALL_NAMES:
                self.found = True
            elif name in ZK_ONLY_CALL_NAMES and _receiver_is_zk(func.value):
                self.found = True
            else:
                self.called.add(name)
        elif isinstance(func, ast.Name):
            if func.id in COMM_CALL_NAMES:
                self.found = True
            else:
                self.called.add(func.id)
        # Higher-order uses: a function passed as an argument may run in
        # the callee's (or a spawned thread's) dynamic extent.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                self.called.add(arg.id)
            elif isinstance(arg, ast.Attribute):
                self.called.add(arg.attr)
        self.generic_visit(node)


def _receiver_is_zk(value: ast.expr) -> bool:
    text = ast.dump(value).lower()
    return any(hint in text for hint in ZK_RECEIVER_HINTS)


def _scan_source(source: str) -> "tuple[Set[str], dict]":
    """One source file: (directly-communicating functions, call edges)."""
    tree = ast.parse(source)
    direct: Set[str] = set()
    calls: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            finder = _CommCallFinder()
            for stmt in node.body:
                finder.visit(stmt)
            if finder.found:
                direct.add(node.name)
            calls.setdefault(node.name, set()).update(finder.called)
    return direct, calls


def _closure(direct: Set[str], calls: dict) -> Set[str]:
    """Interprocedural step (the WALA analog is a call-graph walk): a
    function that calls a communicating function conducts communication
    itself — ``_run_container`` stays a comm function after its RPCs
    move behind an ``_am()`` retry helper."""
    result = set(direct)
    changed = True
    while changed:
        changed = False
        for func, callees in calls.items():
            if func not in result and callees & result:
                result.add(func)
                changed = True
    return result


def find_comm_functions_in_source(source: str) -> Set[str]:
    """Names of functions in ``source`` that conduct communication."""
    direct, calls = _scan_source(source)
    return _closure(direct, calls)


def _closure_qualified(
    direct: Set[tuple], calls: dict, defined_in: dict
) -> Set[tuple]:
    """Call-graph closure over ``(module, name)``-qualified nodes.

    A bare callee name resolves to the same-module definition when one
    exists (shadowing wins), otherwise to *every* module that defines
    it — cross-module helpers still propagate, but two unrelated
    same-named functions in different modules no longer collapse into
    one call-graph node (which used to inflate the closure)."""
    edges: dict = {}
    for node, callees in calls.items():
        module_index, _ = node
        targets: Set[tuple] = set()
        for callee in callees:
            homes = defined_in.get(callee)
            if not homes:
                continue  # external / builtin
            if module_index in homes:
                targets.add((module_index, callee))
            else:
                targets.update((home, callee) for home in homes)
        edges[node] = targets
    result = set(direct)
    changed = True
    while changed:
        changed = False
        for node, targets in edges.items():
            if node not in result and targets & result:
                result.add(node)
                changed = True
    return result


def find_comm_functions_in_sources(sources: Iterable[str]) -> Set[str]:
    """Multi-source scan with per-module call-graph qualification."""
    direct: Set[tuple] = set()
    calls: dict = {}
    defined_in: dict = {}
    for module_index, source in enumerate(sources):
        module_direct, module_calls = _scan_source(source)
        for name in module_calls:
            defined_in.setdefault(name, set()).add(module_index)
        direct |= {(module_index, name) for name in module_direct}
        for func, callees in module_calls.items():
            calls.setdefault((module_index, func), set()).update(callees)
    return {name for _, name in _closure_qualified(direct, calls, defined_in)}


def find_comm_functions(modules: Iterable[ModuleType]) -> Set[str]:
    """Static pre-pass over system-under-test modules (the WALA analog).

    The closure runs over all modules together — a helper defined in
    one module propagates to its callers in another — but call-graph
    nodes are qualified per module, so same-named functions in
    different modules stay distinct.  The returned names are bare
    (``SelectiveScope`` matches run-time frames by function name).
    """
    sources = []
    for module in modules:
        try:
            sources.append(inspect.getsource(module))
        except (OSError, TypeError):
            continue
    return find_comm_functions_in_sources(sources)


def selective_scope_for(modules: Iterable[ModuleType]) -> SelectiveScope:
    return SelectiveScope(find_comm_functions(modules))
