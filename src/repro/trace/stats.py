"""Trace statistics: what one monitored run looked like.

Useful for the Table 6/7 benches, for sanity-checking workloads, and
for eyeballing whether selective tracing is doing its job.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.runtime.ops import MEM_KINDS, OpKind
from repro.trace.store import Trace


@dataclass
class TraceStats:
    total: int
    size_bytes: int
    categories: Counter
    per_node: Counter
    per_thread: Counter
    segments: int
    handler_segments: int
    mem_locations: int
    reads: int
    writes: int

    def render(self) -> str:
        lines = [
            f"records: {self.total} ({self.size_bytes / 1024:.1f} KB)",
            "by category: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.categories.items())),
            "by node: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_node.items())),
            f"segments: {self.segments} ({self.handler_segments} handler)",
            f"memory: {self.reads} reads / {self.writes} writes over "
            f"{self.mem_locations} locations",
        ]
        return "\n".join(lines)


def compute_stats(trace: Trace) -> TraceStats:
    per_node: Counter = Counter()
    per_thread: Counter = Counter()
    segments = set()
    handler_segments = set()
    locations = set()
    reads = writes = 0
    for record in trace.records:
        per_node[record.node] += 1
        per_thread[record.thread_name] += 1
        segments.add(record.segment)
        if record.in_handler:
            handler_segments.add(record.segment)
        if record.kind in MEM_KINDS:
            if record.location is not None:
                locations.add(record.location)
            if record.kind is OpKind.MEM_READ:
                reads += 1
            else:
                writes += 1
    return TraceStats(
        total=len(trace),
        size_bytes=trace.size_bytes(),
        categories=trace.category_counts(),
        per_node=per_node,
        per_thread=per_thread,
        segments=len(segments),
        handler_segments=len(handler_segments),
        mem_locations=len(locations),
        reads=reads,
        writes=writes,
    )
