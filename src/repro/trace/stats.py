"""Trace statistics: what one monitored run looked like.

Useful for the Table 6/7 benches, for sanity-checking workloads, and
for eyeballing whether selective tracing is doing its job.

``publish_stats`` mirrors the same numbers into the active metrics
registry (``repro.obs``), so ``repro trace --stats`` and ``repro
profile`` report identical record/byte counts — both are views of one
``compute_stats`` pass.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.ops import HB_KINDS, LOCK_KINDS, MEM_KINDS, OpKind
from repro.trace.records import category_of, record_to_dict
from repro.trace.store import Trace


@dataclass
class TraceStats:
    total: int
    size_bytes: int
    categories: Counter
    per_node: Counter
    per_thread: Counter
    segments: int
    handler_segments: int
    mem_locations: int
    reads: int
    writes: int
    #: HB-related records (paper Table 2 kinds: thread/event/RPC/socket/push).
    hb_ops: int = 0
    #: Lock acquire/release records (trigger-module material, not HB edges).
    lock_ops: int = 0
    #: Serialized bytes per category (one JSON line + newline per record).
    bytes_by_category: Dict[str, int] = field(default_factory=dict)
    #: Memory accesses rejected by the scope policy (selective-tracing
    #: loss — previously counted on the tracer but never surfaced).
    dropped_mem: int = 0
    #: Events skipped because their node was unknown to the tracer.
    skipped_unbound: int = 0
    #: Events skipped from untraced (substrate) nodes.
    skipped_untraced: int = 0
    #: True when the trace was deliberately thinned by a sampling policy.
    sampled: bool = False
    #: Nominal hash-rate of the sampling policy (None when purely
    #: budgeted or when sampling is off).
    sampling_rate: Optional[float] = None
    #: Sampler drops by record kind (plus ``evicted`` for reservoir
    #: replacements).
    sampled_dropped: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"records: {self.total} ({self.size_bytes / 1024:.1f} KB)",
            "by category: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.categories.items())),
            "bytes by category: "
            + ", ".join(
                f"{k}={v / 1024:.1f}KB"
                for k, v in sorted(self.bytes_by_category.items())
            ),
            "by node: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.per_node.items())),
            f"segments: {self.segments} ({self.handler_segments} handler)",
            f"memory: {self.reads} reads / {self.writes} writes over "
            f"{self.mem_locations} locations",
            f"hb ops: {self.hb_ops}, lock ops: {self.lock_ops}",
            f"dropped by scope: {self.dropped_mem} "
            f"(skipped: {self.skipped_unbound} unbound, "
            f"{self.skipped_untraced} untraced nodes)",
        ]
        if self.sampled:
            rate = "-" if self.sampling_rate is None else f"{self.sampling_rate:g}"
            dropped = (
                ", ".join(
                    f"{k}={v}" for k, v in sorted(self.sampled_dropped.items())
                )
                or "none"
            )
            lines.append(f"sampling: rate={rate}, dropped: {dropped}")
        return "\n".join(lines)


def compute_stats(trace: Trace) -> TraceStats:
    per_node: Counter = Counter()
    per_thread: Counter = Counter()
    bytes_by_category: Dict[str, int] = {}
    segments = set()
    handler_segments = set()
    locations = set()
    reads = writes = hb_ops = lock_ops = 0
    for record in trace.records:
        per_node[record.node] += 1
        per_thread[record.thread_name] += 1
        segments.add(record.segment)
        if record.in_handler:
            handler_segments.add(record.segment)
        category = category_of(record.kind)
        size = len(json.dumps(record_to_dict(record))) + 1  # + newline
        bytes_by_category[category] = bytes_by_category.get(category, 0) + size
        if record.kind in HB_KINDS:
            hb_ops += 1
        elif record.kind in LOCK_KINDS:
            lock_ops += 1
        if record.kind in MEM_KINDS:
            if record.location is not None:
                locations.add(record.location)
            if record.kind is OpKind.MEM_READ:
                reads += 1
            else:
                writes += 1
    return TraceStats(
        total=len(trace),
        size_bytes=trace.size_bytes(),
        categories=trace.category_counts(),
        per_node=per_node,
        per_thread=per_thread,
        segments=len(segments),
        handler_segments=len(handler_segments),
        mem_locations=len(locations),
        reads=reads,
        writes=writes,
        hb_ops=hb_ops,
        lock_ops=lock_ops,
        bytes_by_category=bytes_by_category,
        # Loss counters live on the trace (not the tracer) so they
        # survive checkpoints and process boundaries; old pickles may
        # lack them, hence the getattr defaults.
        dropped_mem=getattr(trace, "dropped_mem", 0),
        skipped_unbound=getattr(trace, "skipped_unbound", 0),
        skipped_untraced=getattr(trace, "skipped_untraced", 0),
        sampled=bool(getattr(trace, "sampled", False)),
        sampling_rate=getattr(trace, "sampling_rate", None),
        sampled_dropped=dict(getattr(trace, "sampled_dropped", {}) or {}),
    )


def publish_stats(stats: TraceStats, registry: Optional[object] = None) -> None:
    """Mirror one trace's stats into a metrics registry (active by default).

    Gauges, not counters: a pipeline run observes exactly one monitored
    trace, and re-publishing must overwrite, not accumulate.
    """
    from repro import obs

    reg = registry if registry is not None else obs.get_registry()
    reg.gauge("trace_records", "records in the monitored trace").set(stats.total)
    reg.gauge("trace_size_bytes", "serialized trace size").set(stats.size_bytes)
    reg.gauge("trace_segments", "distinct segments in the trace").set(
        stats.segments
    )
    reg.gauge(
        "trace_handler_segments", "segments from handler invocations"
    ).set(stats.handler_segments)
    reg.gauge("trace_mem_locations", "distinct memory locations").set(
        stats.mem_locations
    )
    reg.gauge("trace_mem_reads", "memory read records").set(stats.reads)
    reg.gauge("trace_mem_writes", "memory write records").set(stats.writes)
    reg.gauge("trace_hb_ops", "HB-related records (Table 2 kinds)").set(
        stats.hb_ops
    )
    reg.gauge("trace_lock_ops", "lock acquire/release records").set(
        stats.lock_ops
    )
    reg.gauge(
        "trace_dropped_mem_total",
        "memory accesses rejected by the scope policy",
    ).set(stats.dropped_mem)
    reg.gauge(
        "trace_skipped_unbound_total",
        "events skipped because their node was unknown to the tracer",
    ).set(stats.skipped_unbound)
    reg.gauge(
        "trace_skipped_untraced_total",
        "events skipped from untraced substrate nodes",
    ).set(stats.skipped_untraced)
    # 1.0 when sampling is off (or purely budgeted): "no rate cut".
    reg.gauge(
        "trace_sampling_rate", "nominal hash-rate of the sampling policy"
    ).set(stats.sampling_rate if stats.sampling_rate is not None else 1.0)
    sampled_dropped = reg.gauge(
        "trace_sampled_dropped_total",
        "records dropped by the sampling policy, by record kind",
    )
    for kind, count in sorted(stats.sampled_dropped.items()):
        sampled_dropped.labels(kind=kind).set(count)
    records_by_cat = reg.gauge(
        "trace_records_by_category", "records per Table 7 category"
    )
    bytes_by_cat = reg.gauge(
        "trace_bytes_by_category", "serialized bytes per Table 7 category"
    )
    for category, count in sorted(stats.categories.items()):
        records_by_cat.labels(category=category).set(count)
    for category, size in sorted(stats.bytes_by_category.items()):
        bytes_by_cat.labels(category=category).set(size)
