"""Recover a ``Trace`` from a (possibly damaged) WAL directory.

Cloud runs end badly: nodes crash mid-write, disks tear records, files
go missing.  Salvage never raises on damage — every record that passes
its framing and CRC checks is recovered, everything else is quarantined
into a structured ``SalvageReport`` (what was lost, where, and why), and
the partial ``Trace`` is handed to the analysis pipeline, which degrades
to ``confidence: "partial"`` results instead of dying.

What counts as damage:

* **torn record** — an ``R`` line whose payload is shorter than its
  length prefix (a write interrupted mid-record);
* **CRC mismatch** — payload present but corrupted;
* **bad JSON / bad record** — payload decodes but is not a valid record;
* **garbage line** — a line that is not ``H``/``R``/``S`` framed at all;
* **unsealed segment** — a segment file with no seal marker: its tail
  (and any records buffered but never flushed) is gone;
* **seal mismatch** — a seal whose count/CRC disagrees with the records
  actually read (silent loss *inside* a sealed segment);
* **missing segment** — a gap in the segment numbering.

**Live mode** (``live=True`` / ``dcatch salvage --live``): the WAL is
still being written — the tracer is running right now.  A growing
stream then *always* ends in an unsealed tail segment, and possibly a
half-flushed final record; calling that "damage" would make every
healthy live capture look broken.  In live mode the last segment of
each stream is allowed to be unsealed (``in_progress_segments``) and a
torn line at its EOF is ``records_in_progress`` — neither marks the
report damaged.  The same conditions *before* the tail are still real
damage, live or not.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TraceFormatError
from repro.trace.records import record_from_dict
from repro.trace.store import Trace


@dataclass
class QuarantinedRecord:
    """One damaged region of one WAL file."""

    path: str
    byte_start: int
    byte_end: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "byte_start": self.byte_start,
            "byte_end": self.byte_end,
            "reason": self.reason,
        }


@dataclass
class ThreadSalvage:
    """Per-stream (node/thread) recovery accounting."""

    node: str
    tid: int
    records_recovered: int = 0
    records_quarantined: int = 0
    sealed_segments: int = 0
    unsealed_segments: int = 0
    #: Live mode: the stream's growing tail segment (not damage).
    in_progress_segments: int = 0
    missing_segments: List[int] = field(default_factory=list)

    @property
    def damaged(self) -> bool:
        return bool(
            self.records_quarantined
            or self.unsealed_segments
            or self.missing_segments
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "tid": self.tid,
            "records_recovered": self.records_recovered,
            "records_quarantined": self.records_quarantined,
            "sealed_segments": self.sealed_segments,
            "unsealed_segments": self.unsealed_segments,
            "in_progress_segments": self.in_progress_segments,
            "missing_segments": self.missing_segments,
        }


@dataclass
class SalvageReport:
    """Everything salvage learned about one WAL directory."""

    directory: str
    records_recovered: int = 0
    records_quarantined: int = 0
    torn_records: int = 0
    crc_mismatches: int = 0
    bad_records: int = 0
    sealed_segments: int = 0
    unsealed_segments: int = 0
    seal_mismatches: int = 0
    #: Live mode only: growing tail segments / half-flushed tail
    #: records — expected for a WAL that is still being written.
    in_progress_segments: int = 0
    records_in_progress: int = 0
    missing_segments: List[str] = field(default_factory=list)
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    threads: Dict[str, ThreadSalvage] = field(default_factory=dict)

    @property
    def damaged(self) -> bool:
        """Did the WAL lose *anything*?  Drives ``Trace.partial``."""
        return bool(
            self.records_quarantined
            or self.unsealed_segments
            or self.seal_mismatches
            or self.missing_segments
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-salvage-report",
            "version": 1,
            "directory": self.directory,
            "damaged": self.damaged,
            "records_recovered": self.records_recovered,
            "records_quarantined": self.records_quarantined,
            "torn_records": self.torn_records,
            "crc_mismatches": self.crc_mismatches,
            "bad_records": self.bad_records,
            "sealed_segments": self.sealed_segments,
            "unsealed_segments": self.unsealed_segments,
            "seal_mismatches": self.seal_mismatches,
            "in_progress_segments": self.in_progress_segments,
            "records_in_progress": self.records_in_progress,
            "missing_segments": self.missing_segments,
            "quarantined": [q.to_dict() for q in self.quarantined],
            "threads": {
                key: t.to_dict() for key, t in sorted(self.threads.items())
            },
        }

    def render(self) -> str:
        lines = [
            f"salvage of {self.directory}: "
            + ("DAMAGED" if self.damaged else "clean")
        ]
        lines.append(
            f"  records: {self.records_recovered} recovered, "
            f"{self.records_quarantined} quarantined "
            f"({self.torn_records} torn, {self.crc_mismatches} CRC, "
            f"{self.bad_records} malformed)"
        )
        lines.append(
            f"  segments: {self.sealed_segments} sealed, "
            f"{self.unsealed_segments} unsealed, "
            f"{self.seal_mismatches} seal mismatches, "
            f"{len(self.missing_segments)} missing"
        )
        if self.in_progress_segments or self.records_in_progress:
            lines.append(
                f"  in progress (live): {self.in_progress_segments} "
                f"growing tail segment(s), {self.records_in_progress} "
                "half-flushed record(s)"
            )
        for key, thread in sorted(self.threads.items()):
            if thread.damaged:
                lines.append(
                    f"  {key}: {thread.records_recovered} recovered, "
                    f"{thread.records_quarantined} quarantined, "
                    f"{thread.unsealed_segments} unsealed segment(s)"
                )
        for q in self.quarantined[:20]:
            lines.append(
                f"  quarantined {q.path} bytes {q.byte_start}-{q.byte_end}: "
                f"{q.reason}"
            )
        if len(self.quarantined) > 20:
            lines.append(
                f"  ... and {len(self.quarantined) - 20} more quarantined regions"
            )
        return "\n".join(lines)


def _quarantine(
    report: SalvageReport,
    thread: ThreadSalvage,
    path: str,
    start: int,
    end: int,
    reason: str,
    kind: str,
) -> None:
    report.records_quarantined += 1
    thread.records_quarantined += 1
    if kind == "torn":
        report.torn_records += 1
    elif kind == "crc":
        report.crc_mismatches += 1
    else:
        report.bad_records += 1
    report.quarantined.append(
        QuarantinedRecord(path=path, byte_start=start, byte_end=end, reason=reason)
    )


def _salvage_segment(
    path: str,
    report: SalvageReport,
    thread: ThreadSalvage,
    records: List[dict],
    live_tail: bool = False,
) -> None:
    """Scan one segment file line by line; recover what verifies.

    ``live_tail`` marks the stream's growing last segment during a live
    capture: an unterminated final line and a missing seal are then
    *in progress*, not damage."""
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    count = 0
    running_crc = 0
    sealed = False
    rel = os.path.relpath(path, report.directory)
    while offset < len(data):
        newline = data.find(b"\n", offset)
        end = len(data) if newline < 0 else newline
        line = data[offset:end]
        torn_tail = newline < 0  # no terminator: the write was cut short
        if torn_tail and live_tail:
            # The writer is mid-append on this very line; it will be
            # complete (or sealed over) by the next look.
            report.records_in_progress += 1
            offset = end + 1
            continue
        if line.startswith(b"H "):
            pass  # header carries no records
        elif line.startswith(b"R "):
            ok = False
            head, payload = line[:20], line[20:]
            try:
                length = int(head[2:10], 16)
                crc = int(head[11:19], 16)
            except ValueError:
                _quarantine(
                    report, thread, rel, offset, end,
                    "unparseable record framing", "torn",
                )
            else:
                if torn_tail or len(payload) != length:
                    _quarantine(
                        report, thread, rel, offset, end,
                        f"torn record: {len(payload)} of {length} payload bytes",
                        "torn",
                    )
                elif zlib.crc32(payload) & 0xFFFFFFFF != crc:
                    _quarantine(
                        report, thread, rel, offset, end,
                        "CRC mismatch", "crc",
                    )
                else:
                    try:
                        records.append(json.loads(payload))
                        ok = True
                    except ValueError:
                        _quarantine(
                            report, thread, rel, offset, end,
                            "payload is not valid JSON", "bad",
                        )
            if ok:
                count += 1
                running_crc = zlib.crc32(payload, running_crc) & 0xFFFFFFFF
                report.records_recovered += 1
                thread.records_recovered += 1
        elif line.startswith(b"S ") and not torn_tail:
            try:
                seal_count = int(line[2:10], 16)
                seal_crc = int(line[11:19], 16)
            except ValueError:
                _quarantine(
                    report, thread, rel, offset, end,
                    "unparseable seal marker", "torn",
                )
            else:
                sealed = True
                if seal_count != count or seal_crc != running_crc:
                    report.seal_mismatches += 1
                    report.quarantined.append(
                        QuarantinedRecord(
                            path=rel,
                            byte_start=offset,
                            byte_end=end,
                            reason=(
                                f"seal mismatch: sealed {seal_count} records, "
                                f"read {count}"
                            ),
                        )
                    )
        elif line:
            _quarantine(
                report, thread, rel, offset, end,
                "unrecognized line framing", "torn" if torn_tail else "bad",
            )
        offset = end + 1
    if sealed:
        report.sealed_segments += 1
        thread.sealed_segments += 1
    elif live_tail:
        report.in_progress_segments += 1
        thread.in_progress_segments += 1
    else:
        report.unsealed_segments += 1
        thread.unsealed_segments += 1


def _segment_index(filename: str) -> Optional[int]:
    if filename.startswith("seg-") and filename.endswith(".wal"):
        try:
            return int(filename[4:-4])
        except ValueError:
            return None
    return None


def salvage_trace(
    directory: str, name: str = "salvaged", live: bool = False
) -> Tuple[Trace, SalvageReport]:
    """Rebuild a ``Trace`` from a WAL directory, quarantining damage.

    Never raises on damaged content — a WAL directory with no intact
    record at all yields an empty trace and a report that says so.
    Raises ``TraceFormatError`` only when ``directory`` is not a WAL
    directory at all (does not exist / contains no streams).

    ``live=True`` salvages a WAL that is *still being written*: each
    stream's growing tail segment may legitimately be unsealed and end
    mid-record; those are reported as in-progress, not damage, so a
    healthy live capture salvages clean."""
    if not os.path.isdir(directory):
        raise TraceFormatError(f"not a WAL directory: {directory}")
    report = SalvageReport(directory=directory)
    raw_records: List[dict] = []
    streams = 0
    for node in sorted(os.listdir(directory)):
        node_dir = os.path.join(directory, node)
        if not os.path.isdir(node_dir):
            continue
        for thread_entry in sorted(os.listdir(node_dir)):
            thread_dir = os.path.join(node_dir, thread_entry)
            if not os.path.isdir(thread_dir) or not thread_entry.startswith(
                "thread-"
            ):
                continue
            try:
                tid = int(thread_entry[len("thread-"):])
            except ValueError:
                continue
            streams += 1
            thread = ThreadSalvage(node=node, tid=tid)
            report.threads[f"{node}/thread-{tid}"] = thread
            indices = sorted(
                idx
                for entry in os.listdir(thread_dir)
                if (idx := _segment_index(entry)) is not None
            )
            if indices:
                # Gaps in the numbering are lost files, not lost tails.
                have = set(indices)
                for missing in range(indices[-1] + 1):
                    if missing not in have:
                        thread.missing_segments.append(missing)
                        report.missing_segments.append(
                            os.path.join(
                                node, thread_entry, f"seg-{missing:04d}.wal"
                            )
                        )
            for idx in indices:
                _salvage_segment(
                    os.path.join(thread_dir, f"seg-{idx:04d}.wal"),
                    report,
                    thread,
                    raw_records,
                    live_tail=live and idx == indices[-1],
                )
    if streams == 0:
        raise TraceFormatError(
            f"no WAL streams under {directory} "
            "(expected <node>/thread-<tid>/seg-*.wal)"
        )

    trace = Trace(name)
    decoded = []
    for data in raw_records:
        try:
            decoded.append(record_from_dict(data))
        except TraceFormatError:
            report.records_quarantined += 1
            report.bad_records += 1
            report.records_recovered -= 1
    decoded.sort(key=lambda r: r.seq)
    for record in decoded:
        trace.append(record)
    trace.partial = report.damaged
    trace.salvage_report = report
    return trace, report
