"""Run-time tracing (paper Section 3.1)."""

from repro.trace.records import (
    CATEGORY_EVENT,
    CATEGORY_LOCK,
    CATEGORY_MEM,
    CATEGORY_PUSH,
    CATEGORY_RPC,
    CATEGORY_SOCKET,
    CATEGORY_THREAD,
    TRACE_SCHEMA_VERSION,
    category_of,
    dump_records,
    load_records,
    record_from_dict,
    record_to_dict,
)
from repro.trace.salvage import SalvageReport, salvage_trace
from repro.trace.sampling import (
    Composite,
    HashRate,
    KeepAll,
    PerEpochBudget,
    PerLocationBudget,
    Reservoir,
    Sampler,
    SamplingPolicy,
    build_sampler,
    parse_policy,
)
from repro.trace.scope import (
    FullScope,
    SelectiveScope,
    TracingScope,
    find_comm_functions,
    find_comm_functions_in_source,
    selective_scope_for,
)
from repro.trace.stats import TraceStats, compute_stats, publish_stats
from repro.trace.store import Trace
from repro.trace.tracer import Tracer
from repro.trace.wal import WalSink, WalWriter

__all__ = [
    "Trace",
    "TRACE_SCHEMA_VERSION",
    "SalvageReport",
    "salvage_trace",
    "WalSink",
    "WalWriter",
    "TraceStats",
    "compute_stats",
    "publish_stats",
    "Tracer",
    "SamplingPolicy",
    "Sampler",
    "KeepAll",
    "HashRate",
    "PerLocationBudget",
    "PerEpochBudget",
    "Reservoir",
    "Composite",
    "parse_policy",
    "build_sampler",
    "TracingScope",
    "FullScope",
    "SelectiveScope",
    "find_comm_functions",
    "find_comm_functions_in_source",
    "selective_scope_for",
    "category_of",
    "record_to_dict",
    "record_from_dict",
    "dump_records",
    "load_records",
    "CATEGORY_MEM",
    "CATEGORY_RPC",
    "CATEGORY_SOCKET",
    "CATEGORY_EVENT",
    "CATEGORY_THREAD",
    "CATEGORY_LOCK",
    "CATEGORY_PUSH",
]
