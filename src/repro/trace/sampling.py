"""Budgeted sampling for the memory-access stream (production tracing).

DCatch records *every* in-scope memory access; at production traffic
that is the cost that blocks deployment.  "Dynamic Race Detection with
O(1) Samples" shows race recall survives aggressive sampling when the
sample is *location-aware*: races live at cold locations touched a
handful of times, while the record volume comes from hot ones.  The
policies here encode that split:

* HB-related and lock operations are **always kept** — the sampler is
  consulted only for ``MEM_KINDS``, so the happens-before graph built
  from a sampled trace has exactly the same ordering edges as the full
  one; only memory accesses (race *candidates*) are thinned.
* ``PerLocationBudget`` keeps the first N accesses of every location,
  which preserves cold locations — and hence most races — entirely.
* ``HashRate`` keeps a deterministic pseudo-random fraction of the
  rest; ``PerEpochBudget`` bounds accesses per trace epoch; and
  ``Reservoir`` maintains a fixed-size uniform sample per location,
  retroactively *evicting* earlier picks.
* ``Composite`` is a union: a record survives if **any** member policy
  admits it, so "budget + rate" keeps cold locations whole and hot
  ones thinned.

Every choice hashes ``(seed, location, ordinal)`` with CRC32 — no
global RNG — so a fixed ``(policy, seed)`` yields byte-identical
sampled traces across runs and machines, and ``config_fingerprint``
can refuse checkpoint resume across differing policies.

Spec grammar (``--sampling``)::

    1.0                 keep everything (sampling off; no-op sampler)
    0.1                 budgeted rate: budget:8 + rate:0.1 (the default
                        composite — a bare rate alone would give pair
                        recall ~rate^2, see docs/runtime.md)
    rate:0.1            pure hash-rate sampling
    budget:16           first 16 accesses per location
    epoch:500:8192      at most 500 accesses per 8192-record epoch
    reservoir:8         uniform 8-record sample per location
    budget:4+rate:0.05  '+' composes policies (union of samples)
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.runtime.ops import MEM_KINDS, OpEvent

#: Per-location always-keep budget used by the bare-rate shorthand.
DEFAULT_LOCATION_BUDGET = 8


def _chance(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) from a seed and discriminators."""
    text = ":".join(str(p) for p in (seed,) + parts)
    return zlib.crc32(text.encode("utf-8")) / 2**32


class SamplingPolicy:
    """Decides, per memory access, whether the tracer keeps it."""

    #: Short policy name, used in specs and drop metrics.
    kind = "abstract"
    #: False for policies that never reject (lets the tracer skip the
    #: "sampled" confidence downgrade when sampling is a no-op).
    can_drop = True

    def admit(self, event: OpEvent) -> bool:
        raise NotImplementedError

    def pop_evictions(self) -> List[int]:
        """Seqs of previously-admitted records to drop retroactively
        (reservoir replacement).  Empty for streaming-style policies."""
        return []

    def describe(self) -> str:
        raise NotImplementedError


class KeepAll(SamplingPolicy):
    """Rate 1.0 — sampling off, byte-identical to the unsampled tracer."""

    kind = "keep-all"
    can_drop = False

    def admit(self, event: OpEvent) -> bool:
        return True

    def describe(self) -> str:
        return "rate:1.0"


class HashRate(SamplingPolicy):
    """Keep each access with probability ``rate``, decided by hashing
    ``(seed, location, seq)`` — reproducible, no RNG state."""

    kind = "rate"

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed

    def admit(self, event: OpEvent) -> bool:
        return _chance(self.seed, "rate", event.location, event.seq) < self.rate

    def describe(self) -> str:
        return f"rate:{self.rate:g}"


class PerLocationBudget(SamplingPolicy):
    """Always keep the first ``budget`` accesses of each location.

    Cold locations — where races hide — fit under the budget whole;
    hot ones are cut off after the prefix."""

    kind = "budget"

    def __init__(self, budget: int) -> None:
        if budget < 1:
            raise ValueError(f"per-location budget must be >= 1, got {budget}")
        self.budget = budget
        self._seen: Dict[object, int] = {}

    def admit(self, event: OpEvent) -> bool:
        count = self._seen.get(event.location, 0) + 1
        self._seen[event.location] = count
        return count <= self.budget

    def describe(self) -> str:
        return f"budget:{self.budget}"


class PerEpochBudget(SamplingPolicy):
    """At most ``budget`` accesses per epoch of ``epoch_records``
    consecutive memory accesses — bounds trace growth per unit of
    workload progress regardless of location skew."""

    kind = "epoch"

    def __init__(self, budget: int, epoch_records: int) -> None:
        if budget < 1 or epoch_records < 1:
            raise ValueError(
                f"epoch budget/size must be >= 1, got {budget}/{epoch_records}"
            )
        self.budget = budget
        self.epoch_records = epoch_records
        self._seen = 0
        self._epoch = 0
        self._kept_in_epoch = 0

    def admit(self, event: OpEvent) -> bool:
        epoch = self._seen // self.epoch_records
        self._seen += 1
        if epoch != self._epoch:
            self._epoch = epoch
            self._kept_in_epoch = 0
        if self._kept_in_epoch < self.budget:
            self._kept_in_epoch += 1
            return True
        return False

    def describe(self) -> str:
        return f"epoch:{self.budget}:{self.epoch_records}"


class Reservoir(SamplingPolicy):
    """Uniform fixed-size sample per location (Vitter's Algorithm R with
    hashed choices).  Unlike the prefix budget this keeps *late* accesses
    too, at the price of retroactive eviction: when access i > capacity
    replaces a slot, the evicted record's seq is reported via
    ``pop_evictions`` and the tracer removes it from the in-memory trace.
    A WAL, once written, is not rewritten — the on-disk log is a
    superset of the reservoir sample."""

    kind = "reservoir"

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seed = seed
        self._slots: Dict[object, List[int]] = {}
        self._count: Dict[object, int] = {}
        self._evictions: List[int] = []

    def admit(self, event: OpEvent) -> bool:
        loc = event.location
        count = self._count.get(loc, 0) + 1
        self._count[loc] = count
        slots = self._slots.setdefault(loc, [])
        if count <= self.capacity:
            slots.append(event.seq)
            return True
        pick = int(_chance(self.seed, "reservoir", loc, count) * count)
        if pick < self.capacity:
            self._evictions.append(slots[pick])
            slots[pick] = event.seq
            return True
        return False

    def pop_evictions(self) -> List[int]:
        out, self._evictions = self._evictions, []
        return out

    def describe(self) -> str:
        return f"reservoir:{self.capacity}"


class Composite(SamplingPolicy):
    """Union of samples: admit when **any** member admits.

    Every member observes every access (state advances uniformly), so
    each maintains the sample it would alone and the kept set is their
    union.  A reservoir eviction is suppressed while some *other*
    member admitted that record — evicting it would punch a hole in the
    other policy's sample."""

    kind = "composite"

    def __init__(self, policies: List[SamplingPolicy]) -> None:
        if not policies:
            raise ValueError("composite policy needs at least one member")
        self.policies = policies
        self._pinned: Set[int] = set()

    @property
    def can_drop(self) -> bool:  # type: ignore[override]
        return any(p.can_drop for p in self.policies)

    def admit(self, event: OpEvent) -> bool:
        keep = False
        pinned = False
        for policy in self.policies:
            admitted = policy.admit(event)
            keep = keep or admitted
            if admitted and policy.kind != Reservoir.kind:
                pinned = True
        if pinned:
            self._pinned.add(event.seq)
        return keep

    def pop_evictions(self) -> List[int]:
        out: List[int] = []
        for policy in self.policies:
            out.extend(s for s in policy.pop_evictions() if s not in self._pinned)
        return out

    def describe(self) -> str:
        return "+".join(p.describe() for p in self.policies)


class Sampler:
    """Tracer-facing wrapper: consults the policy for memory accesses
    only (HB/lock records always pass) and counts what it drops."""

    def __init__(self, policy: SamplingPolicy, spec: str, seed: int = 0) -> None:
        self.policy = policy
        self.spec = spec
        self.seed = seed
        self.kept = 0
        #: Drops by record kind (``mem_read``/``mem_write``) plus
        #: ``evicted`` for reservoir replacements.
        self.dropped: Dict[str, int] = {}

    @property
    def can_drop(self) -> bool:
        return self.policy.can_drop

    def describe(self) -> str:
        return f"{self.policy.describe()}@seed={self.seed}"

    def nominal_rate(self) -> Optional[float]:
        """The hash-rate component, if any — published as
        ``trace_sampling_rate``.  None for purely budgeted policies."""
        return _nominal_rate(self.policy)

    def observe(self, event: OpEvent) -> Tuple[bool, List[int]]:
        """(keep?, seqs of previously-kept records to evict)."""
        if event.kind not in MEM_KINDS:
            return True, []
        keep = self.policy.admit(event)
        evictions = self.policy.pop_evictions()
        if keep:
            self.kept += 1
        else:
            key = event.kind.value
            self.dropped[key] = self.dropped.get(key, 0) + 1
        if evictions:
            self.dropped["evicted"] = self.dropped.get("evicted", 0) + len(
                evictions
            )
            self.kept -= len(evictions)
        return keep, evictions


def _nominal_rate(policy: SamplingPolicy) -> Optional[float]:
    if isinstance(policy, HashRate):
        return policy.rate
    if isinstance(policy, KeepAll):
        return 1.0
    if isinstance(policy, Composite):
        rates = [
            r
            for r in (_nominal_rate(p) for p in policy.policies)
            if r is not None
        ]
        return min(rates) if rates else None
    return None


def _parse_term(term: str, seed: int) -> SamplingPolicy:
    term = term.strip()
    if term in ("all", "keep-all"):
        return KeepAll()
    if ":" not in term:
        raise ValueError(f"unknown sampling policy term: {term!r}")
    name, _, rest = term.partition(":")
    try:
        if name == "rate":
            rate = float(rest)
            return KeepAll() if rate >= 1.0 else HashRate(rate, seed)
        if name == "budget":
            return PerLocationBudget(int(rest))
        if name == "epoch":
            budget_text, _, epoch_text = rest.partition(":")
            if not epoch_text:
                raise ValueError("epoch policy needs BUDGET:EPOCH_RECORDS")
            return PerEpochBudget(int(budget_text), int(epoch_text))
        if name == "reservoir":
            return Reservoir(int(rest), seed)
    except ValueError as exc:
        raise ValueError(f"bad sampling term {term!r}: {exc}") from None
    raise ValueError(f"unknown sampling policy term: {term!r}")


def parse_policy(spec: str, seed: int = 0) -> SamplingPolicy:
    """Parse a ``--sampling`` spec (see module docstring for grammar)."""
    spec = spec.strip()
    if not spec:
        raise ValueError("empty sampling spec")
    # Bare float: the recall-preserving default — a per-location budget
    # unioned with hash-rate sampling.  A pure rate R would need *both*
    # accesses of a racing pair to survive (recall ~ R^2); the budget
    # keeps cold locations (where races live) whole.
    try:
        rate = float(spec)
    except ValueError:
        rate = None
    if rate is not None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        if rate >= 1.0:
            return KeepAll()
        return Composite(
            [PerLocationBudget(DEFAULT_LOCATION_BUDGET), HashRate(rate, seed)]
        )
    terms = [t for t in spec.split("+") if t.strip()]
    if not terms:
        raise ValueError(f"empty sampling spec: {spec!r}")
    policies = [_parse_term(t, seed) for t in terms]
    return policies[0] if len(policies) == 1 else Composite(policies)


def build_sampler(spec: Optional[str], seed: int = 0) -> Optional[Sampler]:
    """None/empty spec means sampling off (no sampler at all)."""
    if not spec:
        return None
    return Sampler(parse_policy(spec, seed), spec=spec, seed=seed)
