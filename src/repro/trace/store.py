"""Trace container: per-thread record streams plus whole-run views.

The paper writes one trace file per thread of every process of every node
(Section 3.1); the analyzer then merges them.  ``Trace`` keeps both views:
``per_thread`` preserves the file structure (and serializes to JSON lines
per thread), while ``records`` is the merged, seq-ordered stream the HB
analysis consumes.
"""

from __future__ import annotations

import bisect
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional

from repro.runtime.ops import MEM_KINDS, OpEvent, OpKind
from repro.trace.records import category_of, dump_records, load_records


class Trace:
    """All records of one run, ordered by global sequence number."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.records: List[OpEvent] = []
        self._by_thread: Dict[int, List[OpEvent]] = defaultdict(list)
        #: True when this trace is known to be incomplete (rebuilt by
        #: WAL salvage with quarantined/lost records).  The HB analysis
        #: reads it to mark downstream results ``confidence: "partial"``.
        self.partial = False
        #: The ``SalvageReport`` that produced this trace, if any.
        self.salvage_report = None
        #: True when the tracer *deliberately* thinned the memory-access
        #: stream (``repro.trace.sampling``).  Downstream results carry
        #: ``confidence: "sampled"`` — weaker than ``"partial"`` because
        #: the loss is by policy, not by accident.
        self.sampled = False
        #: Nominal hash-rate of the sampling policy (None when purely
        #: budgeted, or when sampling is off).
        self.sampling_rate: Optional[float] = None
        #: Drops by record kind (plus ``evicted``) from the sampler —
        #: shared with ``Sampler.dropped`` when a sampler is attached.
        self.sampled_dropped: Dict[str, int] = {}
        #: Memory accesses rejected by the scope policy (selective
        #: tracing loss — distinct from sampling loss).
        self.dropped_mem = 0
        #: Events skipped because their node was absent from the bound
        #: cluster dict (pre-``bind()`` emission or unknown substrate).
        self.skipped_unbound = 0
        #: Events skipped from nodes marked untraced (the uninstrumented
        #: coordination-service contract).
        self.skipped_untraced = 0

    def append(self, event: OpEvent) -> None:
        # Records are *emitted* slightly out of order (a thread records its
        # operation after yielding to the scheduler), so keep the merged
        # stream sorted by sequence number on insert.  Inserts are near the
        # tail, so this stays cheap.
        if self.records and self.records[-1].seq > event.seq:
            bisect.insort(self.records, event, key=lambda r: r.seq)
        else:
            self.records.append(event)
        self._by_thread[event.tid].append(event)

    # -- views ---------------------------------------------------------------

    @property
    def per_thread(self) -> Dict[int, List[OpEvent]]:
        return dict(self._by_thread)

    def mem_accesses(self) -> List[OpEvent]:
        return [r for r in self.records if r.kind in MEM_KINDS]

    def of_kind(self, *kinds: OpKind) -> List[OpEvent]:
        wanted = set(kinds)
        return [r for r in self.records if r.kind in wanted]

    def remove_seq(self, seq: int) -> Optional[OpEvent]:
        """Drop a previously-appended record (reservoir eviction).

        Returns the removed record, or None if ``seq`` is not present.
        An attached WAL is *not* rewritten — the on-disk log stays a
        superset of the in-memory sample.
        """
        index = bisect.bisect_left(self.records, seq, key=lambda r: r.seq)
        if index >= len(self.records) or self.records[index].seq != seq:
            return None
        record = self.records.pop(index)
        thread = self._by_thread.get(record.tid)
        if thread is not None:
            try:
                thread.remove(record)
            except ValueError:
                pass
        return record

    def by_seq(self, seq: int) -> Optional[OpEvent]:
        lo, hi = 0, len(self.records) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            value = self.records[mid].seq
            if value == seq:
                return self.records[mid]
            if value < seq:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    # -- statistics (Tables 6 and 7) ------------------------------------------

    def category_counts(self) -> Counter:
        return Counter(category_of(r.kind) for r in self.records)

    def size_bytes(self) -> int:
        """Serialized size — the paper's 'trace size' metric."""
        return sum(len(dump_records(recs)) + 1 for recs in self._by_thread.values())

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- serialization ---------------------------------------------------------

    def dump_thread_files(self) -> Dict[int, str]:
        """One JSON-lines blob per thread, like the paper's trace files."""
        return {tid: dump_records(recs) for tid, recs in self._by_thread.items()}

    @classmethod
    def from_thread_files(cls, files: Dict[int, str], name: str = "trace") -> "Trace":
        trace = cls(name)
        merged: List[OpEvent] = []
        for blob in files.values():
            merged.extend(load_records(blob))
        merged.sort(key=lambda r: r.seq)
        for record in merged:
            trace.append(record)
        return trace

    def save(self, directory: str) -> None:
        import json
        import os

        os.makedirs(directory, exist_ok=True)
        for tid, blob in self.dump_thread_files().items():
            with open(os.path.join(directory, f"thread-{tid}.jsonl"), "w") as fh:
                fh.write(blob)
        # Loss metadata lives beside the records: the counters are not
        # derivable from the surviving records, and stats computed from
        # a reloaded trace must match the original.
        meta = {
            "sampled": self.sampled,
            "sampling_rate": self.sampling_rate,
            "sampled_dropped": self.sampled_dropped,
            "dropped_mem": self.dropped_mem,
            "skipped_unbound": self.skipped_unbound,
            "skipped_untraced": self.skipped_untraced,
        }
        with open(os.path.join(directory, "meta.json"), "w") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, directory: str, name: str = "trace") -> "Trace":
        import json
        import os

        files = {}
        for entry in sorted(os.listdir(directory)):
            if entry.startswith("thread-") and entry.endswith(".jsonl"):
                tid = int(entry[len("thread-"):-len(".jsonl")])
                with open(os.path.join(directory, entry)) as fh:
                    files[tid] = fh.read()
        trace = cls.from_thread_files(files, name)
        meta_path = os.path.join(directory, "meta.json")
        if os.path.exists(meta_path):  # pre-sampling saves have no meta
            with open(meta_path) as fh:
                meta = json.load(fh)
            trace.sampled = bool(meta.get("sampled", False))
            trace.sampling_rate = meta.get("sampling_rate")
            trace.sampled_dropped = dict(meta.get("sampled_dropped", {}))
            trace.dropped_mem = int(meta.get("dropped_mem", 0))
            trace.skipped_unbound = int(meta.get("skipped_unbound", 0))
            trace.skipped_untraced = int(meta.get("skipped_untraced", 0))
        return trace
