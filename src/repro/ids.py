"""Identifiers and call-stack capture.

The paper (Section 3.1.2) records three things per traced operation: the
operation type, its call stack, and an ID that lets the trace analyzer
group related records.  This module provides:

* ``Frame`` / ``CallStack`` — a compact, hashable call stack restricted to
  *system-under-test* frames (the analogue of filtering out JDK frames).
* ``Site`` — a static program location (file, function, line); the unit of
  deduplication for "static instruction pair" counts.
* ``IdAllocator`` — deterministic allocation of unique ids for threads,
  events, RPC calls, messages, heap objects.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

# Packages whose frames count as "system under test" code when capturing
# call stacks.  The runtime substrate itself is excluded, exactly like the
# paper excludes the RPC/event library internals from call stacks.
_DEFAULT_STACK_PACKAGES = ("repro/systems", "examples", "tests")


@dataclass(frozen=True)
class Frame:
    """One call-stack entry in system-under-test code."""

    path: str
    func: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}({self.func})"


@dataclass(frozen=True)
class Site:
    """A static program location: the dedup key for bug reports."""

    path: str
    func: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"

    @classmethod
    def of_frame(cls, frame: Frame) -> "Site":
        return cls(frame.path, frame.func, frame.line)


class CallStack(Tuple[Frame, ...]):
    """An immutable call stack, innermost frame first."""

    __slots__ = ()

    @property
    def top(self) -> Optional[Frame]:
        return self[0] if self else None

    @property
    def site(self) -> Optional[Site]:
        """The static site of the innermost system-under-test frame."""
        frame = self.top
        return Site.of_frame(frame) if frame is not None else None

    def pretty(self) -> str:
        return " <- ".join(str(f) for f in self) if self else "<no app frames>"


def _shorten(path: str) -> str:
    """Trim an absolute path down to its package-relative tail."""
    for marker in ("src/repro/", "repro/"):
        idx = path.rfind(marker)
        if idx >= 0:
            return path[idx:]
    parts = path.rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


def capture_stack(
    extra_packages: Iterable[str] = (),
    limit: int = 12,
) -> CallStack:
    """Capture the current call stack restricted to system-under-test frames.

    This is the reproduction of recording call stacks during Javassist
    instrumentation: runtime-substrate frames are skipped so that two
    dynamic operations issued from the same application code line share a
    ``Site``.
    """
    markers = tuple(_DEFAULT_STACK_PACKAGES) + tuple(extra_packages)
    frames = []
    f = sys._getframe(1)
    while f is not None and len(frames) < limit:
        path = f.f_code.co_filename
        if any(m in path for m in markers):
            frames.append(Frame(_shorten(path), f.f_code.co_name, f.f_lineno))
        f = f.f_back
    return CallStack(frames)


class IdAllocator:
    """Deterministic, per-cluster unique id allocation.

    The paper tags RPC calls and socket messages with random numbers
    generated at run time; determinism of the simulation lets us use a
    counter per category instead, which serves the same purpose (pairing
    send/receive records) while keeping runs reproducible.
    """

    def __init__(self) -> None:
        self._counters: dict = {}

    def next(self, category: str) -> int:
        value = self._counters.get(category, 0) + 1
        self._counters[category] = value
        return value

    def tag(self, category: str) -> str:
        """A readable unique tag such as ``rpc-17``."""
        return f"{category}-{self.next(category)}"
