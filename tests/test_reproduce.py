"""The one-shot reproduction report."""

import pytest

from repro.bench.reproduce import reproduce_all, write_report


def test_subset_report(tmp_path):
    report, tables = reproduce_all(only=["table3"])
    assert "Table 3" in report
    assert set(tables) == {"table3"}
    path = tmp_path / "report.txt"
    text = write_report(str(path), only=["table3"])
    assert path.read_text() == text


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        reproduce_all(only=["table99"])


def test_cli_reproduce_subset(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "rep.txt"
    assert main(["reproduce", "--only", "table3", "--out", str(out)]) == 0
    assert "Table 3" in out.read_text()
