"""The metrics registry: counters, gauges, histograms, labels, no-op path."""

import threading

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    use_registry,
)


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("requests_total", "requests seen")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("hits", "h")
    b = reg.counter("hits", "h")
    assert a is b
    with pytest.raises(TypeError):
        reg.gauge("hits", "kind mismatch")


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "queue depth")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_histogram_observe_and_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("latency", "l", buckets=(1, 10, 100))
    for v in (0.5, 5, 50, 500):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(555.5)
    # non-cumulative per-bucket counts, +Inf last
    assert h.bucket_counts() == [1, 1, 1, 1]
    buckets = h.value_dict()["buckets"]
    assert buckets["1"] == 1
    assert buckets["+Inf"] == 1


def test_histogram_default_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("t", "t")
    assert h.buckets == DEFAULT_BUCKETS
    assert len(h.bucket_counts()) == len(DEFAULT_BUCKETS) + 1


def test_labels_children_aggregate_into_parent():
    reg = MetricsRegistry()
    c = reg.counter("rpc_total", "rpcs")
    c.labels(method="get").inc(3)
    c.labels(method="put").inc(2)
    c.labels(method="get").inc()
    assert c.value == 6
    assert c.labels(method="get") is c.labels(method="get")
    snap = reg.snapshot()["rpc_total"]
    assert snap["series"]["method=get"]["value"] == 4
    assert snap["series"]["method=put"]["value"] == 2


def test_snapshot_shape():
    reg = MetricsRegistry(name="t")
    reg.counter("a", "a").inc()
    reg.gauge("b", "b").set(2)
    reg.histogram("c", "c").observe(1)
    snap = reg.snapshot()
    assert snap["a"]["kind"] == "counter"
    assert snap["b"]["kind"] == "gauge"
    assert snap["c"]["kind"] == "histogram"
    assert snap["c"]["count"] == 1


def test_counter_thread_safety():
    reg = MetricsRegistry()
    c = reg.counter("n", "n")
    threads = 8
    per_thread = 2000

    def work():
        child = c.labels(worker="w")
        for _ in range(per_thread):
            c.inc()
            child.inc()

    ts = [threading.Thread(target=work) for _ in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    # own increments + labeled-child increments, nothing lost
    assert c.value == 2 * threads * per_thread


def test_null_registry_is_inert():
    reg = NullRegistry()
    assert not reg.enabled
    c = reg.counter("x", "x")
    c.inc(100)
    c.labels(a="b").inc()
    reg.gauge("g", "g").set(5)
    reg.histogram("h", "h").observe(1.0)
    assert reg.snapshot() == {}


def test_active_registry_default_is_null():
    assert obs.get_registry() is NULL_REGISTRY or not obs.get_registry().enabled


def test_use_registry_swaps_and_restores():
    reg = MetricsRegistry()
    before = obs.get_registry()
    with use_registry(reg):
        assert obs.get_registry() is reg
        obs.counter("inside", "i").inc()
    assert obs.get_registry() is before
    assert reg.snapshot()["inside"]["value"] == 1


def test_module_level_helpers_hit_active_registry():
    reg = MetricsRegistry()
    with use_registry(reg):
        obs.counter("c", "c").inc()
        obs.gauge("g", "g").set(3)
        obs.histogram("h", "h").observe(0.2)
        assert obs.enabled()
    snap = reg.snapshot()
    assert snap["c"]["value"] == 1
    assert snap["g"]["value"] == 3
