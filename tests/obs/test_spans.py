"""Spans, the no-op tracer, and the exporters."""

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    SpanTracer,
    render_prometheus,
    render_span_table,
    profile_to_json,
    spans_to_chrome,
    use_tracer,
    write_chrome_trace,
)


def test_span_records_timing_and_closes():
    tracer = SpanTracer()
    with tracer.span("work") as s:
        pass
    assert s.end_wall is not None
    assert s.wall_seconds >= 0
    assert s.cpu_seconds >= 0
    assert s.status == "ok"
    assert tracer.closed() == [s]


def test_span_nesting_sets_parent_ids():
    tracer = SpanTracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            with tracer.span("leaf") as leaf:
                pass
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert leaf.parent_id == inner.span_id
    assert tracer.roots() == [outer]
    assert tracer.children_of(outer) == [inner]
    # siblings after the first tree still get fresh roots
    with tracer.span("second") as second:
        pass
    assert second.parent_id is None
    assert len(tracer.roots()) == 2


def test_span_exception_marks_error_and_propagates():
    tracer = SpanTracer()
    with pytest.raises(RuntimeError, match="boom"):
        with tracer.span("risky"):
            raise RuntimeError("boom")
    (span,) = tracer.closed()
    assert span.status == "error"
    assert "RuntimeError: boom" in span.error
    assert span.end_wall is not None  # closed despite the exception
    # the stack unwound: the next span is a root, not a child of "risky"
    with tracer.span("after") as after:
        pass
    assert after.parent_id is None


def test_span_attrs():
    tracer = SpanTracer()
    with tracer.span("s", records=10) as s:
        s.set(extra="yes")
    assert s.attrs == {"records": 10, "extra": "yes"}
    assert s.to_dict()["attrs"]["extra"] == "yes"


def test_module_level_span_uses_active_tracer():
    tracer = SpanTracer()
    with use_tracer(tracer):
        assert obs.tracing_enabled()
        with obs.span("region"):
            pass
    assert not obs.tracing_enabled() or obs.get_tracer() is not tracer
    assert [s.name for s in tracer.closed()] == ["region"]


def test_null_tracer_is_inert():
    with NULL_TRACER.span("anything") as s:
        s.set(a=1)
    assert NULL_TRACER.closed() == []
    assert not NULL_TRACER.enabled
    # the module default is the null tracer: span() costs nothing
    with obs.span("ambient"):
        pass
    assert NULL_TRACER.closed() == []


def test_chrome_export_schema():
    tracer = SpanTracer(name="t")
    with tracer.span("pipeline.tracing", scope="selective"):
        with tracer.span("hb.build"):
            pass
    doc = spans_to_chrome(tracer)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2
    assert meta and meta[0]["name"] == "thread_name"
    for event in complete:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(
            event
        )
        assert event["ts"] >= 0
        assert event["dur"] >= 0
    cats = {e["cat"] for e in complete}
    assert cats == {"pipeline", "hb"}
    # attrs survive as stringified args
    outer = next(e for e in complete if e["name"] == "pipeline.tracing")
    assert outer["args"]["scope"] == "selective"
    json.dumps(doc)  # must be serializable as-is


def test_write_chrome_trace_is_loadable(tmp_path):
    tracer = SpanTracer()
    with tracer.span("a"):
        pass
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), tracer)
    loaded = json.loads(path.read_text())
    assert isinstance(loaded["traceEvents"], list)
    assert loaded["traceEvents"][0]["name"] == "a"


def test_profile_to_json_document():
    tracer = SpanTracer(name="ZK-1144")
    reg = MetricsRegistry()
    reg.counter("c", "c").inc()
    with tracer.span("stage"):
        pass
    doc = profile_to_json(tracer, reg, bug_id="ZK-1144")
    assert doc["format"] == "repro-profile"
    assert doc["version"] == 1
    assert doc["bug_id"] == "ZK-1144"
    assert doc["profile"]["spans"][0]["name"] == "stage"
    assert doc["metrics"]["c"]["value"] == 1


def test_render_span_table_tree():
    tracer = SpanTracer()
    with tracer.span("pipeline.tracing"):
        with tracer.span("hb.build"):
            pass
    table = render_span_table(tracer)
    lines = table.splitlines()
    assert "span" in lines[0] and "share" in lines[0]
    assert any(line.startswith("pipeline.tracing") for line in lines)
    assert any(line.startswith("  hb.build") for line in lines)
    assert render_span_table(SpanTracer()) == "(no spans recorded)"


def test_render_prometheus_exposition():
    reg = MetricsRegistry()
    reg.counter("runs_total", "pipeline runs").inc(3)
    reg.counter("rpc_total", "rpcs").labels(method="get").inc(2)
    h = reg.histogram("lat", "latency", buckets=(1, 10))
    h.observe(0.5)
    h.observe(5)
    h.observe(50)
    text = render_prometheus(reg)
    assert "# HELP runs_total pipeline runs" in text
    assert "# TYPE runs_total counter" in text
    assert "runs_total 3" in text
    assert 'rpc_total{method="get"} 2' in text
    # histogram buckets are cumulative, +Inf equals the total count
    assert 'lat_bucket{le="1"} 1' in text
    assert 'lat_bucket{le="10"} 2' in text
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert "lat_sum 55.5" in text
    assert "lat_count 3" in text
