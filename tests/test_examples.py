"""The bundled examples run end to end (their asserts are the test)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.slow
def test_quickstart():
    _run_example("quickstart.py")


@pytest.mark.slow
def test_hbase_region_race():
    _run_example("hbase_region_race.py")


@pytest.mark.slow
def test_zookeeper_election_race():
    _run_example("zookeeper_election_race.py")


@pytest.mark.slow
def test_custom_system():
    _run_example("custom_system.py")


@pytest.mark.slow
def test_fault_injection():
    _run_example("fault_injection.py")


@pytest.mark.slow
def test_wordcount_pipeline():
    _run_example("wordcount_pipeline.py")


@pytest.mark.slow
def test_crash_salvage():
    _run_example("crash_salvage.py")
