"""Tracer: record capture, scope policies, serialization."""

from repro.runtime import Cluster, OpKind, sleep
from repro.trace import (
    FullScope,
    SelectiveScope,
    Trace,
    Tracer,
    find_comm_functions_in_source,
)


def _traced_cluster(seed=0, scope=None):
    cluster = Cluster(seed=seed)
    tracer = Tracer(scope=scope or FullScope()).bind(cluster)
    return cluster, tracer


def test_thread_ops_recorded():
    cluster, tracer = _traced_cluster()
    node = cluster.add_node("n")

    def child():
        pass

    def parent():
        t = node.spawn(child, name="child")
        node.join(t)

    node.spawn(parent, name="parent")
    cluster.run()
    kinds = [r.kind for r in tracer.trace]
    assert OpKind.THREAD_CREATE in kinds
    assert OpKind.THREAD_BEGIN in kinds
    assert OpKind.THREAD_END in kinds
    assert OpKind.THREAD_JOIN in kinds


def test_rpc_ops_recorded_and_paired():
    cluster, tracer = _traced_cluster()
    server = cluster.add_node("server")
    client = cluster.add_node("client")
    server.rpc_server.register("ping", lambda: "pong")
    client.spawn(lambda: client.rpc("server").ping(), name="caller")
    cluster.run()
    trace = tracer.trace
    creates = trace.of_kind(OpKind.RPC_CREATE)
    begins = trace.of_kind(OpKind.RPC_BEGIN)
    ends = trace.of_kind(OpKind.RPC_END)
    joins = trace.of_kind(OpKind.RPC_JOIN)
    assert len(creates) == len(begins) == len(ends) == len(joins) == 1
    assert creates[0].obj_id == begins[0].obj_id == ends[0].obj_id == joins[0].obj_id
    # Observed order: Create < Begin < End < Join.
    assert creates[0].seq < begins[0].seq < ends[0].seq < joins[0].seq
    # Begin/End run in a fresh handler segment on the server.
    assert begins[0].segment == ends[0].segment
    assert begins[0].segment != creates[0].segment
    assert begins[0].node == "server"


def test_mem_access_records_observed_write():
    cluster, tracer = _traced_cluster()
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    order = []

    def writer():
        var.set(42)
        order.append("w")

    def reader():
        while var.get() != 42:
            sleep(1)
        order.append("r")

    node.spawn(writer, name="w")
    node.spawn(reader, name="r")
    cluster.run()
    writes = [r for r in tracer.trace if r.kind is OpKind.MEM_WRITE]
    reads = [r for r in tracer.trace if r.kind is OpKind.MEM_READ]
    final_read = reads[-1]
    assert final_read.observed_write == writes[-1].seq


def test_untraced_node_contributes_no_records():
    cluster, tracer = _traced_cluster()
    cluster.zookeeper()  # untraced substrate node
    app = cluster.add_node("app")

    def work():
        zk = app.zk()
        zk.create("/x", data=1)
        zk.get_data("/x")

    app.spawn(work, name="w")
    cluster.run()
    assert all(r.node != "zk" for r in tracer.trace)
    # But client-boundary push records exist.
    assert tracer.trace.of_kind(OpKind.ZK_UPDATE)


def test_event_records_carry_queue_metadata():
    cluster, tracer = _traced_cluster()
    node = cluster.add_node("n")
    q = node.event_queue("single", consumers=1)
    q.register("e", lambda ev: None)
    node.spawn(lambda: q.post("e"), name="poster")
    cluster.run()
    begin = tracer.trace.of_kind(OpKind.EVENT_BEGIN)[0]
    assert begin.extra["single_consumer"] is True
    assert begin.extra["queue_name"] == "single"
    assert begin.in_handler


def test_selective_scope_drops_non_handler_accesses():
    scope = SelectiveScope(comm_functions=set())
    cluster, tracer = _traced_cluster(scope=scope)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    q = node.event_queue("q")
    q.register("touch", lambda ev: var.set(1))

    def main():
        var.get()  # outside any handler: dropped
        q.post("touch")

    node.spawn(main, name="main")
    cluster.run()
    mems = tracer.trace.mem_accesses()
    assert all(m.in_handler for m in mems)
    assert tracer.dropped_mem >= 1
    assert any(m.kind is OpKind.MEM_WRITE for m in mems)


def test_selective_scope_keeps_comm_function_extent():
    source = (
        "def talks(node):\n"
        "    node.send('b', 'x', 1)\n"
        "\n"
        "def silent(node):\n"
        "    return 1\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert "talks" in funcs
    assert "silent" not in funcs


def test_trace_roundtrip_serialization():
    cluster, tracer = _traced_cluster()
    node = cluster.add_node("n")
    var = node.shared_var("x")
    node.spawn(lambda: var.set(5), name="w")
    cluster.run()
    files = tracer.trace.dump_thread_files()
    restored = Trace.from_thread_files(files)
    assert len(restored) == len(tracer.trace)
    assert [r.seq for r in restored] == [r.seq for r in tracer.trace]
    kinds = [r.kind for r in restored]
    assert kinds == [r.kind for r in tracer.trace]


def test_trace_size_and_categories():
    cluster, tracer = _traced_cluster()
    node = cluster.add_node("n")
    var = node.shared_var("x")
    node.spawn(lambda: var.set(1), name="w")
    cluster.run()
    counts = tracer.trace.category_counts()
    assert counts["mem"] >= 1
    assert counts["thread"] >= 2
    assert tracer.trace.size_bytes() > 0


def test_unbound_tracer_skips_and_counts_unknown_nodes():
    from repro.ids import CallStack
    from repro.runtime.ops import OpEvent

    tracer = Tracer(scope=FullScope())  # never bound: no known nodes
    tracer.after(
        OpEvent(
            seq=0,
            kind=OpKind.MEM_WRITE,
            obj_id="x",
            node="ghost",
            tid=0,
            thread_name="t",
            segment=0,
            callstack=CallStack(),
            location=(1, "x"),
        )
    )
    # An uninstrumented process produces no records — but not silently.
    assert len(tracer.trace) == 0
    assert tracer.trace.skipped_unbound == 1
    assert tracer.trace.skipped_untraced == 0


def test_untraced_substrate_skips_are_counted():
    cluster, tracer = _traced_cluster()
    cluster.zookeeper()  # untraced substrate node
    app = cluster.add_node("app")

    def work():
        zk = app.zk()
        zk.create("/x", data=1)
        zk.get_data("/x")

    app.spawn(work, name="w")
    cluster.run()
    assert all(r.node != "zk" for r in tracer.trace)
    assert tracer.trace.skipped_untraced >= 1
