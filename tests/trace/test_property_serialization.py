"""Property-based tests: trace record serialization round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ids import CallStack, Frame
from repro.runtime.ops import OpEvent, OpKind
from repro.trace import Trace, dump_records, load_records, record_from_dict, record_to_dict

_kinds = st.sampled_from(list(OpKind))
_obj_ids = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(alphabet="abcdefgh-/0123456789", min_size=1, max_size=16),
    st.tuples(st.text(alphabet="abc/", min_size=1, max_size=8), st.integers(0, 99)),
)
_frames = st.builds(
    Frame,
    path=st.sampled_from(
        ["repro/systems/x/a.py", "repro/systems/y/b.py", "examples/q.py"]
    ),
    func=st.sampled_from(["f", "g", "handler", "poll"]),
    line=st.integers(min_value=1, max_value=500),
)
_stacks = st.lists(_frames, max_size=4).map(CallStack)
_locations = st.one_of(
    st.none(), st.tuples(st.integers(0, 50), st.text("abck#", min_size=1, max_size=6))
)

_events = st.builds(
    OpEvent,
    seq=st.integers(min_value=1, max_value=1_000_000),
    kind=_kinds,
    obj_id=_obj_ids,
    node=st.sampled_from(["am", "nm1", "zk2"]),
    tid=st.integers(0, 64),
    thread_name=st.sampled_from(["am.rpc", "nm1.main"]),
    segment=st.integers(0, 512),
    callstack=_stacks,
    location=_locations,
    observed_write=st.one_of(st.none(), st.integers(1, 1_000_000)),
    in_handler=st.booleans(),
    extra=st.dictionaries(
        st.sampled_from(["method", "verb", "queue", "etype"]),
        st.one_of(st.text(max_size=8), st.integers(0, 99), st.booleans()),
        max_size=3,
    ),
)


@settings(max_examples=100, deadline=None)
@given(event=_events)
def test_single_record_roundtrip(event):
    restored = record_from_dict(record_to_dict(event))
    assert restored.seq == event.seq
    assert restored.kind == event.kind
    assert restored.obj_id == event.obj_id
    assert restored.node == event.node
    assert restored.tid == event.tid
    assert restored.segment == event.segment
    assert restored.callstack == event.callstack
    assert restored.location == event.location
    assert restored.observed_write == event.observed_write
    assert restored.in_handler == event.in_handler
    assert restored.extra == event.extra


@settings(max_examples=40, deadline=None)
@given(events=st.lists(_events, max_size=20))
def test_record_stream_roundtrip(events):
    # Make seqs unique so ordering is well defined.
    events = [
        OpEvent(**{**e.__dict__, "seq": i + 1}) for i, e in enumerate(events)
    ]
    restored = load_records(dump_records(events))
    assert [r.seq for r in restored] == [e.seq for e in events]
    assert [r.kind for r in restored] == [e.kind for e in events]


@settings(max_examples=30, deadline=None)
@given(events=st.lists(_events, max_size=30))
def test_trace_keeps_seq_order_regardless_of_insertion(events):
    events = [
        OpEvent(**{**e.__dict__, "seq": i + 1}) for i, e in enumerate(events)
    ]
    trace = Trace()
    # Insert in a scrambled but deterministic order.
    for event in sorted(events, key=lambda e: (e.tid, -e.seq)):
        trace.append(event)
    seqs = [r.seq for r in trace.records]
    assert seqs == sorted(seqs)
    for event in events:
        assert trace.by_seq(event.seq) is not None


# -- schema versioning -------------------------------------------------------

_unicode_obj_ids = st.one_of(
    st.text(min_size=1, max_size=12),  # full unicode, including emoji etc.
    st.tuples(st.text(min_size=1, max_size=6), st.integers(0, 999)),
)
@settings(max_examples=100, deadline=None)
@given(event=_events, obj_id=_unicode_obj_ids)
def test_roundtrip_preserves_unicode_and_tuple_obj_ids(event, obj_id):
    from repro.trace import TRACE_SCHEMA_VERSION, record_from_dict, record_to_dict

    event = OpEvent(**{**event.__dict__, "obj_id": obj_id})
    data = record_to_dict(event)
    assert data["v"] == TRACE_SCHEMA_VERSION
    restored = record_from_dict(data)
    assert restored.obj_id == event.obj_id
    assert restored.extra == event.extra


@settings(max_examples=50, deadline=None)
@given(event=_events, version=st.integers(min_value=2, max_value=99))
def test_unknown_schema_version_rejected(event, version):
    from repro.errors import TraceFormatError
    from repro.trace import record_from_dict, record_to_dict

    data = record_to_dict(event)
    data["v"] = version
    try:
        record_from_dict(data)
    except TraceFormatError as exc:
        assert str(version) in str(exc)
    else:
        raise AssertionError("future schema version must be rejected")


def test_missing_version_field_defaults_to_v1():
    # Pre-versioning traces carry no "v" key; they must keep loading.
    from repro.trace import record_from_dict, record_to_dict

    event = OpEvent(
        seq=1, kind=OpKind.MEM_READ, obj_id="x", node="n", tid=0,
        thread_name="t", segment=0, callstack=CallStack([]),
    )
    data = record_to_dict(event)
    del data["v"]
    assert record_from_dict(data).seq == 1


@settings(max_examples=40, deadline=None)
@given(events=st.lists(_events, min_size=1, max_size=10))
def test_wal_roundtrip_equals_direct_roundtrip(tmp_path_factory, events):
    """Records that pass through the WAL + salvage must decode exactly
    like records that round-trip through record_to_dict alone."""
    from repro.trace import WalSink, salvage_trace

    events = [
        OpEvent(**{**e.__dict__, "seq": i + 1, "node": "n", "tid": 0})
        for i, e in enumerate(events)
    ]
    directory = str(tmp_path_factory.mktemp("wal"))
    sink = WalSink(directory, flush_every=1)
    for event in events:
        sink.append(event)
    sink.close()
    trace, report = salvage_trace(directory)
    assert not report.damaged
    assert [r.seq for r in trace.records] == [e.seq for e in events]
    for restored, original in zip(trace.records, events):
        assert restored.kind == original.kind
        assert restored.obj_id == original.obj_id
        assert restored.callstack == original.callstack
        assert restored.extra == original.extra
