"""WAL writer framing, rotation, sealing, and crash abandonment."""

import json
import os
import zlib

import pytest

from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace import Tracer, WalSink, WalWriter
from repro.trace.wal import encode_record_line, encode_seal_line


def _event(seq, node="n1", tid=0, kind=OpKind.MEM_WRITE):
    return OpEvent(
        seq=seq, kind=kind, obj_id=f"{node}.x", node=node, tid=tid,
        thread_name=f"{node}.t{tid}", segment=0, callstack=CallStack([]),
    )


def _segments(directory, node, tid):
    d = os.path.join(directory, node, f"thread-{tid}")
    return sorted(f for f in os.listdir(d)) if os.path.isdir(d) else []


def _read(directory, node, tid, segment):
    path = os.path.join(directory, node, f"thread-{tid}", segment)
    with open(path, "rb") as fh:
        return fh.read()


class TestFraming:
    def test_record_line_layout(self):
        payload = b'{"a": 1}'
        line = encode_record_line(payload)
        assert line.startswith(b"R ")
        assert line.endswith(payload + b"\n")
        length = int(line[2:10], 16)
        crc = int(line[11:19], 16)
        assert length == len(payload)
        assert crc == zlib.crc32(payload) & 0xFFFFFFFF

    def test_seal_line_layout(self):
        line = encode_seal_line(3, 0xDEADBEEF)
        assert line == b"S 00000003 deadbeef\n"


class TestWalWriter:
    def test_clean_close_writes_header_records_seal(self, tmp_path):
        writer = WalWriter(str(tmp_path), "n1", 0, flush_every=1)
        writer.append({"seq": 1})
        writer.append({"seq": 2})
        writer.close()
        data = _read(str(tmp_path), "n1", 0, "seg-0000.wal")
        lines = data.split(b"\n")
        assert lines[0].startswith(b"H ")
        header = json.loads(lines[0][2:])
        assert header["format"] == "repro-wal"
        assert header["node"] == "n1" and header["tid"] == 0
        assert lines[1].startswith(b"R ") and lines[2].startswith(b"R ")
        assert lines[3].startswith(b"S ")
        assert writer.records_written == 2
        assert writer.segments_sealed == 1

    def test_rotation_seals_full_segments(self, tmp_path):
        writer = WalWriter(
            str(tmp_path), "n1", 0, segment_records=4, flush_every=1
        )
        for seq in range(10):
            writer.append({"seq": seq})
        writer.close()
        segs = _segments(str(tmp_path), "n1", 0)
        assert segs == ["seg-0000.wal", "seg-0001.wal", "seg-0002.wal"]
        assert writer.segments_sealed == 3
        # Every segment, including the short final one, carries a seal.
        for seg in segs:
            assert b"\nS " in _read(str(tmp_path), "n1", 0, seg)

    def test_abandon_leaves_unsealed_torn_tail(self, tmp_path):
        writer = WalWriter(str(tmp_path), "n1", 0, flush_every=100)
        for seq in range(8):
            writer.append({"seq": seq, "pad": "x" * 40})
        writer.abandon()
        data = _read(str(tmp_path), "n1", 0, "seg-0000.wal")
        assert b"\nS " not in data  # no seal: the crash got there first
        # A prefix of the buffer survived; the next record is torn.
        complete = [l for l in data.split(b"\n") if l.startswith(b"R ")]
        assert 0 < len(complete) < 8
        assert not data.endswith(b"\n")

    def test_append_after_close_is_a_no_op(self, tmp_path):
        writer = WalWriter(str(tmp_path), "n1", 0, flush_every=1)
        writer.append({"seq": 1})
        writer.close()
        writer.append({"seq": 2})
        assert writer.records_written == 1

    def test_flush_every_buffers_appends(self, tmp_path):
        writer = WalWriter(str(tmp_path), "n1", 0, flush_every=4)
        writer.append({"seq": 1})
        # Nothing flushed yet: only the header is on disk.
        data = _read(str(tmp_path), "n1", 0, "seg-0000.wal")
        assert b"R " not in data
        for seq in range(2, 6):
            writer.append({"seq": seq})
        data = _read(str(tmp_path), "n1", 0, "seg-0000.wal")
        assert data.count(b"\nR ") + data.startswith(b"R ") >= 4
        writer.close()


class TestWalSink:
    def test_routes_streams_by_node_and_thread(self, tmp_path):
        sink = WalSink(str(tmp_path), flush_every=1)
        sink.append(_event(1, node="a", tid=0))
        sink.append(_event(2, node="a", tid=1))
        sink.append(_event(3, node="b", tid=0))
        sink.close()
        assert _segments(str(tmp_path), "a", 0) == ["seg-0000.wal"]
        assert _segments(str(tmp_path), "a", 1) == ["seg-0000.wal"]
        assert _segments(str(tmp_path), "b", 0) == ["seg-0000.wal"]
        assert sink.records_written == 3
        assert sink.segments_sealed == 3
        assert sink.bytes_written > 0

    def test_abandon_node_stops_its_streams_only(self, tmp_path):
        sink = WalSink(str(tmp_path), flush_every=1)
        sink.append(_event(1, node="a"))
        sink.append(_event(2, node="b"))
        sink.abandon_node("a")
        sink.append(_event(3, node="a"))  # dropped: node is gone
        sink.append(_event(4, node="b"))
        sink.close()
        a_data = _read(str(tmp_path), "a", 0, "seg-0000.wal")
        b_data = _read(str(tmp_path), "b", 0, "seg-0000.wal")
        assert b"\nS " not in a_data  # crashed stream never sealed
        assert b"\nS " in b_data
        assert b_data.count(b"R ") == 2

    def test_tracer_wires_wal_through_run(self, tmp_path):
        from repro.runtime import Cluster
        from repro.trace import FullScope

        sink = WalSink(str(tmp_path), flush_every=1)
        cluster = Cluster(seed=0)
        tracer = Tracer(scope=FullScope(), wal=sink).bind(cluster)
        node = cluster.add_node("n")
        var = node.shared_var("x", 0)
        node.spawn(lambda: var.set(1), name="w")
        cluster.run()
        tracer.close()
        assert sink.records_written == len(tracer.trace)
        assert sink.records_written > 0
