"""Salvage recovers every intact record and quarantines the rest."""

import json
import os

import pytest

from repro.errors import TraceFormatError
from repro.ids import CallStack
from repro.runtime.ops import OpEvent, OpKind
from repro.trace import WalSink, WalWriter, salvage_trace
from repro.trace.wal import encode_record_line


def _event(seq, node="n1", tid=0):
    return OpEvent(
        seq=seq, kind=OpKind.MEM_WRITE, obj_id=f"{node}.x", node=node,
        tid=tid, thread_name=f"{node}.t{tid}", segment=0,
        callstack=CallStack([]),
    )


def _write_stream(directory, count, node="n1", tid=0, **kwargs):
    sink = WalSink(str(directory), **kwargs)
    for seq in range(1, count + 1):
        sink.append(_event(seq, node=node, tid=tid))
    return sink


def _segment_path(directory, node="n1", tid=0, segment=0):
    return os.path.join(
        str(directory), node, f"thread-{tid}", f"seg-{segment:04d}.wal"
    )


class TestCleanRoundTrip:
    def test_all_records_recovered_in_seq_order(self, tmp_path):
        sink = _write_stream(tmp_path, 10, flush_every=1)
        sink.close()
        trace, report = salvage_trace(str(tmp_path))
        assert not report.damaged
        assert report.records_recovered == 10
        assert report.sealed_segments == 1
        assert [r.seq for r in trace.records] == list(range(1, 11))
        assert trace.partial is False
        assert trace.salvage_report is report

    def test_multi_stream_merge(self, tmp_path):
        sink = WalSink(str(tmp_path), flush_every=1)
        sink.append(_event(3, node="a", tid=0))
        sink.append(_event(1, node="b", tid=0))
        sink.append(_event(2, node="a", tid=1))
        sink.close()
        trace, report = salvage_trace(str(tmp_path))
        assert not report.damaged
        assert [r.seq for r in trace.records] == [1, 2, 3]
        assert set(report.threads) == {
            "a/thread-0", "a/thread-1", "b/thread-0"
        }


class TestDamage:
    def test_abandoned_stream_yields_partial_trace(self, tmp_path):
        sink = _write_stream(tmp_path, 12, flush_every=100)
        sink.abandon_node("n1")
        trace, report = salvage_trace(str(tmp_path))
        assert report.damaged
        assert report.unsealed_segments == 1
        assert report.torn_records == 1
        assert 0 < report.records_recovered < 12
        assert trace.partial is True

    def test_crc_corruption_quarantines_one_record(self, tmp_path):
        sink = _write_stream(tmp_path, 5, flush_every=1)
        sink.close()
        path = _segment_path(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        # Flip one byte inside the third record's JSON payload.
        idx = data.find(b'"seq": 3')
        assert idx > 0
        data = data[:idx] + b'"seq": 9' + data[idx + 8:]
        with open(path, "wb") as fh:
            fh.write(data)
        trace, report = salvage_trace(str(tmp_path))
        assert report.crc_mismatches == 1
        assert report.records_recovered == 4
        assert report.damaged
        assert [r.seq for r in trace.records] == [1, 2, 4, 5]
        # Quarantine records where, not just how many.
        assert any("CRC" in q.reason for q in report.quarantined)
        assert report.quarantined[0].byte_end > report.quarantined[0].byte_start

    def test_seal_mismatch_detected(self, tmp_path):
        sink = _write_stream(tmp_path, 4, flush_every=1)
        sink.close()
        path = _segment_path(tmp_path)
        with open(path, "rb") as fh:
            lines = fh.read().split(b"\n")
        # Drop one record line but keep the (now lying) seal.
        lines = [l for l in lines if b'"seq": 2' not in l]
        with open(path, "wb") as fh:
            fh.write(b"\n".join(lines))
        trace, report = salvage_trace(str(tmp_path))
        assert report.seal_mismatches == 1
        assert report.damaged
        assert report.records_recovered == 3

    def test_missing_segment_reported(self, tmp_path):
        sink = WalSink(str(tmp_path), segment_records=3, flush_every=1)
        for seq in range(1, 10):
            sink.append(_event(seq))
        sink.close()
        os.remove(_segment_path(tmp_path, segment=1))
        trace, report = salvage_trace(str(tmp_path))
        assert report.damaged
        assert len(report.missing_segments) == 1
        assert "seg-0001" in report.missing_segments[0]
        assert report.threads["n1/thread-0"].missing_segments == [1]
        assert [r.seq for r in trace.records] == [1, 2, 3, 7, 8, 9]

    def test_garbage_and_bad_json_quarantined(self, tmp_path):
        sink = _write_stream(tmp_path, 2, flush_every=1)
        sink.close()
        path = _segment_path(tmp_path)
        with open(path, "rb") as fh:
            data = fh.read()
        seal_at = data.rindex(b"S ")
        injected = b"not a wal line\n" + encode_record_line(b"{broken json")
        with open(path, "wb") as fh:
            fh.write(data[:seal_at] + injected + data[seal_at:])
        trace, report = salvage_trace(str(tmp_path))
        assert report.records_recovered == 2
        assert report.records_quarantined == 2
        assert report.bad_records >= 1
        reasons = {q.reason for q in report.quarantined}
        assert any("not valid JSON" in r for r in reasons)
        assert any("unrecognized" in r for r in reasons)

    def test_empty_trace_from_fully_torn_wal(self, tmp_path):
        stream_dir = tmp_path / "n1" / "thread-0"
        stream_dir.mkdir(parents=True)
        (stream_dir / "seg-0000.wal").write_bytes(b"R 000000ff 0000")
        trace, report = salvage_trace(str(tmp_path))
        assert len(trace) == 0
        assert report.damaged
        assert report.torn_records == 1


class TestReport:
    def test_to_dict_and_render(self, tmp_path):
        sink = _write_stream(tmp_path, 12, flush_every=100)
        sink.abandon_node("n1")
        _, report = salvage_trace(str(tmp_path))
        data = report.to_dict()
        assert data["format"] == "repro-salvage-report"
        assert data["damaged"] is True
        assert data["records_recovered"] == report.records_recovered
        assert data["threads"]["n1/thread-0"]["unsealed_segments"] == 1
        json.dumps(data)  # must be JSON-serializable as-is
        text = report.render()
        assert "DAMAGED" in text
        assert "torn" in text

    def test_clean_render(self, tmp_path):
        sink = _write_stream(tmp_path, 3, flush_every=1)
        sink.close()
        _, report = salvage_trace(str(tmp_path))
        assert "clean" in report.render()


class TestErrors:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(TraceFormatError):
            salvage_trace(str(tmp_path / "nope"))

    def test_directory_without_streams_raises(self, tmp_path):
        (tmp_path / "unrelated.txt").write_text("hi")
        with pytest.raises(TraceFormatError, match="no WAL streams"):
            salvage_trace(str(tmp_path))


class TestLiveSalvage:
    """``live=True``: a WAL still being written salvages clean."""

    def _live_wal(self, tmp_path):
        """A stream mid-capture: one sealed segment, then a growing
        unsealed tail ending in a half-flushed record."""
        sink = _write_stream(
            tmp_path, 6, flush_every=1, segment_records=4
        )
        # seg-0000 sealed with 4 records; seg-0001 has 2 and no seal.
        tail = _segment_path(tmp_path, segment=1)
        from repro.trace.records import record_to_dict

        payload = json.dumps(record_to_dict(_event(7))).encode()
        with open(tail, "ab") as fh:
            line = encode_record_line(payload)
            fh.write(line[: len(line) // 2])  # writer cut mid-append
        return sink

    def test_growing_tail_is_damage_without_live(self, tmp_path):
        self._live_wal(tmp_path)
        _trace, report = salvage_trace(str(tmp_path))
        assert report.damaged
        assert report.unsealed_segments == 1
        assert report.torn_records == 1

    def test_growing_tail_is_in_progress_with_live(self, tmp_path):
        self._live_wal(tmp_path)
        trace, report = salvage_trace(str(tmp_path), live=True)
        assert not report.damaged
        assert trace.partial is False
        assert report.unsealed_segments == 0
        assert report.in_progress_segments == 1
        assert report.records_in_progress == 1
        assert report.records_quarantined == 0
        # Every fully-flushed record is still recovered.
        assert report.records_recovered == 6
        assert [r.seq for r in trace.records] == list(range(1, 7))
        doc = report.to_dict()
        assert doc["in_progress_segments"] == 1
        assert doc["records_in_progress"] == 1
        assert "in progress (live)" in report.render()

    def test_live_does_not_excuse_damage_before_the_tail(self, tmp_path):
        self._live_wal(tmp_path)
        # Corrupt a record inside the *sealed* first segment: that is
        # real damage regardless of live mode.
        path = _segment_path(tmp_path, segment=0)
        data = open(path, "rb").read()
        open(path, "wb").write(data.replace(b'"seq": 2', b'"seq!: 2', 1))
        _trace, report = salvage_trace(str(tmp_path), live=True)
        assert report.damaged
        assert report.records_quarantined == 1
        assert report.in_progress_segments == 1

    def test_live_missing_segment_is_still_damage(self, tmp_path):
        self._live_wal(tmp_path)
        os.rename(
            _segment_path(tmp_path, segment=0),
            str(tmp_path) + "/gone.bak",
        )
        _trace, report = salvage_trace(str(tmp_path), live=True)
        assert report.damaged
        assert report.missing_segments
