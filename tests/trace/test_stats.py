"""Trace statistics."""

from repro.runtime import Cluster
from repro.trace import FullScope, Tracer, compute_stats


def test_stats_on_small_workload():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    var = a.shared_var("x", 0)
    b.rpc_server.register("get", lambda: 1)

    def worker():
        var.set(1)
        var.get()
        a.rpc("b").get()

    a.spawn(worker, name="w")
    cluster.run()

    stats = compute_stats(tracer.trace)
    assert stats.total == len(tracer.trace)
    assert stats.reads == 1
    assert stats.writes == 1
    assert stats.mem_locations == 1
    assert stats.per_node["a"] > 0
    assert stats.per_node["b"] > 0  # the RPC handler side
    assert stats.handler_segments >= 1
    assert "records:" in stats.render()


def test_stats_on_benchmark_trace():
    from repro.systems import workload_by_id
    from repro.trace import selective_scope_for

    workload = workload_by_id("ZK-1144")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules())).bind(cluster)
    cluster.run()
    stats = compute_stats(tracer.trace)
    assert stats.segments > stats.handler_segments
    assert stats.size_bytes == tracer.trace.size_bytes()
    assert sum(stats.per_thread.values()) == stats.total
    assert stats.hb_ops > 0
    assert sum(stats.bytes_by_category.values()) == stats.size_bytes
    assert set(stats.bytes_by_category) == set(stats.categories)


def test_stats_survive_save_load_round_trip(tmp_path):
    from repro.systems import workload_by_id
    from repro.trace import Trace, selective_scope_for

    workload = workload_by_id("ZK-1270")
    cluster = workload.cluster(0)
    tracer = Tracer(scope=selective_scope_for(workload.modules())).bind(cluster)
    cluster.run()

    before = compute_stats(tracer.trace)
    tracer.trace.save(str(tmp_path))
    after = compute_stats(Trace.load(str(tmp_path)))
    assert after == before


def test_publish_stats_mirrors_into_registry():
    from repro.obs import MetricsRegistry
    from repro.trace import publish_stats

    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    a = cluster.add_node("a")
    var = a.shared_var("x", 0)
    a.spawn(lambda: var.set(1), name="w")
    cluster.run()

    stats = compute_stats(tracer.trace)
    registry = MetricsRegistry()
    publish_stats(stats, registry)
    snap = registry.snapshot()
    assert snap["trace_records"]["value"] == stats.total
    assert snap["trace_size_bytes"]["value"] == stats.size_bytes
    assert snap["trace_mem_writes"]["value"] == stats.writes
    by_cat = snap["trace_bytes_by_category"]["series"]
    for category, size in stats.bytes_by_category.items():
        assert by_cat[f"category={category}"]["value"] == size


def test_scope_drops_surface_in_stats_and_metrics():
    from repro.obs import MetricsRegistry
    from repro.trace import SelectiveScope, publish_stats

    cluster = Cluster(seed=0)
    tracer = Tracer(scope=SelectiveScope(comm_functions=set())).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)

    def main():
        var.get()  # outside any handler: dropped by the scope
        var.set(1)

    node.spawn(main, name="main")
    cluster.run()

    stats = compute_stats(tracer.trace)
    assert stats.dropped_mem >= 1
    text = stats.render()
    assert f"dropped by scope: {stats.dropped_mem}" in text

    registry = MetricsRegistry()
    publish_stats(stats, registry)
    snap = registry.snapshot()
    assert snap["trace_dropped_mem_total"]["value"] == stats.dropped_mem
    assert snap["trace_skipped_unbound_total"]["value"] == 0
    assert snap["trace_skipped_untraced_total"]["value"] == 0


def test_sampling_stats_surface_rate_and_drop_kinds():
    from repro.obs import MetricsRegistry
    from repro.trace import build_sampler, publish_stats

    cluster = Cluster(seed=0)
    sampler = build_sampler("rate:0.0")
    tracer = Tracer(scope=FullScope(), sampler=sampler).bind(cluster)
    node = cluster.add_node("n")
    var = node.shared_var("x", 0)
    node.spawn(lambda: var.set(1), name="w")
    cluster.run()

    stats = compute_stats(tracer.trace)
    assert stats.sampled is True
    assert "sampling: rate=0," in stats.render()

    registry = MetricsRegistry()
    publish_stats(stats, registry)
    snap = registry.snapshot()
    assert snap["trace_sampling_rate"]["value"] == 0.0
    series = snap["trace_sampled_dropped_total"]["series"]
    assert series["kind=mem_write"]["value"] >= 1
