"""Trace statistics."""

from repro.runtime import Cluster
from repro.trace import FullScope, Tracer, compute_stats


def test_stats_on_small_workload():
    cluster = Cluster(seed=0)
    tracer = Tracer(scope=FullScope()).bind(cluster)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    var = a.shared_var("x", 0)
    b.rpc_server.register("get", lambda: 1)

    def worker():
        var.set(1)
        var.get()
        a.rpc("b").get()

    a.spawn(worker, name="w")
    cluster.run()

    stats = compute_stats(tracer.trace)
    assert stats.total == len(tracer.trace)
    assert stats.reads == 1
    assert stats.writes == 1
    assert stats.mem_locations == 1
    assert stats.per_node["a"] > 0
    assert stats.per_node["b"] > 0  # the RPC handler side
    assert stats.handler_segments >= 1
    assert "records:" in stats.render()


def test_stats_on_benchmark_trace():
    from repro.systems import workload_by_id
    from repro.trace import selective_scope_for

    workload = workload_by_id("ZK-1144")
    cluster = workload.cluster(0, churn=False)
    tracer = Tracer(scope=selective_scope_for(workload.modules())).bind(cluster)
    cluster.run()
    stats = compute_stats(tracer.trace)
    assert stats.segments > stats.handler_segments
    assert stats.size_bytes == tracer.trace.size_bytes()
    assert sum(stats.per_thread.values()) == stats.total
