"""The static communication-function scan (the WALA-analog pre-pass)."""

from repro.trace import (
    SelectiveScope,
    find_comm_functions,
    find_comm_functions_in_source,
)


def test_rpc_call_marks_function():
    source = "def f(node):\n    return node.rpc('b').m()\n"
    assert find_comm_functions_in_source(source) == {"f"}


def test_socket_send_marks_function():
    source = "def g(node):\n    node.send('b', 'v', 1)\n"
    assert "g" in find_comm_functions_in_source(source)


def test_zk_update_marks_function_only_with_zk_receiver():
    source = (
        "def zk_user(self):\n"
        "    self.zk.create('/x')\n"
        "\n"
        "def list_user(self, items):\n"
        "    items.create('x')\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert "zk_user" in funcs
    assert "list_user" not in funcs


def test_nested_functions_scanned():
    source = (
        "def outer(node):\n"
        "    def inner():\n"
        "        node.send('b', 'v', 1)\n"
        "    return inner\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert "inner" in funcs
    # inner's body runs when *inner* is called, not when outer is:
    # merely defining (and returning) a comm helper does not make the
    # enclosing function communicate.
    assert "outer" not in funcs


def test_nested_function_called_marks_outer_via_closure():
    source = (
        "def outer(node):\n"
        "    def inner():\n"
        "        node.send('b', 'v', 1)\n"
        "    inner()\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert funcs == {"inner", "outer"}


def test_nested_function_spawned_marks_outer_via_closure():
    """Handing a comm closure to a thread counts as an edge: the
    spawn-site's own accesses are part of the handoff."""
    source = (
        "def start_churn(self):\n"
        "    def churn():\n"
        "        self.node.send('b', 'v', 1)\n"
        "    self.node.spawn(churn)\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert funcs == {"churn", "start_churn"}


def test_pure_computation_not_marked():
    source = "def calc(x):\n    return x * 2\n"
    assert not find_comm_functions_in_source(source)


def test_scan_over_real_system_modules():
    from repro.systems import workload_by_id

    workload = workload_by_id("MR-3274")
    funcs = find_comm_functions(workload.modules())
    # The container's polling loop conducts RPC.
    assert "_run_container" in funcs
    # Pure event handlers are not comm functions (they are covered by
    # the in_handler rule instead).
    assert "on_register_task" not in funcs


def test_selective_scope_uses_dynamic_extent():
    from repro.ids import CallStack, Frame
    from repro.runtime.ops import OpEvent, OpKind

    scope = SelectiveScope(comm_functions={"driver"})
    inner = Frame("repro/systems/x.py", "helper", 3)
    outer = Frame("repro/systems/x.py", "driver", 9)
    event = OpEvent(
        seq=1, kind=OpKind.MEM_READ, obj_id="v", node="n", tid=0,
        thread_name="t", segment=0,
        callstack=CallStack([inner, outer]),
    )
    # helper itself is not a comm function, but it is called from one.
    assert scope.should_trace_mem(event)


def test_helper_indirection_marks_caller():
    """Call-graph closure: a function communicating only through a
    helper (the retry-proxy pattern) is still a comm function."""
    source = (
        "def _am(node):\n"
        "    return node.rpc('am')\n"
        "\n"
        "def poll(node):\n"
        "    while _am(node).get_task() is None:\n"
        "        pass\n"
        "\n"
        "def unrelated(x):\n"
        "    return x + 1\n"
    )
    funcs = find_comm_functions_in_source(source)
    assert "_am" in funcs
    assert "poll" in funcs
    assert "unrelated" not in funcs


def test_cross_module_name_collision_stays_distinct():
    """Same-named functions in different modules are separate
    call-graph nodes: calling module A's silent ``helper`` must not
    inherit comm-ness from module B's same-named comm ``helper``."""
    from repro.trace.scope import find_comm_functions_in_sources

    module_a = (
        "def helper(x):\n"
        "    return x + 1\n"
        "\n"
        "def caller(x):\n"
        "    return helper(x)\n"
    )
    module_b = "def helper(node):\n    node.send('b', 'v', 1)\n"
    funcs = find_comm_functions_in_sources([module_a, module_b])
    # B's helper communicates; A's caller resolves to A's silent helper.
    assert "helper" in funcs
    assert "caller" not in funcs


def test_cross_module_helper_still_propagates():
    """The qualified closure keeps the legitimate cross-module case: a
    helper defined only in another module marks its callers."""
    from repro.trace.scope import find_comm_functions_in_sources

    module_a = "def caller(node):\n    return shared_rpc(node)\n"
    module_b = "def shared_rpc(node):\n    return node.rpc('b')\n"
    funcs = find_comm_functions_in_sources([module_a, module_b])
    assert funcs == {"caller", "shared_rpc"}
